//! Replay driven by a recorded partial order (`order.qrp`).
//!
//! A partial-order recording carries an [`quickrec_core::OrderLog`]
//! sidecar: per-thread node counts plus the explicit happens-before
//! edges (conflict, spawn, input causality) the recorder derived at
//! record time. At replay, the edges are fed straight into the parallel
//! scheduler's dependency DAG *instead of* re-deriving constraints from
//! the footprint sidecar — the recorded order is the ordering
//! authority, exactly as the total-order path treats the global chunk
//! timestamps.
//!
//! Reconstruction maps each recorded node `(tid, seq)` onto the merged
//! timeline: walking timeline events in timestamp order, a thread's
//! `n`-th event is its node `seq = n`. Program order (consecutive nodes
//! of one thread) is implicit in the log and added here; every logged
//! edge becomes a DAG edge. The log is linearized first
//! ([`quickrec_core::po::linearize`]) so a corrupt-but-CRC-valid edge
//! set that forms a cycle is rejected with a structured error instead
//! of deadlocking the scheduler.
//!
//! Any legal execution of this DAG is conflict-equivalent to the
//! recorded run (every conflicting pair is ordered by a recorded edge),
//! so serial (`jobs == 1`) and parallel replays both produce
//! fingerprints byte-identical to a total-order replay of the same
//! seeded execution — checked by the partial-order equivalence battery.
//!
//! Recordings whose footprint sidecar is missing or incomplete (torn
//! and salvaged, say) fall back to serial timestamp replay: the chunk
//! log still carries its global timestamps, which remain a legal total
//! order. Missing data costs parallelism, never correctness.

use crate::outcome::ReplayOutcome;
use crate::parallel::{build_timeline_nodes, Dag, Runtime};
use crate::replayer::Replayer;
use qr_capo::Recording;
use qr_common::{QrError, Result};
use qr_isa::Program;
use quickrec_core::po;
use std::collections::{BTreeSet, HashMap};

/// Replays `recording` under its recorded partial order on up to `jobs`
/// workers and verifies the outcome against the recording.
///
/// # Errors
///
/// See [`replay_ordered`]; additionally [`QrError::ReplayDivergence`]
/// when the outcome does not match the recording.
pub fn replay_ordered_and_verify(
    program: &Program,
    recording: &Recording,
    jobs: usize,
) -> Result<ReplayOutcome> {
    let outcome = replay_ordered(program, recording, jobs)?;
    outcome.verify_against(recording)?;
    Ok(outcome)
}

/// Replays `recording` with the recorded `order.qrp` partial order as
/// the ordering authority, on up to `jobs` workers (`jobs == 1` is the
/// serial case — the scheduler then executes one legal linearization).
///
/// # Errors
///
/// Returns [`QrError::InvalidConfig`] for `jobs == 0` or a recording
/// without an order log, [`QrError::ReplayDivergence`] when the log
/// disagrees with the timeline or the replayed execution diverges, and
/// [`QrError::Corrupt`] for an order log whose edges are cyclic or
/// dangling.
pub fn replay_ordered(
    program: &Program,
    recording: &Recording,
    jobs: usize,
) -> Result<ReplayOutcome> {
    if jobs == 0 {
        return Err(QrError::InvalidConfig("replay needs at least one job".into()));
    }
    if program.fingerprint() != recording.meta.program_fingerprint {
        return Err(QrError::ReplayDivergence(
            "program image does not match the recording".into(),
        ));
    }
    let Some(order) = &recording.order else {
        return Err(QrError::InvalidConfig(
            "recording has no order.qrp sidecar (recorded in total-order mode?)".into(),
        ));
    };
    let started = std::time::Instant::now();
    // Proves the edge set is acyclic and every endpoint exists before
    // the scheduler commits to it.
    po::linearize(order)?;
    let nodes = match build_timeline_nodes(recording)? {
        Ok(nodes) => nodes,
        // Incomplete footprint coverage: the chunk timestamps are still
        // present and remain a legal total order.
        Err(_reason) => return Replayer::new(program, recording)?.run(),
    };
    // Node identity: a thread's n-th timeline event is its (tid, seq=n)
    // order-log node.
    let mut next_seq: HashMap<u32, u32> = HashMap::new();
    let mut index: HashMap<(u32, u32), usize> = HashMap::with_capacity(nodes.len());
    let mut preds: Vec<Vec<usize>> = Vec::with_capacity(nodes.len());
    let mut last_of_tid: HashMap<u32, usize> = HashMap::new();
    for (idx, node) in nodes.iter().enumerate() {
        let seq = next_seq.entry(node.tid.0).or_insert(0);
        index.insert((node.tid.0, *seq), idx);
        *seq += 1;
        // Program order is implicit in the log; materialize it here.
        let mut p = BTreeSet::new();
        if let Some(&prev) = last_of_tid.get(&node.tid.0) {
            p.insert(prev);
        }
        last_of_tid.insert(node.tid.0, idx);
        preds.push(p.into_iter().collect());
    }
    // The log and the timeline must describe the same execution:
    // identical thread sets and per-thread event counts.
    if order.threads().len() != next_seq.len()
        || order
            .threads()
            .iter()
            .any(|(tid, &count)| next_seq.get(&tid.0) != Some(&count))
    {
        return Err(QrError::ReplayDivergence(format!(
            "order log covers {} nodes across {} threads but the timeline has {} events across {} threads",
            order.node_count(),
            order.threads().len(),
            nodes.len(),
            next_seq.len()
        )));
    }
    // Every recorded happens-before edge becomes a scheduler edge.
    for edge in order.edges() {
        let (Some(&from), Some(&to)) = (
            index.get(&(edge.from.tid.0, edge.from.seq)),
            index.get(&(edge.to.tid.0, edge.to.seq)),
        ) else {
            return Err(QrError::ReplayDivergence(format!(
                "order edge {} -> {} names a node outside the timeline",
                edge.from, edge.to
            )));
        };
        if from != to && !preds[to].contains(&from) {
            preds[to].push(from);
        }
    }
    for p in &mut preds {
        p.sort_unstable();
    }
    let mut dag = Dag { nodes, preds, succs: Vec::new() };
    dag.link_succs();
    crate::obs::order_reconstructed(started);
    Runtime::new(program, recording, dag, jobs)?.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replayer::replay;
    use qr_capo::{record, RecordingConfig};
    use qr_isa::{abi, Asm, Reg};
    use quickrec_core::OrderMode;

    fn sys(a: &mut Asm, number: u32, set_args: impl FnOnce(&mut Asm)) {
        a.movi_u(Reg::R0, number);
        set_args(a);
        a.syscall();
    }

    /// The parallel replayer tests' locked-counter program.
    fn racy_program() -> qr_isa::Program {
        let mut a = Asm::new();
        a.data_word("counter", &[0]);
        a.align_data_line();
        a.data_word("lock", &[0]);
        sys(&mut a, abi::SYS_SPAWN, |a| {
            a.movi_sym(Reg::R1, "work");
            a.movi(Reg::R2, 0);
        });
        a.mov(Reg::R6, Reg::R0);
        a.call("work_body");
        sys(&mut a, abi::SYS_JOIN, |a| {
            a.mov(Reg::R1, Reg::R6);
        });
        sys(&mut a, abi::SYS_EXIT, |a| {
            a.movi_sym(Reg::R2, "counter");
            a.ld(Reg::R1, Reg::R2, 0);
        });
        a.label("work");
        a.call("work_body");
        sys(&mut a, abi::SYS_EXIT, |a| {
            a.movi(Reg::R1, 0);
        });
        a.label("work_body");
        a.movi(Reg::R8, 40);
        a.label("iter");
        a.movi_sym(Reg::R2, "lock");
        a.label("acquire");
        a.movi(Reg::R3, 0);
        a.movi(Reg::R4, 1);
        a.cas(Reg::R3, Reg::R2, Reg::R4);
        a.beqz(Reg::R3, "locked");
        a.pause();
        a.jmp("acquire");
        a.label("locked");
        a.movi_sym(Reg::R5, "counter");
        a.ld(Reg::R7, Reg::R5, 0);
        a.addi(Reg::R7, Reg::R7, 1);
        a.st(Reg::R5, 0, Reg::R7);
        a.movi(Reg::R3, 0);
        a.xchg(Reg::R3, Reg::R2);
        a.addi(Reg::R8, Reg::R8, -1);
        a.bnez(Reg::R8, "iter");
        a.ret();
        a.finish().unwrap()
    }

    fn partial_config(cores: usize) -> RecordingConfig {
        let mut cfg = RecordingConfig::with_cores(cores);
        cfg.order = OrderMode::PartialOrder;
        cfg
    }

    #[test]
    fn ordered_replay_matches_serial_for_every_job_count() {
        let program = racy_program();
        let recording = record(program.clone(), partial_config(2)).unwrap();
        assert!(recording.order.is_some());
        let serial = replay(&program, &recording).unwrap();
        for jobs in [1, 2, 4] {
            let outcome = replay_ordered_and_verify(&program, &recording, jobs).unwrap();
            assert_eq!(outcome.fingerprint, serial.fingerprint, "jobs={jobs}");
            assert_eq!(outcome.console, serial.console);
            assert_eq!(outcome.exit_code, serial.exit_code);
            assert_eq!(outcome.instructions, serial.instructions);
        }
    }

    #[test]
    fn total_order_recordings_are_rejected() {
        let program = racy_program();
        let recording = record(program.clone(), RecordingConfig::with_cores(2)).unwrap();
        assert!(matches!(
            replay_ordered(&program, &recording, 2),
            Err(QrError::InvalidConfig(_))
        ));
    }

    #[test]
    fn zero_jobs_is_rejected() {
        let program = racy_program();
        let recording = record(program.clone(), partial_config(2)).unwrap();
        assert!(matches!(
            replay_ordered(&program, &recording, 0),
            Err(QrError::InvalidConfig(_))
        ));
    }

    #[test]
    fn mismatched_order_log_is_a_divergence() {
        let program = racy_program();
        let mut recording = record(program.clone(), partial_config(2)).unwrap();
        // An order log from a different execution (extra phantom thread)
        // must be refused, not silently replayed.
        let donor = record(program.clone(), partial_config(4)).unwrap();
        let mut threads = recording.order.as_ref().unwrap().threads().clone();
        let max = threads.keys().last().unwrap().0;
        threads.insert(qr_common::ThreadId(max + 7), 3);
        let forged =
            quickrec_core::OrderLog::new(threads, donor.order.as_ref().unwrap().edges().to_vec());
        recording.order = Some(forged);
        assert!(matches!(
            replay_ordered(&program, &recording, 2),
            Err(QrError::ReplayDivergence(_))
        ));
    }

    #[test]
    fn missing_footprints_fall_back_to_serial_timestamp_replay() {
        let program = racy_program();
        let mut recording = record(program.clone(), partial_config(2)).unwrap();
        let fingerprint = replay(&program, &recording).unwrap().fingerprint;
        recording.footprints = None;
        let outcome = replay_ordered(&program, &recording, 4).unwrap();
        assert_eq!(outcome.fingerprint, fingerprint);
        outcome.verify_against(&recording).unwrap();
    }
}
