//! Time-travel queries over a recording: a persisted checkpoint index,
//! O(log n) seek, and ranged / thread-slice / reverse-step queries.
//!
//! The paper's position is that replay debugging only becomes
//! interactive when you can jump *into* an execution instead of
//! replaying it front to back. This module provides that jump:
//!
//! - [`CheckpointIndex`] serializes the periodic [`ReplayCheckpoint`]s a
//!   replay produces into one framed `checkpoints.qrc` sidecar, with a
//!   binary-searchable key table (timeline position, chunk / input /
//!   instruction counters, per-thread instruction counts).
//! - [`QueryEngine::seek`] restores the nearest preceding checkpoint and
//!   re-executes forward, so reaching timeline position `p` costs
//!   O(log n) lookup plus at most one checkpoint interval of replay.
//! - [`ReplayQuery`] describes a slice of the execution (chunk range,
//!   one thread's events, an instruction window, the tail before a
//!   divergence, or `reverse_step`); [`QueryEngine::execute`] answers it
//!   with a [`QueryResult`] that is byte-identical to the same slice
//!   extracted from a from-scratch serial replay.
//!
//! A corrupt or mismatched index never fails a query: the engine
//! degrades to from-scratch replay (counting the event via `qr-obs`)
//! because the index is a cache of replay state, never a source of
//! truth.

use crate::replayer::{merged_timeline, replay_cpu_config, ReplayCheckpoint, Replayer, TimelineEvent};
use qr_capo::{InputEvent, Recording};
use qr_common::cursor::ByteReader;
use qr_common::frame::{self, PayloadKind};
use qr_common::varint::write_u64;
use qr_common::{Cycle, QrError, Result, ThreadId};
use qr_isa::Program;

/// Newest `checkpoints.qrc` index layout this replayer understands.
pub const CHECKPOINT_INDEX_VERSION: u64 = 1;

/// What kind of timeline event a descriptor describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A chunk of user instructions executed by one thread.
    Chunk,
    /// An injected syscall result.
    Syscall,
    /// An injected signal delivery.
    Signal,
}

impl EventKind {
    /// Stable wire code.
    pub fn code(self) -> u8 {
        match self {
            EventKind::Chunk => 0,
            EventKind::Syscall => 1,
            EventKind::Signal => 2,
        }
    }

    /// Inverse of [`EventKind::code`].
    pub fn from_code(code: u8) -> Option<EventKind> {
        match code {
            0 => Some(EventKind::Chunk),
            1 => Some(EventKind::Syscall),
            2 => Some(EventKind::Signal),
            _ => None,
        }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Chunk => "chunk",
            EventKind::Syscall => "syscall",
            EventKind::Signal => "signal",
        }
    }
}

/// One merged-timeline event, described without replaying it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventDescriptor {
    /// Position in the merged timeline.
    pub pos: u64,
    /// Event kind.
    pub kind: EventKind,
    /// Thread the event belongs to.
    pub tid: ThreadId,
    /// Global timestamp.
    pub timestamp: Cycle,
    /// Instructions the event executes (0 for injected inputs).
    pub icount: u64,
    /// Kind-specific detail: chunk termination-reason code, syscall
    /// number, or 0 for signals.
    pub detail: u32,
}

/// Describes every event of `recording`'s merged timeline without
/// replaying anything — the static skeleton time-travel queries slice.
///
/// # Errors
///
/// Propagates timeline construction errors (duplicate timestamps,
/// malformed chunk schedules).
pub fn timeline_descriptors(recording: &Recording) -> Result<Vec<EventDescriptor>> {
    Ok(merged_timeline(recording)?
        .into_iter()
        .enumerate()
        .map(|(pos, event)| match event {
            TimelineEvent::Chunk(p) => EventDescriptor {
                pos: pos as u64,
                kind: EventKind::Chunk,
                tid: p.tid,
                timestamp: p.timestamp,
                icount: p.icount,
                detail: u32::from(p.reason.code()),
            },
            TimelineEvent::Input(InputEvent::Syscall { ts, record }) => EventDescriptor {
                pos: pos as u64,
                kind: EventKind::Syscall,
                tid: record.tid,
                timestamp: ts,
                icount: 0,
                detail: record.number,
            },
            TimelineEvent::Input(InputEvent::Signal { ts, tid }) => EventDescriptor {
                pos: pos as u64,
                kind: EventKind::Signal,
                tid,
                timestamp: ts,
                icount: 0,
                detail: 0,
            },
        })
        .collect())
}

/// The seek key of one persisted checkpoint: where it sits in the
/// timeline and how much progress the replay had made when it was taken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointKey {
    /// Timeline events already replayed at this checkpoint.
    pub position: u64,
    /// Instructions replayed.
    pub instructions: u64,
    /// Chunks replayed.
    pub chunks_replayed: u64,
    /// Input events injected.
    pub inputs_injected: u64,
    /// Cumulative instructions retired per thread (index = tid).
    pub thread_icounts: Vec<u64>,
}

/// A persisted, binary-searchable set of replay checkpoints — the
/// contents of a `checkpoints.qrc` sidecar.
///
/// Record 0 of the framed container is the seek index (version, binding
/// fingerprints, interval, one [`CheckpointKey`] per checkpoint); each
/// following record is one serialized [`ReplayCheckpoint`]. Snapshots
/// stay as raw bytes until a seek actually needs one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointIndex {
    /// Checkpoint interval, in timeline events.
    pub interval: u64,
    /// Total events in the recording's merged timeline.
    pub timeline_len: u64,
    /// Fingerprint of the program the checkpoints replay.
    pub program_fingerprint: u64,
    /// Final-state fingerprint of the recording (binds the sidecar).
    pub recording_fingerprint: u64,
    /// Seek keys, strictly increasing by position.
    pub keys: Vec<CheckpointKey>,
    /// Serialized [`ReplayCheckpoint`]s, parallel to `keys`.
    pub snapshots: Vec<Vec<u8>>,
}

impl CheckpointIndex {
    /// Replays `recording` once, checkpointing every `every_events`
    /// timeline events, and packages the checkpoints into an index.
    ///
    /// # Errors
    ///
    /// Propagates replay errors; a recording that cannot be replayed
    /// cleanly cannot be indexed.
    pub fn build(
        program: &Program,
        recording: &Recording,
        every_events: usize,
    ) -> Result<CheckpointIndex> {
        let descriptors = timeline_descriptors(recording)?;
        let num_threads = replay_cpu_config(recording)?.num_cores;
        let replayer = Replayer::new(program, recording)?;
        let (_, checkpoints) = replayer.run_with_checkpoints(every_events)?;
        let mut keys = Vec::with_capacity(checkpoints.len());
        let mut snapshots = Vec::with_capacity(checkpoints.len());
        let mut thread_icounts = vec![0u64; num_threads];
        let mut scanned = 0usize;
        for cp in &checkpoints {
            // Keys are sorted by position, so one forward scan over the
            // descriptors prices out all the per-thread counters.
            while scanned < cp.position() {
                let d = &descriptors[scanned];
                if d.kind == EventKind::Chunk {
                    thread_icounts[d.tid.index()] += d.icount;
                }
                scanned += 1;
            }
            keys.push(CheckpointKey {
                position: cp.position() as u64,
                instructions: cp.instructions(),
                chunks_replayed: cp.chunks_replayed() as u64,
                inputs_injected: cp.inputs_injected() as u64,
                thread_icounts: thread_icounts.clone(),
            });
            snapshots.push(cp.to_bytes());
        }
        Ok(CheckpointIndex {
            interval: every_events as u64,
            timeline_len: descriptors.len() as u64,
            program_fingerprint: recording.meta.program_fingerprint,
            recording_fingerprint: recording.fingerprint,
            keys,
            snapshots,
        })
    }

    /// Serializes the index as a framed `checkpoints.qrc` container.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut header = Vec::new();
        write_u64(&mut header, CHECKPOINT_INDEX_VERSION);
        header.extend_from_slice(&self.program_fingerprint.to_le_bytes());
        header.extend_from_slice(&self.recording_fingerprint.to_le_bytes());
        write_u64(&mut header, self.interval);
        write_u64(&mut header, self.timeline_len);
        write_u64(&mut header, self.keys.len() as u64);
        for key in &self.keys {
            write_u64(&mut header, key.position);
            write_u64(&mut header, key.instructions);
            write_u64(&mut header, key.chunks_replayed);
            write_u64(&mut header, key.inputs_injected);
            write_u64(&mut header, key.thread_icounts.len() as u64);
            for &n in &key.thread_icounts {
                write_u64(&mut header, n);
            }
        }
        let mut w = frame::Writer::new(PayloadKind::CheckpointIndex);
        w.record(&header);
        for snapshot in &self.snapshots {
            w.record(snapshot);
        }
        w.finish()
    }

    /// Inverse of [`CheckpointIndex::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Unsupported`] for an index written by a newer
    /// format version (naming both versions), and [`QrError::Corrupt`]
    /// for malformed bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<CheckpointIndex> {
        let corrupt = |offset: u64, detail: String| QrError::Corrupt {
            what: "checkpoint index".into(),
            offset,
            detail,
        };
        let records = frame::read(bytes, PayloadKind::CheckpointIndex, "checkpoint index")?;
        let header = *records
            .first()
            .ok_or_else(|| corrupt(0, "missing index header record".into()))?;
        let mut r = ByteReader::new(header, "checkpoint index");
        let version = r.varint()?;
        if version > CHECKPOINT_INDEX_VERSION {
            return Err(QrError::Unsupported(format!(
                "checkpoint index version {version} \
                 (this replayer supports up to version {CHECKPOINT_INDEX_VERSION})"
            )));
        }
        if version == 0 {
            return Err(corrupt(0, "implausible index version 0".into()));
        }
        let program_fingerprint = r.u64()?;
        let recording_fingerprint = r.u64()?;
        let interval = r.varint()?;
        if interval == 0 {
            return Err(corrupt(r.pos() as u64, "checkpoint interval 0".into()));
        }
        let timeline_len = r.varint()?;
        let num_keys = r.count(records.len() as u64 - 1)?;
        if num_keys != records.len() - 1 {
            return Err(corrupt(
                r.pos() as u64,
                format!("index lists {num_keys} checkpoints but container has {}", records.len() - 1),
            ));
        }
        let mut keys = Vec::with_capacity(num_keys);
        for _ in 0..num_keys {
            let position = r.varint()?;
            if position >= timeline_len {
                return Err(corrupt(
                    r.pos() as u64,
                    format!("checkpoint position {position} beyond timeline of {timeline_len}"),
                ));
            }
            if let Some(prev) = keys.last().map(|k: &CheckpointKey| k.position) {
                if position <= prev {
                    return Err(corrupt(
                        r.pos() as u64,
                        format!("checkpoint positions not increasing ({prev} then {position})"),
                    ));
                }
            }
            let instructions = r.varint()?;
            let chunks_replayed = r.varint()?;
            let inputs_injected = r.varint()?;
            let num_threads = r.count(250)?;
            let mut thread_icounts = Vec::with_capacity(num_threads);
            for _ in 0..num_threads {
                thread_icounts.push(r.varint()?);
            }
            keys.push(CheckpointKey {
                position,
                instructions,
                chunks_replayed,
                inputs_injected,
                thread_icounts,
            });
        }
        r.finish()?;
        let snapshots = records[1..].iter().map(|rec| rec.to_vec()).collect();
        Ok(CheckpointIndex {
            interval,
            timeline_len,
            program_fingerprint,
            recording_fingerprint,
            keys,
            snapshots,
        })
    }

    /// Index of the latest checkpoint at or before timeline position
    /// `target`, if any.
    fn best_for(&self, target: usize) -> Option<usize> {
        self.keys
            .partition_point(|k| k.position as usize <= target)
            .checked_sub(1)
    }
}

/// A slice of a recorded execution to extract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayQuery {
    /// Chunks `start..end` (chunk ordinals, end exclusive) and every
    /// timeline event between them.
    Range {
        /// First chunk ordinal.
        start: u64,
        /// One past the last chunk ordinal.
        end: u64,
    },
    /// Every event belonging to one thread (its chunks, syscall results
    /// and signal deliveries), as the span from its first to its last.
    Thread {
        /// The thread.
        tid: ThreadId,
    },
    /// The events covering replayed-instruction counts `start..end`.
    Window {
        /// First instruction of interest.
        start: u64,
        /// One past the last instruction of interest.
        end: u64,
    },
    /// The last `instructions` instructions before the replay diverges
    /// (or before the end, for a clean recording).
    BeforeDivergence {
        /// Tail length, in instructions.
        instructions: u64,
    },
    /// The machine state `events` timeline events before the end —
    /// stepping backwards by re-executing forward from a checkpoint.
    ReverseStep {
        /// How many events to step back from the end.
        events: u64,
    },
}

impl ReplayQuery {
    /// Short label for metrics and audit spans.
    pub fn label(&self) -> &'static str {
        match self {
            ReplayQuery::Range { .. } => "range",
            ReplayQuery::Thread { .. } => "thread",
            ReplayQuery::Window { .. } => "window",
            ReplayQuery::BeforeDivergence { .. } => "before-divergence",
            ReplayQuery::ReverseStep { .. } => "reverse-step",
        }
    }

    /// Serializes the query for the wire.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match *self {
            ReplayQuery::Range { start, end } => {
                out.push(0);
                write_u64(&mut out, start);
                write_u64(&mut out, end);
            }
            ReplayQuery::Thread { tid } => {
                out.push(1);
                out.extend_from_slice(&tid.0.to_le_bytes());
            }
            ReplayQuery::Window { start, end } => {
                out.push(2);
                write_u64(&mut out, start);
                write_u64(&mut out, end);
            }
            ReplayQuery::BeforeDivergence { instructions } => {
                out.push(3);
                write_u64(&mut out, instructions);
            }
            ReplayQuery::ReverseStep { events } => {
                out.push(4);
                write_u64(&mut out, events);
            }
        }
        out
    }

    /// Inverse of [`ReplayQuery::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Corrupt`] on malformed bytes.
    pub fn from_bytes(buf: &[u8]) -> Result<ReplayQuery> {
        let mut r = ByteReader::new(buf, "replay query");
        let query = Self::read_from(&mut r)?;
        r.finish()?;
        Ok(query)
    }

    /// Reads one query from an open cursor (for embedding in larger
    /// wire messages).
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Corrupt`] on malformed bytes.
    pub fn read_from(r: &mut ByteReader<'_>) -> Result<ReplayQuery> {
        let tag = r.u8()?;
        Ok(match tag {
            0 => ReplayQuery::Range { start: r.varint()?, end: r.varint()? },
            1 => ReplayQuery::Thread { tid: ThreadId(r.u32()?) },
            2 => ReplayQuery::Window { start: r.varint()?, end: r.varint()? },
            3 => ReplayQuery::BeforeDivergence { instructions: r.varint()? },
            4 => ReplayQuery::ReverseStep { events: r.varint()? },
            _ => {
                return Err(QrError::Corrupt {
                    what: "replay query".into(),
                    offset: 0,
                    detail: format!("unknown query tag {tag}"),
                })
            }
        })
    }
}

impl std::fmt::Display for ReplayQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ReplayQuery::Range { start, end } => write!(f, "chunks {start}..{end}"),
            ReplayQuery::Thread { tid } => write!(f, "all events of {tid}"),
            ReplayQuery::Window { start, end } => write!(f, "instructions {start}..{end}"),
            ReplayQuery::BeforeDivergence { instructions } => {
                write!(f, "last {instructions} instructions before divergence")
            }
            ReplayQuery::ReverseStep { events } => write!(f, "reverse-step {events} events"),
        }
    }
}

/// What executing a query would cost — the dry-run answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPlan {
    /// The query this plan answers.
    pub query: ReplayQuery,
    /// First timeline position of the result span.
    pub start: u64,
    /// One past the last timeline position of the result span.
    pub end: u64,
    /// Position of the checkpoint a seek would restore, if any.
    pub checkpoint: Option<u64>,
    /// Timeline events that must be re-executed to answer the query.
    pub events_to_execute: u64,
    /// Total events in the recording's timeline.
    pub timeline_len: u64,
}

impl QueryPlan {
    /// Renders the plan as the text `--dry-run` prints.
    pub fn render(&self) -> String {
        let from = match self.checkpoint {
            Some(pos) => format!("checkpoint at event {pos}"),
            None => "the start (no usable checkpoint)".into(),
        };
        format!(
            "plan: {}\n  span: events [{}, {}) of {}\n  resume from: {}\n  events to re-execute: {}\n",
            self.query, self.start, self.end, self.timeline_len, from, self.events_to_execute
        )
    }

    /// Serializes the plan for the wire.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = self.query.to_bytes();
        write_u64(&mut out, self.start);
        write_u64(&mut out, self.end);
        match self.checkpoint {
            Some(pos) => {
                out.push(1);
                write_u64(&mut out, pos);
            }
            None => out.push(0),
        }
        write_u64(&mut out, self.events_to_execute);
        write_u64(&mut out, self.timeline_len);
        out
    }

    /// Inverse of [`QueryPlan::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Corrupt`] on malformed bytes.
    pub fn from_bytes(buf: &[u8]) -> Result<QueryPlan> {
        let mut r = ByteReader::new(buf, "query plan");
        let query = ReplayQuery::read_from(&mut r)?;
        let start = r.varint()?;
        let end = r.varint()?;
        let checkpoint = match r.u8()? {
            0 => None,
            _ => Some(r.varint()?),
        };
        let events_to_execute = r.varint()?;
        let timeline_len = r.varint()?;
        r.finish()?;
        Ok(QueryPlan { query, start, end, checkpoint, events_to_execute, timeline_len })
    }
}

/// The answer to a [`ReplayQuery`]: the events of the span, the console
/// output and instruction count produced inside it, and the
/// architectural fingerprint at its end. Byte-identical whether it was
/// computed from a checkpoint seek or a from-scratch replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResult {
    /// The query this result answers.
    pub query: ReplayQuery,
    /// First timeline position of the span.
    pub start: u64,
    /// One past the last timeline position of the span.
    pub end: u64,
    /// Descriptors of the events inside the span.
    pub events: Vec<EventDescriptor>,
    /// Console bytes produced inside the span.
    pub console: Vec<u8>,
    /// Instructions re-executed inside the span.
    pub instructions: u64,
    /// Partial architectural fingerprint at the end of the span.
    pub fingerprint: u64,
    /// The divergence that ended the replay, for
    /// [`ReplayQuery::BeforeDivergence`] on a tampered recording.
    pub diverged: Option<String>,
}

impl QueryResult {
    /// Serializes the result for the wire. The bytes are a
    /// deterministic function of the result, so equivalence tests can
    /// compare results bytewise.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = self.query.to_bytes();
        write_u64(&mut out, self.start);
        write_u64(&mut out, self.end);
        write_u64(&mut out, self.events.len() as u64);
        for e in &self.events {
            write_u64(&mut out, e.pos);
            out.push(e.kind.code());
            out.extend_from_slice(&e.tid.0.to_le_bytes());
            write_u64(&mut out, e.timestamp.0);
            write_u64(&mut out, e.icount);
            out.extend_from_slice(&e.detail.to_le_bytes());
        }
        write_u64(&mut out, self.console.len() as u64);
        out.extend_from_slice(&self.console);
        write_u64(&mut out, self.instructions);
        out.extend_from_slice(&self.fingerprint.to_le_bytes());
        match &self.diverged {
            Some(msg) => {
                out.push(1);
                write_u64(&mut out, msg.len() as u64);
                out.extend_from_slice(msg.as_bytes());
            }
            None => out.push(0),
        }
        out
    }

    /// Inverse of [`QueryResult::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Corrupt`] on malformed bytes.
    pub fn from_bytes(buf: &[u8]) -> Result<QueryResult> {
        let corrupt = |offset: u64, detail: String| QrError::Corrupt {
            what: "query result".into(),
            offset,
            detail,
        };
        let mut r = ByteReader::new(buf, "query result");
        let query = ReplayQuery::read_from(&mut r)?;
        let start = r.varint()?;
        let end = r.varint()?;
        let num_events = r.count(1 << 30)?;
        let mut events = Vec::with_capacity(num_events);
        for _ in 0..num_events {
            let pos = r.varint()?;
            let kind_code = r.u8()?;
            let kind = EventKind::from_code(kind_code)
                .ok_or_else(|| corrupt(r.pos() as u64, format!("unknown event kind {kind_code}")))?;
            let tid = ThreadId(r.u32()?);
            let timestamp = Cycle(r.varint()?);
            let icount = r.varint()?;
            let detail = r.u32()?;
            events.push(EventDescriptor { pos, kind, tid, timestamp, icount, detail });
        }
        let console_len = r.count(1 << 30)?;
        let console = r.bytes(console_len)?.to_vec();
        let instructions = r.varint()?;
        let fingerprint = r.u64()?;
        let diverged = match r.u8()? {
            0 => None,
            _ => {
                let len = r.count(1 << 20)?;
                let at = r.pos() as u64;
                let msg = String::from_utf8(r.bytes(len)?.to_vec())
                    .map_err(|_| corrupt(at, "divergence message is not UTF-8".into()))?;
                Some(msg)
            }
        };
        r.finish()?;
        Ok(QueryResult { query, start, end, events, console, instructions, fingerprint, diverged })
    }
}

/// A query engine over one (program, recording) pair, optionally
/// accelerated by a [`CheckpointIndex`].
#[derive(Debug)]
pub struct QueryEngine<'a> {
    program: &'a Program,
    recording: &'a Recording,
    descriptors: Vec<EventDescriptor>,
    /// `cum_instructions[i]` = instructions replayed by the first `i`
    /// timeline events (length `timeline_len + 1`).
    cum_instructions: Vec<u64>,
    /// Timeline position of each chunk, by chunk ordinal.
    chunk_positions: Vec<usize>,
    index: Option<CheckpointIndex>,
}

impl<'a> QueryEngine<'a> {
    /// Builds an engine with no index (every seek replays from scratch).
    ///
    /// # Errors
    ///
    /// Returns [`QrError::ReplayDivergence`] if `program` does not match
    /// the recording, plus timeline construction errors.
    pub fn new(program: &'a Program, recording: &'a Recording) -> Result<QueryEngine<'a>> {
        if program.fingerprint() != recording.meta.program_fingerprint {
            return Err(QrError::ReplayDivergence(
                "program image does not match the recording".into(),
            ));
        }
        let descriptors = timeline_descriptors(recording)?;
        let mut cum_instructions = Vec::with_capacity(descriptors.len() + 1);
        cum_instructions.push(0);
        let mut chunk_positions = Vec::new();
        for (pos, d) in descriptors.iter().enumerate() {
            if d.kind == EventKind::Chunk {
                chunk_positions.push(pos);
            }
            cum_instructions.push(cum_instructions[pos] + d.icount);
        }
        Ok(QueryEngine {
            program,
            recording,
            descriptors,
            cum_instructions,
            chunk_positions,
            index: None,
        })
    }

    /// Attaches a validated index.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::ReplayDivergence`] when the index was built
    /// for a different program or recording.
    pub fn attach_index(&mut self, index: CheckpointIndex) -> Result<()> {
        if index.program_fingerprint != self.recording.meta.program_fingerprint
            || index.recording_fingerprint != self.recording.fingerprint
            || index.timeline_len != self.descriptors.len() as u64
        {
            return Err(QrError::ReplayDivergence(
                "checkpoint index does not belong to this recording".into(),
            ));
        }
        self.index = Some(index);
        Ok(())
    }

    /// Attaches a persisted `checkpoints.qrc`, tolerantly: corrupt,
    /// unsupported or mismatched bytes degrade the engine to
    /// from-scratch seeks (counted by `qr-obs`) instead of failing.
    /// Returns whether the index was attached.
    pub fn attach_index_bytes(&mut self, bytes: &[u8]) -> bool {
        match CheckpointIndex::from_bytes(bytes).and_then(|ix| self.attach_index(ix)) {
            Ok(()) => true,
            Err(_) => {
                crate::obs::index_corrupt();
                false
            }
        }
    }

    /// Whether an index is attached.
    pub fn has_index(&self) -> bool {
        self.index.is_some()
    }

    /// Total events in the merged timeline.
    pub fn timeline_len(&self) -> usize {
        self.descriptors.len()
    }

    /// The timeline's event descriptors.
    pub fn descriptors(&self) -> &[EventDescriptor] {
        &self.descriptors
    }

    /// Returns a replayer positioned exactly at timeline position
    /// `target`: the nearest preceding checkpoint is restored (O(log n)
    /// binary search) and the remaining interval re-executed; without a
    /// usable checkpoint the replay runs from scratch. Either way the
    /// state at `target` is bit-for-bit the same.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::InvalidConfig`] for an out-of-range target,
    /// plus replay errors from the forward execution.
    pub fn seek(&self, target: usize) -> Result<Replayer<'a>> {
        if target > self.descriptors.len() {
            return Err(QrError::InvalidConfig(format!(
                "seek target {target} is beyond the timeline ({} events)",
                self.descriptors.len()
            )));
        }
        let mut restored = None;
        if let Some(ix) = &self.index {
            if let Some(i) = ix.best_for(target) {
                // A snapshot that fails to deserialize or resume is the
                // same as no snapshot: fall back to from-scratch replay.
                match ReplayCheckpoint::from_bytes(self.program, self.recording, &ix.snapshots[i])
                    .and_then(|cp| Replayer::resume(self.program, self.recording, cp))
                {
                    Ok(rp) => restored = Some(rp),
                    Err(_) => crate::obs::index_corrupt(),
                }
            }
        }
        crate::obs::seek(restored.is_some());
        let mut rp = match restored {
            Some(rp) => rp,
            None => Replayer::new(self.program, self.recording)?,
        };
        while rp.position() < target {
            if !rp.step_timeline()? {
                break;
            }
        }
        Ok(rp)
    }

    /// Resolves a query to its timeline span `[start, end)`.
    fn resolve_span(&self, query: ReplayQuery) -> Result<(usize, usize)> {
        let len = self.descriptors.len();
        match query {
            ReplayQuery::Range { start, end } => {
                let chunks = self.chunk_positions.len() as u64;
                if start > end {
                    return Err(QrError::InvalidConfig(format!(
                        "chunk range starts at {start} but ends at {end}"
                    )));
                }
                if end > chunks {
                    return Err(QrError::InvalidConfig(format!(
                        "chunk range end {end} is beyond the recording ({chunks} chunks)"
                    )));
                }
                let tstart = self
                    .chunk_positions
                    .get(start as usize)
                    .copied()
                    .unwrap_or(len);
                let tend = if end > start {
                    self.chunk_positions[end as usize - 1] + 1
                } else {
                    tstart
                };
                Ok((tstart, tend))
            }
            ReplayQuery::Thread { tid } => {
                let mut positions = self
                    .descriptors
                    .iter()
                    .filter(|d| d.tid == tid)
                    .map(|d| d.pos as usize);
                let first = positions.next().ok_or_else(|| {
                    QrError::InvalidConfig(format!("{tid} has no events in this recording"))
                })?;
                let last = positions.last().unwrap_or(first);
                Ok((first, last + 1))
            }
            ReplayQuery::Window { start, end } => {
                let total = *self.cum_instructions.last().unwrap_or(&0);
                if start > end {
                    return Err(QrError::InvalidConfig(format!(
                        "instruction window starts at {start} but ends at {end}"
                    )));
                }
                if end > total {
                    return Err(QrError::InvalidConfig(format!(
                        "instruction window end {end} is beyond the recording ({total} instructions)"
                    )));
                }
                let tstart = self
                    .cum_instructions
                    .partition_point(|&c| c <= start)
                    .saturating_sub(1);
                let tend = self.cum_instructions.partition_point(|&c| c < end).min(len);
                Ok((tstart, tend.max(tstart)))
            }
            ReplayQuery::BeforeDivergence { .. } => Ok((0, len)),
            ReplayQuery::ReverseStep { events } => {
                if events > len as u64 {
                    return Err(QrError::InvalidConfig(format!(
                        "cannot step back {events} events in a timeline of {len}"
                    )));
                }
                let target = len - events as usize;
                Ok((target, target))
            }
        }
    }

    /// Plans a query without executing anything — the `--dry-run` path.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::InvalidConfig`] for out-of-range queries.
    pub fn plan(&self, query: ReplayQuery) -> Result<QueryPlan> {
        let (start, end) = self.resolve_span(query)?;
        // A divergence scan cannot use checkpoints: the divergence point
        // is unknown until the replay reaches it.
        let checkpoint = match query {
            ReplayQuery::BeforeDivergence { .. } => None,
            _ => self
                .index
                .as_ref()
                .and_then(|ix| ix.best_for(start))
                .map(|i| self.index.as_ref().unwrap().keys[i].position),
        };
        Ok(QueryPlan {
            query,
            start: start as u64,
            end: end as u64,
            checkpoint,
            events_to_execute: end as u64 - checkpoint.unwrap_or(0),
            timeline_len: self.descriptors.len() as u64,
        })
    }

    /// Executes a query. `max_events` bounds how many timeline events
    /// the engine may re-execute; a query that would exceed it fails
    /// before any replay work happens.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::InvalidConfig`] for out-of-range queries,
    /// [`QrError::Unsupported`] when `max_events` is exceeded, plus
    /// replay errors from the forward execution.
    pub fn execute(&self, query: ReplayQuery, max_events: Option<u64>) -> Result<QueryResult> {
        let plan = self.plan(query)?;
        if let Some(max) = max_events {
            if plan.events_to_execute > max {
                return Err(QrError::Unsupported(format!(
                    "query would re-execute {} timeline events, exceeding max-events {max}",
                    plan.events_to_execute
                )));
            }
        }
        if let ReplayQuery::BeforeDivergence { instructions } = query {
            return self.execute_before_divergence(query, instructions);
        }
        let start = plan.start as usize;
        let end = plan.end as usize;
        let mut rp = self.seek(start)?;
        let console_before = rp.console_so_far().len();
        let instructions_before = rp.instructions_so_far();
        while rp.position() < end {
            if !rp.step_timeline()? {
                break;
            }
        }
        Ok(QueryResult {
            query,
            start: plan.start,
            end: plan.end,
            events: self.descriptors[start..end].to_vec(),
            console: rp.console_so_far()[console_before..].to_vec(),
            instructions: rp.instructions_so_far() - instructions_before,
            fingerprint: rp.partial_fingerprint(),
            diverged: None,
        })
    }

    /// The "last K instructions" query: scan forward from scratch until
    /// the replay diverges (or ends), then extract the tail window
    /// before that point.
    fn execute_before_divergence(
        &self,
        query: ReplayQuery,
        instructions: u64,
    ) -> Result<QueryResult> {
        let mut scan = Replayer::new(self.program, self.recording)?;
        let mut diverged = None;
        let stop = loop {
            let pos = scan.position();
            match scan.step_timeline() {
                Ok(true) => {}
                Ok(false) => break pos,
                Err(e) => {
                    diverged = Some(e.to_string());
                    break pos;
                }
            }
        };
        let at_stop = self.cum_instructions[stop];
        // Earliest event boundary keeping at most `instructions`
        // instructions in the window.
        let start = self.cum_instructions[..=stop].partition_point(|&c| at_stop - c > instructions);
        // The scan executed the failing event partially, so its state is
        // not usable; reach `stop` again cleanly (the seek may use the
        // index — every checkpoint precedes the divergence).
        let mut rp = self.seek(start)?;
        let console_before = rp.console_so_far().len();
        let instructions_before = rp.instructions_so_far();
        while rp.position() < stop {
            if !rp.step_timeline()? {
                break;
            }
        }
        Ok(QueryResult {
            query,
            start: start as u64,
            end: stop as u64,
            events: self.descriptors[start..stop].to_vec(),
            console: rp.console_so_far()[console_before..].to_vec(),
            instructions: rp.instructions_so_far() - instructions_before,
            fingerprint: rp.partial_fingerprint(),
            diverged,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_index() -> CheckpointIndex {
        CheckpointIndex {
            interval: 8,
            timeline_len: 40,
            program_fingerprint: 0x1111_2222_3333_4444,
            recording_fingerprint: 0x5555_6666_7777_8888,
            keys: vec![
                CheckpointKey {
                    position: 8,
                    instructions: 120,
                    chunks_replayed: 6,
                    inputs_injected: 2,
                    thread_icounts: vec![80, 40],
                },
                CheckpointKey {
                    position: 16,
                    instructions: 260,
                    chunks_replayed: 13,
                    inputs_injected: 3,
                    thread_icounts: vec![150, 110],
                },
            ],
            snapshots: vec![vec![1, 2, 3], vec![4, 5, 6]],
        }
    }

    #[test]
    fn index_round_trips() {
        let ix = sample_index();
        let bytes = ix.to_bytes();
        let back = CheckpointIndex::from_bytes(&bytes).unwrap();
        assert_eq!(back, ix);
        assert_eq!(bytes, back.to_bytes(), "re-serialization is byte-identical");
    }

    #[test]
    fn future_index_version_is_rejected_by_name() {
        let mut header = Vec::new();
        write_u64(&mut header, 99);
        let mut w = frame::Writer::new(PayloadKind::CheckpointIndex);
        w.record(&header);
        let err = CheckpointIndex::from_bytes(&w.finish()).unwrap_err();
        match err {
            QrError::Unsupported(msg) => {
                assert!(msg.contains("version 99"), "names the file's version: {msg}");
                assert!(
                    msg.contains(&format!("version {CHECKPOINT_INDEX_VERSION}")),
                    "names the supported version: {msg}"
                );
            }
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }

    #[test]
    fn truncated_and_mismatched_indexes_are_structured_errors() {
        let bytes = sample_index().to_bytes();
        for cut in [0, 1, frame::HEADER_LEN, bytes.len() - 1] {
            let err = CheckpointIndex::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(matches!(err, QrError::Corrupt { .. }), "cut at {cut}: {err:?}");
        }
        // An index that lists more checkpoints than the container holds.
        let mut ix = sample_index();
        ix.snapshots.pop();
        let err = CheckpointIndex::from_bytes(&ix.to_bytes()).unwrap_err();
        assert!(matches!(err, QrError::Corrupt { .. }), "{err:?}");
    }

    #[test]
    fn non_increasing_checkpoint_positions_are_corrupt() {
        let mut ix = sample_index();
        ix.keys[1].position = 8;
        let err = CheckpointIndex::from_bytes(&ix.to_bytes()).unwrap_err();
        assert!(matches!(err, QrError::Corrupt { .. }), "{err:?}");
        let mut ix = sample_index();
        ix.keys[1].position = 41;
        let err = CheckpointIndex::from_bytes(&ix.to_bytes()).unwrap_err();
        assert!(matches!(err, QrError::Corrupt { .. }), "beyond timeline: {err:?}");
    }

    #[test]
    fn best_for_picks_latest_preceding_checkpoint() {
        let ix = sample_index();
        assert_eq!(ix.best_for(0), None);
        assert_eq!(ix.best_for(7), None);
        assert_eq!(ix.best_for(8), Some(0));
        assert_eq!(ix.best_for(15), Some(0));
        assert_eq!(ix.best_for(16), Some(1));
        assert_eq!(ix.best_for(1000), Some(1));
    }

    #[test]
    fn query_and_plan_and_result_round_trip() {
        let queries = [
            ReplayQuery::Range { start: 3, end: 17 },
            ReplayQuery::Thread { tid: ThreadId(2) },
            ReplayQuery::Window { start: 100, end: 250 },
            ReplayQuery::BeforeDivergence { instructions: 64 },
            ReplayQuery::ReverseStep { events: 5 },
        ];
        for q in queries {
            assert_eq!(ReplayQuery::from_bytes(&q.to_bytes()).unwrap(), q);
        }
        let plan = QueryPlan {
            query: queries[0],
            start: 6,
            end: 40,
            checkpoint: Some(32),
            events_to_execute: 8,
            timeline_len: 96,
        };
        assert_eq!(QueryPlan::from_bytes(&plan.to_bytes()).unwrap(), plan);
        assert!(plan.render().contains("checkpoint at event 32"));
        let result = QueryResult {
            query: queries[1],
            start: 6,
            end: 8,
            events: vec![EventDescriptor {
                pos: 6,
                kind: EventKind::Syscall,
                tid: ThreadId(2),
                timestamp: Cycle(991),
                icount: 0,
                detail: 4,
            }],
            console: b"hi".to_vec(),
            instructions: 17,
            fingerprint: 0xdead_beef_cafe_f00d,
            diverged: Some("replay diverged: tid1 rsw mismatch".into()),
        };
        assert_eq!(QueryResult::from_bytes(&result.to_bytes()).unwrap(), result);
    }

    #[test]
    fn unknown_query_tag_is_corrupt() {
        let err = ReplayQuery::from_bytes(&[9]).unwrap_err();
        assert!(matches!(err, QrError::Corrupt { .. }), "{err:?}");
    }
}
