//! Replay results.

use qr_capo::Recording;
use qr_common::{QrError, Result};

/// The outcome of replaying a recording.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// Console output reproduced during replay.
    pub console: Vec<u8>,
    /// Main thread's exit code.
    pub exit_code: u32,
    /// Architectural-outcome digest, computed with the same function the
    /// recorder used.
    pub fingerprint: u64,
    /// Replay makespan in cycles (chunk serialization makes this larger
    /// than the recording's — experiment E9 measures the ratio).
    pub cycles: u64,
    /// Instructions re-executed.
    pub instructions: u64,
    /// Chunks replayed.
    pub chunks_replayed: usize,
    /// Input events injected.
    pub inputs_injected: usize,
}

impl ReplayOutcome {
    /// Checks this outcome against the recording it replayed.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::ReplayDivergence`] naming the first mismatched
    /// component (fingerprint, console, exit code, instruction count).
    pub fn verify_against(&self, recording: &Recording) -> Result<()> {
        if self.exit_code != recording.exit_code {
            return Err(QrError::ReplayDivergence(format!(
                "exit code {} != recorded {}",
                self.exit_code, recording.exit_code
            )));
        }
        if self.console != recording.console {
            return Err(QrError::ReplayDivergence(format!(
                "console output differs ({} vs {} bytes)",
                self.console.len(),
                recording.console.len()
            )));
        }
        if self.instructions != recording.instructions {
            return Err(QrError::ReplayDivergence(format!(
                "instruction count {} != recorded {}",
                self.instructions, recording.instructions
            )));
        }
        if self.fingerprint != recording.fingerprint {
            return Err(QrError::ReplayDivergence(format!(
                "state fingerprint {:016x} != recorded {:016x}",
                self.fingerprint, recording.fingerprint
            )));
        }
        Ok(())
    }

    /// Replay slowdown relative to the recorded run's cycles.
    pub fn slowdown_vs(&self, recording: &Recording) -> f64 {
        if recording.cycles == 0 {
            return 1.0;
        }
        self.cycles as f64 / recording.cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> ReplayOutcome {
        ReplayOutcome {
            console: b"hi".to_vec(),
            exit_code: 0,
            fingerprint: 42,
            cycles: 100,
            instructions: 10,
            chunks_replayed: 2,
            inputs_injected: 1,
        }
    }

    #[test]
    fn verify_reports_first_mismatch() {
        let mut rec_like = outcome();
        rec_like.exit_code = 7;
        // Build a minimal recording-shaped check through the error text.
        // (Full integration verification lives in the replayer tests.)
        let o = outcome();
        assert_ne!(o.exit_code, rec_like.exit_code);
    }

    #[test]
    fn slowdown_handles_zero() {
        let o = outcome();
        // A synthetic recording with zero cycles yields slowdown 1.0.
        // (Covered properly in integration tests; here we only pin the
        // degenerate case of the arithmetic helper.)
        assert!(o.cycles > 0);
    }
}
