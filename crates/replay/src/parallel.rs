//! Parallel chunk-ordered replay with a conflict-dependency scheduler.
//!
//! Serial replay executes the merged timeline strictly in global
//! timestamp order — one chunk at a time, even on a many-core host. But
//! the recorded total order is stronger than necessary: two chunks only
//! need to stay ordered if the *same thread* issued them (program order)
//! or their read/write footprints actually conflict (some shared cache
//! line written by at least one of them). Any execution respecting those
//! constraints is conflict-equivalent to the recorded serialization and
//! therefore produces a byte-identical memory image, console and exit
//! vector — fingerprint equality is the correctness oracle, checked by
//! [`replay_parallel_and_verify`] and the equivalence test battery.
//!
//! # Dependency DAG
//!
//! Nodes are the merged timeline events (chunk packets plus input
//! events), in timestamp order. Edges, always from earlier to later
//! timestamps (hence acyclic):
//!
//! - **Program order**: consecutive nodes of the same thread.
//! - **Conflicts**: walking nodes in timestamp order with per-line
//!   last-writer / readers-since bookkeeping, a node reading line `L`
//!   depends on `L`'s last writer, and a node writing `L` depends on
//!   `L`'s last writer and every reader since (RAW, WAW, WAR edges at
//!   cache-line granularity — the same granularity the recording
//!   hardware detects conflicts at).
//! - **Spawn**: a successful `SYS_SPAWN` record precedes the child
//!   thread's first node.
//!
//! Chunk footprints come from the recording's optional
//! [`quickrec_core::FootprintLog`] sidecar. Recordings without complete
//! footprint coverage (legacy logs, salvaged prefixes) fall back to the
//! serial [`Replayer`] — missing footprints cost parallelism, never
//! correctness.
//!
//! # Execution model
//!
//! Every thread gets a private single-core *lane* machine (own store
//! buffer, so TSO reproduction stays exact) whose memory is fully
//! mapped. A shared *canonical* machine carries the authoritative memory
//! image and mirrors the serial replayer's region mapping operations
//! (data segment, stacks, `sbrk` growth) so its fingerprint hashes the
//! same region list. A worker executing a node:
//!
//! 1. **pulls** the node's footprint lines from canonical memory into
//!    the lane (clipped to canonical's mapped regions),
//! 2. **executes** the node on the lane exactly like serial replay
//!    (instruction-exact chunk execution, boundary drains, RSW checks,
//!    input injection), and
//! 3. **pushes** the node's write-set lines back to canonical memory.
//!
//! Because every conflicting predecessor pushed before this node pulls
//! (there is an edge), the pulled lines hold exactly the bytes serial
//! replay would have observed; concurrent nodes touch disjoint write
//! sets by construction. The per-core caches model coherence metadata
//! only — data lives in the paged memory — so line copies between
//! machines are architecturally exact.
//!
//! The reported [`ReplayOutcome::cycles`] is a *simulated makespan*: a
//! deterministic greedy list schedule of the DAG onto `jobs` workers
//! using each node's replayed cycle cost. It depends only on the
//! recording and `jobs`, never on host scheduling, keeping experiment
//! output byte-stable.

use crate::outcome::ReplayOutcome;
use crate::replayer::Replayer;
use qr_capo::{InputEvent, Recording};
use qr_common::ids::CACHE_LINE_SHIFT;
use qr_common::{CoreId, LineAddr, QrError, Result, ThreadId, VirtAddr};
use qr_cpu::{CpuConfig, CpuContext, Machine, NondetKind, StepOutcome};
use qr_isa::program::STACK_TOP;
use qr_isa::{abi, Program, Reg};
use qr_mem::TsoMode;
use qr_os::kernel::EFAULT;
use qr_os::SyscallRecord;
use quickrec_core::{ChunkPacket, TerminationReason};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Replays `recording` of `program` on up to `jobs` worker threads and
/// verifies the outcome against the recording.
///
/// # Errors
///
/// See [`replay_parallel`].
pub fn replay_parallel_and_verify(
    program: &Program,
    recording: &Recording,
    jobs: usize,
) -> Result<ReplayOutcome> {
    let outcome = replay_parallel(program, recording, jobs)?;
    outcome.verify_against(recording)?;
    Ok(outcome)
}

/// Replays `recording` of `program` on up to `jobs` worker threads,
/// falling back to serial replay when the recording lacks complete
/// footprint coverage.
///
/// # Errors
///
/// Returns [`QrError::InvalidConfig`] for `jobs == 0`, otherwise the
/// same errors as serial [`crate::replay`].
pub fn replay_parallel(program: &Program, recording: &Recording, jobs: usize) -> Result<ReplayOutcome> {
    ParallelReplayer::new(program, recording, jobs)?.run()
}

/// One timeline node of the dependency DAG.
#[derive(Debug)]
pub(crate) struct Node {
    pub(crate) kind: NodeKind,
    pub(crate) tid: ThreadId,
    /// Lines to copy canonical → lane before executing (reads ∪ writes).
    pub(crate) pull: Vec<LineAddr>,
    /// Lines to copy lane → canonical after executing (writes).
    pub(crate) push: Vec<LineAddr>,
}

#[derive(Debug)]
pub(crate) enum NodeKind {
    Chunk(ChunkPacket),
    Input(InputEvent),
}

/// The dependency DAG over the merged timeline.
#[derive(Debug)]
pub(crate) struct Dag {
    pub(crate) nodes: Vec<Node>,
    /// Direct predecessors of each node (deduplicated, ascending).
    pub(crate) preds: Vec<Vec<usize>>,
    /// Direct successors of each node.
    pub(crate) succs: Vec<Vec<usize>>,
}

impl Dag {
    /// Fills the successor lists from the predecessor lists.
    pub(crate) fn link_succs(&mut self) {
        self.succs = vec![Vec::new(); self.nodes.len()];
        for (idx, p) in self.preds.iter().enumerate() {
            for &pred in p {
                self.succs[pred].push(idx);
            }
        }
    }
}

/// A parallel replay in preparation.
///
/// Construction builds the chunk dependency DAG from the recording's
/// footprint sidecar; [`ParallelReplayer::run`] executes it on a scoped
/// worker pool. Recordings without complete footprints (see
/// [`ParallelReplayer::fallback_reason`]) run through the serial
/// [`Replayer`] instead and still produce the same verified outcome.
#[derive(Debug)]
pub struct ParallelReplayer<'a> {
    program: &'a Program,
    recording: &'a Recording,
    jobs: usize,
    dag: Option<Dag>,
    fallback: Option<String>,
}

impl<'a> ParallelReplayer<'a> {
    /// Prepares a parallel replay with `jobs` workers.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::InvalidConfig`] for `jobs == 0`,
    /// [`QrError::ReplayDivergence`] if the program does not match the
    /// recording, and log-format errors for malformed chunk logs.
    pub fn new(program: &'a Program, recording: &'a Recording, jobs: usize) -> Result<ParallelReplayer<'a>> {
        if jobs == 0 {
            return Err(QrError::InvalidConfig("replay needs at least one job".into()));
        }
        if program.fingerprint() != recording.meta.program_fingerprint {
            return Err(QrError::ReplayDivergence(
                "program image does not match the recording".into(),
            ));
        }
        let (dag, fallback) = match build_dag(recording)? {
            Ok(dag) => (Some(dag), None),
            Err(reason) => (None, Some(reason)),
        };
        Ok(ParallelReplayer { program, recording, jobs, dag, fallback })
    }

    /// Why this replay will take the serial path (`None` when the
    /// dependency scheduler can run).
    pub fn fallback_reason(&self) -> Option<&str> {
        self.fallback.as_deref()
    }

    /// Number of timeline nodes in the dependency DAG (0 on fallback).
    pub fn node_count(&self) -> usize {
        self.dag.as_ref().map_or(0, |d| d.nodes.len())
    }

    /// Number of dependency edges in the DAG (0 on fallback).
    pub fn edge_count(&self) -> usize {
        self.dag.as_ref().map_or(0, |d| d.preds.iter().map(Vec::len).sum())
    }

    /// Runs the replay to completion.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::ReplayDivergence`] on any mismatch, like the
    /// serial replayer.
    pub fn run(self) -> Result<ReplayOutcome> {
        let Some(dag) = self.dag else {
            return Replayer::new(self.program, self.recording)?.run();
        };
        Runtime::new(self.program, self.recording, dag, self.jobs)?.run()
    }
}

/// Builds the merged timestamp-ordered timeline as DAG nodes with their
/// footprint pull/push sets, or explains why serial fallback is needed
/// (no footprint sidecar, or incomplete coverage). Shared by the
/// conflict-derived DAG below and the recorded-order DAG in
/// [`crate::order`].
#[allow(clippy::type_complexity)]
pub(crate) fn build_timeline_nodes(
    recording: &Recording,
) -> Result<std::result::Result<Vec<Node>, String>> {
    let Some(footprints) = &recording.footprints else {
        return Ok(Err("recording carries no footprint sidecar".into()));
    };
    // Merge chunks and inputs into the same timestamp-ordered timeline
    // the serial replayer executes.
    let schedule = recording.chunks.replay_schedule()?;
    let mut timeline: Vec<(u64, NodeKind)> = schedule
        .into_iter()
        .map(|p| (p.timestamp.0, NodeKind::Chunk(p)))
        .chain(recording.inputs.events().iter().map(|e| (e.ts().0, NodeKind::Input(e.clone()))))
        .collect();
    timeline.sort_by_key(|(ts, _)| *ts);
    for window in timeline.windows(2) {
        if window[0].0 == window[1].0 {
            return Err(QrError::ReplayDivergence(format!(
                "duplicate timeline timestamp {}",
                window[0].0
            )));
        }
    }
    let mut nodes = Vec::with_capacity(timeline.len());
    for (ts, kind) in timeline {
        let (tid, needs_footprint) = match &kind {
            NodeKind::Chunk(p) => (p.tid, true),
            NodeKind::Input(InputEvent::Syscall { record, .. }) => (record.tid, true),
            // Signal delivery manipulates registers only; program order
            // suffices and no footprint is recorded for it.
            NodeKind::Input(InputEvent::Signal { tid, .. }) => (*tid, false),
        };
        let (pull, push) = if needs_footprint {
            let Some(fp) = footprints.get(qr_common::Cycle(ts)) else {
                return Ok(Err(format!("no footprint for timeline timestamp {ts}")));
            };
            let mut pull: Vec<LineAddr> = fp.reads.iter().chain(fp.writes.iter()).copied().collect();
            pull.sort_unstable();
            pull.dedup();
            (pull, fp.writes.clone())
        } else {
            (Vec::new(), Vec::new())
        };
        nodes.push(Node { kind, tid, pull, push });
    }
    Ok(Ok(nodes))
}

/// Builds the dependency DAG, or explains why serial fallback is needed.
#[allow(clippy::type_complexity)]
fn build_dag(recording: &Recording) -> Result<std::result::Result<Dag, String>> {
    let nodes = match build_timeline_nodes(recording)? {
        Ok(nodes) => nodes,
        Err(reason) => return Ok(Err(reason)),
    };

    // Edge construction: one timestamp-ordered sweep with per-line
    // last-writer / readers-since bookkeeping plus per-thread program
    // order and spawn edges.
    let mut preds: Vec<Vec<usize>> = Vec::with_capacity(nodes.len());
    let mut last_writer: HashMap<u32, usize> = HashMap::new();
    let mut readers_since: HashMap<u32, Vec<usize>> = HashMap::new();
    let mut last_of_tid: HashMap<u32, usize> = HashMap::new();
    let mut pending_spawn: HashMap<u32, usize> = HashMap::new();
    for (idx, node) in nodes.iter().enumerate() {
        let mut p: BTreeSet<usize> = BTreeSet::new();
        match last_of_tid.get(&node.tid.0) {
            Some(&prev) => {
                p.insert(prev);
            }
            None => {
                if let Some(&spawner) = pending_spawn.get(&node.tid.0) {
                    p.insert(spawner);
                }
            }
        }
        last_of_tid.insert(node.tid.0, idx);
        // Reads and writes are disjointly derivable from pull/push: the
        // push set is the writes; reads-only lines are pull minus push.
        for line in &node.pull {
            if let Some(&w) = last_writer.get(&line.0) {
                if w != idx {
                    p.insert(w);
                }
            }
            readers_since.entry(line.0).or_default().push(idx);
        }
        for line in &node.push {
            if let Some(since) = readers_since.get(&line.0) {
                p.extend(since.iter().copied().filter(|&r| r != idx));
            }
            if let Some(&w) = last_writer.get(&line.0) {
                if w != idx {
                    p.insert(w);
                }
            }
            last_writer.insert(line.0, idx);
            readers_since.remove(&line.0);
            // The writer itself still counts as a reader of the line's
            // new value for subsequent writers' WAR edges.
            readers_since.entry(line.0).or_default().push(idx);
        }
        if let NodeKind::Input(InputEvent::Syscall { record, .. }) = &node.kind {
            if record.number == abi::SYS_SPAWN && record.result != EFAULT {
                pending_spawn.insert(record.result, idx);
            }
        }
        preds.push(p.into_iter().collect());
    }
    let mut dag = Dag { nodes, preds, succs: Vec::new() };
    dag.link_succs();
    Ok(Ok(dag))
}

/// Per-thread replay lane: a private single-core machine plus the same
/// per-thread state the serial replayer tracks.
#[derive(Debug)]
struct Lane {
    machine: Machine,
    created: bool,
    exit_code: Option<u32>,
    handler: Option<VirtAddr>,
    signal_saved: Option<CpuContext>,
    nondet: VecDeque<(NondetKind, u32)>,
    last_reason: Option<TerminationReason>,
}

/// Shared state of one parallel replay run.
pub(crate) struct Runtime<'a> {
    recording: &'a Recording,
    dag: Dag,
    jobs: usize,
    lanes: Vec<Mutex<Lane>>,
    /// The authoritative memory image; its mapped-region list mirrors
    /// the serial replayer's mapping operations exactly (fingerprints
    /// hash region metadata as well as contents).
    canonical: Mutex<Machine>,
    ready: Mutex<VecDeque<usize>>,
    wake: Condvar,
    completed: AtomicUsize,
    abort: AtomicBool,
    /// First failure by timeline index, for deterministic error reports.
    failure: Mutex<Option<(usize, QrError)>>,
    indegree: Vec<AtomicUsize>,
    costs: Vec<AtomicU64>,
    instructions: AtomicU64,
    consoles: Mutex<BTreeMap<usize, Vec<u8>>>,
}

impl<'a> Runtime<'a> {
    pub(crate) fn new(
        program: &Program,
        recording: &'a Recording,
        dag: Dag,
        jobs: usize,
    ) -> Result<Runtime<'a>> {
        let max_tid = dag.nodes.iter().map(|n| n.tid.0).max().unwrap_or(0);
        let num_threads = max_tid as usize + 1;
        if num_threads > 250 {
            return Err(QrError::Unsupported(format!(
                "replay supports at most 250 threads, recording has {num_threads}"
            )));
        }
        let lane_cpu = CpuConfig {
            num_cores: 1,
            drain_interval: recording.meta.cpu.drain_interval,
            mem: recording.meta.cpu.mem.clone(),
        };
        let mut lanes = Vec::with_capacity(num_threads);
        for tid in 0..num_threads {
            let mut machine = Machine::new(program.clone(), lane_cpu.clone())?;
            // Lanes never fault on mapping: pulled lines are clipped to
            // canonical's regions, and recorded programs contain no wild
            // accesses (they would have faulted during recording).
            machine.mem_mut().map_region(VirtAddr(0), u32::MAX)?;
            lanes.push(Mutex::new(Lane {
                machine,
                created: false,
                exit_code: None,
                handler: None,
                signal_saved: None,
                nondet: recording.inputs.nondet_for(ThreadId(tid as u32)).iter().copied().collect(),
                last_reason: None,
            }));
        }
        let canonical = Machine::new(program.clone(), lane_cpu)?;
        let indegree = dag.preds.iter().map(|p| AtomicUsize::new(p.len())).collect();
        let ready: VecDeque<usize> =
            dag.preds.iter().enumerate().filter(|(_, p)| p.is_empty()).map(|(i, _)| i).collect();
        let costs = (0..dag.nodes.len()).map(|_| AtomicU64::new(0)).collect();
        let runtime = Runtime {
            recording,
            dag,
            jobs,
            lanes,
            canonical: Mutex::new(canonical),
            ready: Mutex::new(ready),
            wake: Condvar::new(),
            completed: AtomicUsize::new(0),
            abort: AtomicBool::new(false),
            failure: Mutex::new(None),
            indegree,
            costs,
            instructions: AtomicU64::new(0),
            consoles: Mutex::new(BTreeMap::new()),
        };
        runtime.create_thread(ThreadId(0), program.entry(), 0)?;
        Ok(runtime)
    }

    fn diverged(&self, msg: impl Into<String>) -> QrError {
        QrError::ReplayDivergence(msg.into())
    }

    /// The stack the kernel gave thread `tid` (same pure function of the
    /// tid the serial replayer uses).
    fn stack_range(&self, tid: ThreadId) -> (VirtAddr, VirtAddr) {
        let os = &self.recording.meta.os;
        let stride = os.stack_bytes + os.stack_guard_bytes;
        let top = STACK_TOP - tid.0 * stride;
        (VirtAddr(top - os.stack_bytes), VirtAddr(top))
    }

    /// Creates thread `tid`: context on its lane, stack region mapped in
    /// the canonical image (mirroring serial replay's mapping op).
    fn create_thread(&self, tid: ThreadId, entry: VirtAddr, arg: u32) -> Result<()> {
        let mut lane = self
            .lanes
            .get(tid.index())
            .ok_or_else(|| QrError::ReplayDivergence(format!("spawn of unknown thread {tid}")))?
            .lock()
            .unwrap();
        if lane.created {
            return Err(self.diverged(format!("{tid} created twice")));
        }
        lane.created = true;
        let (base, top) = self.stack_range(tid);
        self.canonical.lock().unwrap().mem_mut().map_region(base, top.0 - base.0)?;
        let mut ctx = CpuContext::new(entry);
        ctx.set_reg(Reg::SP, top.0);
        ctx.set_reg(Reg::R1, arg);
        lane.machine.core_mut(CoreId(0)).swap_context(Some(ctx));
        Ok(())
    }

    /// Copies the mapped parts of `lines` out of canonical memory.
    fn pull_lines(&self, lines: &[LineAddr]) -> Vec<(VirtAddr, Vec<u8>)> {
        if lines.is_empty() {
            return Vec::new();
        }
        let canonical = self.canonical.lock().unwrap();
        let mem = canonical.mem().memory();
        let regions: Vec<(u64, u64)> =
            mem.regions().map(|(b, l)| (u64::from(b.0), u64::from(b.0) + u64::from(l))).collect();
        let mut out = Vec::new();
        for &line in lines {
            let start = u64::from(line.0) << CACHE_LINE_SHIFT;
            let end = start + (1 << CACHE_LINE_SHIFT);
            for &(s, e) in &regions {
                let (lo, hi) = (start.max(s), end.min(e));
                if lo < hi {
                    let mut buf = vec![0u8; (hi - lo) as usize];
                    // Inside a mapped region by construction.
                    mem.read_bytes(VirtAddr(lo as u32), &mut buf).expect("clipped to mapped region");
                    out.push((VirtAddr(lo as u32), buf));
                }
            }
        }
        out
    }

    /// Copies the mapped parts of `lines` from `lane` into canonical
    /// memory. A write line with no mapped overlap at all is a
    /// divergence: serial replay would have faulted on that store.
    fn push_lines(&self, lane: &Lane, lines: &[LineAddr]) -> Result<()> {
        if lines.is_empty() {
            return Ok(());
        }
        let mut canonical = self.canonical.lock().unwrap();
        let regions: Vec<(u64, u64)> = canonical
            .mem()
            .memory()
            .regions()
            .map(|(b, l)| (u64::from(b.0), u64::from(b.0) + u64::from(l)))
            .collect();
        for &line in lines {
            let start = u64::from(line.0) << CACHE_LINE_SHIFT;
            let end = start + (1 << CACHE_LINE_SHIFT);
            let mut copied = false;
            for &(s, e) in &regions {
                let (lo, hi) = (start.max(s), end.min(e));
                if lo < hi {
                    let mut buf = vec![0u8; (hi - lo) as usize];
                    lane.machine
                        .mem()
                        .memory()
                        .read_bytes(VirtAddr(lo as u32), &mut buf)
                        .expect("lane memory is fully mapped");
                    canonical
                        .mem_mut()
                        .memory_mut()
                        .write_bytes(VirtAddr(lo as u32), &buf)
                        .expect("clipped to mapped region");
                    copied = true;
                }
            }
            if !copied {
                return Err(self.diverged(format!(
                    "chunk wrote line {:#x} outside every mapped region",
                    u64::from(line.0) << CACHE_LINE_SHIFT
                )));
            }
        }
        Ok(())
    }

    /// Executes one timeline node on its thread's lane.
    fn exec_node(&self, idx: usize) -> Result<()> {
        let node = &self.dag.nodes[idx];
        crate::obs::lines_pulled(node.pull.len());
        crate::obs::lines_pushed(node.push.len());
        let mut lane = self.lanes[node.tid.index()].lock().unwrap();
        for (addr, bytes) in self.pull_lines(&node.pull) {
            lane.machine
                .mem_mut()
                .memory_mut()
                .write_bytes(addr, &bytes)
                .expect("lane memory is fully mapped");
        }
        let before = lane.machine.core(CoreId(0)).cycles();
        match &node.kind {
            NodeKind::Chunk(packet) => self.exec_chunk(&mut lane, packet)?,
            NodeKind::Input(InputEvent::Syscall { record, .. }) => {
                if let Some(fragment) = self.apply_syscall(&mut lane, record)? {
                    self.consoles.lock().unwrap().insert(idx, fragment);
                }
            }
            NodeKind::Input(InputEvent::Signal { tid, .. }) => self.deliver_signal(&mut lane, *tid)?,
        }
        let cost = lane.machine.core(CoreId(0)).cycles() - before;
        self.push_lines(&lane, &node.push)?;
        self.costs[idx].store(cost, Ordering::Relaxed);
        Ok(())
    }

    /// Instruction-exact chunk execution — the lane-local mirror of the
    /// serial replayer's chunk loop (same nondet injection, boundary
    /// drain rule and RSW cross-check).
    fn exec_chunk(&self, lane: &mut Lane, packet: &ChunkPacket) -> Result<()> {
        let tid = packet.tid;
        let core = CoreId(0);
        if !lane.created {
            return Err(self.diverged(format!("chunk for never-created {tid}")));
        }
        if lane.exit_code.is_some() {
            return Err(self.diverged(format!("chunk for exited {tid}")));
        }
        let mut retired = 0u64;
        for i in 0..packet.icount {
            let last = i + 1 == packet.icount;
            let step = lane.machine.step(core);
            if step.instruction_retired() {
                retired += 1;
            }
            match step.outcome {
                StepOutcome::Retired => {}
                StepOutcome::Nondet { kind, rd } => {
                    let (rec_kind, value) = lane.nondet.pop_front().ok_or_else(|| {
                        QrError::ReplayDivergence(format!("{tid} ran out of nondet values"))
                    })?;
                    if rec_kind != kind {
                        return Err(self.diverged(format!(
                            "{tid} nondet kind mismatch: replayed {kind:?}, recorded {rec_kind:?}"
                        )));
                    }
                    lane.machine.write_reg(core, rd, value);
                }
                StepOutcome::Syscall => {
                    if !(last && packet.reason == TerminationReason::Syscall) {
                        return Err(self.diverged(format!(
                            "{tid} trapped into a syscall mid-chunk (instruction {i} of {})",
                            packet.icount
                        )));
                    }
                }
                StepOutcome::Halt => {
                    if !(last && packet.reason == TerminationReason::SphereEnd) {
                        return Err(self.diverged(format!("{tid} halted mid-chunk")));
                    }
                }
                StepOutcome::Fault(err) => {
                    return Err(self.diverged(format!("{tid} faulted during replay: {err}")));
                }
                StepOutcome::Idle => {
                    return Err(self.diverged(format!("{tid} has no context during its chunk")));
                }
            }
        }
        let drains = match packet.reason {
            TerminationReason::Syscall
            | TerminationReason::Trap
            | TerminationReason::ContextSwitch
            | TerminationReason::SphereEnd => true,
            TerminationReason::IcOverflow | TerminationReason::SigSaturation => {
                self.recording.meta.tso_mode == TsoMode::DrainAtChunk
            }
            TerminationReason::ConflictRaw
            | TerminationReason::ConflictWar
            | TerminationReason::ConflictWaw => false,
        };
        if drains {
            crate::obs::store_buffer_drain();
            lane.machine.drain_store_buffer(core)?;
        }
        let pending = lane.machine.mem().pending_stores(core).min(u8::MAX as usize) as u8;
        if pending != packet.rsw {
            return Err(self.diverged(format!(
                "{tid} pending-store count {pending} != recorded rsw {}",
                packet.rsw
            )));
        }
        lane.last_reason = Some(packet.reason);
        self.instructions.fetch_add(retired, Ordering::Relaxed);
        Ok(())
    }

    /// Injects one recorded syscall, returning the console fragment a
    /// successful `SYS_WRITE` reproduces.
    fn apply_syscall(&self, lane: &mut Lane, record: &SyscallRecord) -> Result<Option<Vec<u8>>> {
        let tid = record.tid;
        let core = CoreId(0);
        if !lane.created {
            return Err(self.diverged(format!("syscall record for never-created {tid}")));
        }
        if lane.last_reason == Some(TerminationReason::Syscall) {
            let replayed_number = lane.machine.read_reg(core, Reg::R0);
            if replayed_number != record.number {
                return Err(self.diverged(format!(
                    "{tid} invoked syscall {replayed_number} but the log records {}",
                    record.number
                )));
            }
            if record.number == abi::SYS_EXIT {
                let replayed_code = lane.machine.read_reg(core, Reg::R1);
                if replayed_code != record.result {
                    return Err(self.diverged(format!(
                        "{tid} exited with {replayed_code} but the log records {}",
                        record.result
                    )));
                }
            }
        }
        for (addr, data) in &record.writes {
            lane.machine
                .mem_mut()
                .memory_mut()
                .write_bytes(*addr, data)
                .map_err(|e| self.diverged(format!("kernel write during replay faulted: {e}")))?;
        }
        match record.number {
            abi::SYS_EXIT => {
                lane.exit_code = Some(record.result);
                lane.machine.core_mut(core).swap_context(None);
                return Ok(None);
            }
            abi::SYS_SIGRETURN => {
                let saved = lane
                    .signal_saved
                    .take()
                    .ok_or_else(|| QrError::ReplayDivergence(format!("{tid} sigreturn without a frame")))?;
                lane.machine.core_mut(core).swap_context(Some(saved));
                return Ok(None);
            }
            _ => {}
        }
        let a1 = lane.machine.read_reg(core, Reg::R1);
        let a2 = lane.machine.read_reg(core, Reg::R2);
        let mut fragment = None;
        match record.number {
            abi::SYS_SPAWN if record.result != EFAULT => {
                self.create_thread(ThreadId(record.result), VirtAddr(a1), a2)?;
            }
            abi::SYS_SBRK if record.result != EFAULT => {
                let grow = a1.div_ceil(64) * 64;
                if grow > 0 {
                    self.canonical.lock().unwrap().mem_mut().map_region(VirtAddr(record.result), grow)?;
                }
            }
            abi::SYS_WRITE if record.result != EFAULT => {
                let mut buf = vec![0u8; record.result as usize];
                lane.machine
                    .mem()
                    .memory()
                    .read_bytes(VirtAddr(a1), &mut buf)
                    .map_err(|e| self.diverged(format!("console read during replay faulted: {e}")))?;
                fragment = Some(buf);
            }
            abi::SYS_SIGACTION => {
                lane.handler = (a1 != 0).then_some(VirtAddr(a1));
            }
            _ => {}
        }
        lane.machine.write_reg(core, Reg::R0, record.result);
        Ok(fragment)
    }

    /// Redirects the lane to its signal handler (registers only, exactly
    /// like the kernel's delivery path).
    fn deliver_signal(&self, lane: &mut Lane, tid: ThreadId) -> Result<()> {
        let handler = lane
            .handler
            .ok_or_else(|| QrError::ReplayDivergence(format!("signal for {tid} without a handler")))?;
        let current = lane
            .machine
            .core_mut(CoreId(0))
            .swap_context(None)
            .ok_or_else(|| QrError::ReplayDivergence(format!("signal for contextless {tid}")))?;
        let mut frame = current.clone();
        lane.signal_saved = Some(current);
        frame.set_pc(handler);
        frame.set_reg(Reg::R1, 1);
        lane.machine.core_mut(CoreId(0)).swap_context(Some(frame));
        Ok(())
    }

    /// One worker: pop ready nodes, execute, release successors.
    fn worker(&self) {
        let total = self.dag.nodes.len();
        loop {
            let idx = {
                let mut queue = self.ready.lock().unwrap();
                loop {
                    if self.abort.load(Ordering::SeqCst) || self.completed.load(Ordering::SeqCst) == total {
                        return;
                    }
                    if let Some(idx) = queue.pop_front() {
                        crate::obs::queue_depth(queue.len());
                        break idx;
                    }
                    crate::obs::dag_stall();
                    queue = self.wake.wait(queue).unwrap();
                }
            };
            match self.exec_node(idx) {
                Ok(()) => {
                    let mut newly_ready = Vec::new();
                    for &succ in &self.dag.succs[idx] {
                        if self.indegree[succ].fetch_sub(1, Ordering::SeqCst) == 1 {
                            newly_ready.push(succ);
                        }
                    }
                    self.completed.fetch_add(1, Ordering::SeqCst);
                    let mut queue = self.ready.lock().unwrap();
                    queue.extend(newly_ready);
                    drop(queue);
                    self.wake.notify_all();
                }
                Err(err) => {
                    let mut slot = self.failure.lock().unwrap();
                    if slot.as_ref().is_none_or(|(i, _)| idx < *i) {
                        *slot = Some((idx, err));
                    }
                    drop(slot);
                    self.abort.store(true, Ordering::SeqCst);
                    self.wake.notify_all();
                    return;
                }
            }
        }
    }

    /// Deterministic simulated makespan: an event-driven greedy schedule
    /// of the DAG onto `jobs` workers using replayed cycle costs — each
    /// node dispatches to the earliest-free worker once its predecessors
    /// finish, nodes ordered by (ready time, timeline index). Host
    /// scheduling never influences the number, so experiment reports
    /// stay byte-identical run to run.
    fn simulated_makespan(&self) -> u64 {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let n = self.dag.nodes.len();
        let mut indeg: Vec<usize> = self.dag.preds.iter().map(Vec::len).collect();
        let mut ready_time = vec![0u64; n];
        let mut ready: BinaryHeap<Reverse<(u64, usize)>> =
            (0..n).filter(|&i| indeg[i] == 0).map(|i| Reverse((0, i))).collect();
        let mut workers: BinaryHeap<Reverse<u64>> = (0..self.jobs).map(|_| Reverse(0)).collect();
        let mut makespan = 0u64;
        while let Some(Reverse((ready_at, i))) = ready.pop() {
            let Reverse(free_at) = workers.pop().expect("jobs >= 1");
            let finish = ready_at.max(free_at) + self.costs[i].load(Ordering::Relaxed);
            makespan = makespan.max(finish);
            workers.push(Reverse(finish));
            for &succ in &self.dag.succs[i] {
                ready_time[succ] = ready_time[succ].max(finish);
                indeg[succ] -= 1;
                if indeg[succ] == 0 {
                    ready.push(Reverse((ready_time[succ], succ)));
                }
            }
        }
        makespan
    }

    pub(crate) fn run(self) -> Result<ReplayOutcome> {
        crate::obs::run_started("parallel");
        let workers = self.jobs.min(self.dag.nodes.len()).clamp(1, 32);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| self.worker());
            }
        });
        if let Some((_, err)) = self.failure.lock().unwrap().take() {
            return Err(err);
        }
        let total = self.dag.nodes.len();
        let completed = self.completed.load(Ordering::SeqCst);
        crate::obs::nodes_executed("parallel", completed as u64);
        if completed != total {
            // A dependency cycle is impossible (edges follow timestamp
            // order); reaching this means the scheduler wedged.
            return Err(QrError::Execution {
                detail: format!(
                    "parallel replay stalled: {completed} of {total} timeline events executed"
                ),
            });
        }
        let mut exit_codes = Vec::with_capacity(self.lanes.len());
        let mut chunks_replayed = 0;
        let mut inputs_injected = 0;
        for node in &self.dag.nodes {
            match node.kind {
                NodeKind::Chunk(_) => chunks_replayed += 1,
                NodeKind::Input(_) => inputs_injected += 1,
            }
        }
        for (i, lane) in self.lanes.iter().enumerate() {
            let lane = lane.lock().unwrap();
            if lane.created && lane.exit_code.is_none() {
                return Err(self.diverged(format!("tid{i} never exited during replay")));
            }
            exit_codes.push(lane.exit_code);
        }
        let mut console = Vec::new();
        for fragment in self.consoles.lock().unwrap().values() {
            console.extend_from_slice(fragment);
        }
        let cycles = self.simulated_makespan();
        let canonical = self.canonical.lock().unwrap();
        let fingerprint = qr_os::native::fingerprint_of(&canonical, &console, &exit_codes);
        Ok(ReplayOutcome {
            console,
            exit_code: exit_codes.first().copied().flatten().unwrap_or(0),
            fingerprint,
            cycles,
            instructions: self.instructions.load(Ordering::Relaxed),
            chunks_replayed,
            inputs_injected,
        })
    }
}

impl std::fmt::Debug for Runtime<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("nodes", &self.dag.nodes.len())
            .field("jobs", &self.jobs)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replayer::replay;
    use qr_capo::{record, RecordingConfig};
    use qr_isa::Asm;

    fn sys(a: &mut Asm, number: u32, set_args: impl FnOnce(&mut Asm)) {
        a.movi_u(Reg::R0, number);
        set_args(a);
        a.syscall();
    }

    /// The serial replayer tests' locked-counter program.
    fn racy_program() -> Program {
        let mut a = Asm::new();
        a.data_word("counter", &[0]);
        a.align_data_line();
        a.data_word("lock", &[0]);
        sys(&mut a, abi::SYS_SPAWN, |a| {
            a.movi_sym(Reg::R1, "work");
            a.movi(Reg::R2, 0);
        });
        a.mov(Reg::R6, Reg::R0);
        a.call("work_body");
        sys(&mut a, abi::SYS_JOIN, |a| {
            a.mov(Reg::R1, Reg::R6);
        });
        sys(&mut a, abi::SYS_EXIT, |a| {
            a.movi_sym(Reg::R2, "counter");
            a.ld(Reg::R1, Reg::R2, 0);
        });
        a.label("work");
        a.call("work_body");
        sys(&mut a, abi::SYS_EXIT, |a| {
            a.movi(Reg::R1, 0);
        });
        a.label("work_body");
        a.movi(Reg::R8, 40);
        a.label("iter");
        a.movi_sym(Reg::R2, "lock");
        a.label("acquire");
        a.movi(Reg::R3, 0);
        a.movi(Reg::R4, 1);
        a.cas(Reg::R3, Reg::R2, Reg::R4);
        a.beqz(Reg::R3, "locked");
        a.pause();
        a.jmp("acquire");
        a.label("locked");
        a.movi_sym(Reg::R5, "counter");
        a.ld(Reg::R7, Reg::R5, 0);
        a.addi(Reg::R7, Reg::R7, 1);
        a.st(Reg::R5, 0, Reg::R7);
        a.movi(Reg::R3, 0);
        a.xchg(Reg::R3, Reg::R2);
        a.addi(Reg::R8, Reg::R8, -1);
        a.bnez(Reg::R8, "iter");
        a.ret();
        a.finish().unwrap()
    }

    #[test]
    fn parallel_matches_serial_on_the_racy_counter() {
        let program = racy_program();
        let recording = record(program.clone(), RecordingConfig::with_cores(2)).unwrap();
        let serial = replay(&program, &recording).unwrap();
        for jobs in [1, 2, 4] {
            let replayer = ParallelReplayer::new(&program, &recording, jobs).unwrap();
            assert_eq!(replayer.fallback_reason(), None);
            assert!(replayer.node_count() > 0);
            let outcome = replayer.run().unwrap();
            assert_eq!(outcome.fingerprint, serial.fingerprint, "jobs={jobs}");
            assert_eq!(outcome.console, serial.console);
            assert_eq!(outcome.exit_code, serial.exit_code);
            assert_eq!(outcome.instructions, serial.instructions);
            assert_eq!(outcome.chunks_replayed, serial.chunks_replayed);
            assert_eq!(outcome.inputs_injected, serial.inputs_injected);
            outcome.verify_against(&recording).unwrap();
        }
    }

    #[test]
    fn missing_footprints_fall_back_to_serial() {
        let program = racy_program();
        let mut recording = record(program.clone(), RecordingConfig::with_cores(2)).unwrap();
        recording.footprints = None;
        let replayer = ParallelReplayer::new(&program, &recording, 4).unwrap();
        assert!(replayer.fallback_reason().unwrap().contains("no footprint sidecar"));
        let outcome = replayer.run().unwrap();
        outcome.verify_against(&recording).unwrap();
    }

    #[test]
    fn partial_footprints_fall_back_to_serial() {
        let program = racy_program();
        let mut recording = record(program.clone(), RecordingConfig::with_cores(2)).unwrap();
        // Keep a strict prefix of the footprints, as a torn sidecar would.
        let full = recording.footprints.take().unwrap();
        let mut prefix = quickrec_core::FootprintLog::new();
        for fp in full.iter().take(full.len() / 2) {
            prefix.push(fp.clone());
        }
        recording.footprints = Some(prefix);
        let replayer = ParallelReplayer::new(&program, &recording, 2).unwrap();
        assert!(replayer.fallback_reason().unwrap().contains("no footprint for"));
        replayer.run().unwrap().verify_against(&recording).unwrap();
    }

    #[test]
    fn zero_jobs_is_rejected() {
        let program = racy_program();
        let recording = record(program.clone(), RecordingConfig::with_cores(2)).unwrap();
        assert!(matches!(
            ParallelReplayer::new(&program, &recording, 0),
            Err(QrError::InvalidConfig(_))
        ));
    }

    #[test]
    fn wrong_program_is_rejected() {
        let program = racy_program();
        let recording = record(program, RecordingConfig::with_cores(2)).unwrap();
        let mut other = Asm::new();
        other.halt();
        let other = other.finish().unwrap();
        assert!(matches!(
            ParallelReplayer::new(&other, &recording, 2),
            Err(QrError::ReplayDivergence(_))
        ));
    }

    #[test]
    fn rsw_mode_recordings_replay_in_parallel() {
        let program = racy_program();
        let mut cfg = RecordingConfig::with_cores(2);
        cfg.cpu.mem.tso_mode = TsoMode::Rsw;
        cfg.cpu.drain_interval = 12;
        let recording = record(program.clone(), cfg).unwrap();
        let serial = replay(&program, &recording).unwrap();
        let outcome = replay_parallel_and_verify(&program, &recording, 4).unwrap();
        assert_eq!(outcome.fingerprint, serial.fingerprint);
    }

    #[test]
    fn makespan_is_deterministic_and_bounded() {
        let program = racy_program();
        let recording = record(program.clone(), RecordingConfig::with_cores(4)).unwrap();
        let one = replay_parallel(&program, &recording, 1).unwrap();
        let four_a = replay_parallel(&program, &recording, 4).unwrap();
        let four_b = replay_parallel(&program, &recording, 4).unwrap();
        assert_eq!(four_a.cycles, four_b.cycles, "makespan must not depend on host scheduling");
        assert!(four_a.cycles <= one.cycles, "more workers can only shorten the schedule");
        assert_eq!(four_a.fingerprint, one.fingerprint);
    }
}
