//! Microbenchmarks of the recording hardware's critical paths (A4):
//! signature insert/probe, chunk-packet encode/decode, varint codecs.
//!
//! These are the operations a real MRR performs on every memory access
//! and every chunk termination; their software cost bounds how fast the
//! simulator can record.
//!
//! Harness-less: a small fixed-time measurement loop (no external
//! benchmarking crate — the container builds fully offline).

use qr_bench::timing::Bench;
use qr_common::{varint, Cycle, LineAddr, ThreadId};
use quickrec_core::signature::Signature;
use quickrec_core::{ChunkPacket, Encoding, TerminationReason};
use std::hint::black_box;

fn packets(n: usize) -> Vec<ChunkPacket> {
    let mut ts = 0u64;
    (0..n)
        .map(|i| {
            ts += 3 + (i as u64 % 29);
            ChunkPacket {
                tid: ThreadId((i % 4) as u32),
                core: qr_common::CoreId((i % 4) as u8),
                icount: (i as u64 * 131) % 10_000,
                timestamp: Cycle(ts),
                rsw: (i % 4) as u8,
                reason: TerminationReason::ALL[i % TerminationReason::ALL.len()],
            }
        })
        .collect()
}

fn bench_signature(b: &mut Bench) {
    for bits in [512u32, 2048, 8192] {
        b.run_throughput(&format!("signature/insert-1k/{bits}b"), 1024, || {
            let mut sig = Signature::new(bits, 2);
            for i in 0..1024u32 {
                sig.insert(LineAddr(i.wrapping_mul(2654435761)));
            }
            sig
        });
        let mut sig = Signature::new(bits, 2);
        for i in 0..256u32 {
            sig.insert(LineAddr(i));
        }
        b.run_throughput(&format!("signature/probe-1k/{bits}b"), 1024, || {
            let mut hits = 0u32;
            for i in 0..1024u32 {
                hits += sig.maybe_contains(black_box(LineAddr(i))) as u32;
            }
            hits
        });
    }
}

fn bench_encoding(b: &mut Bench) {
    let ps = packets(4096);
    for enc in Encoding::ALL {
        b.run_throughput(&format!("encoding/encode/{}", enc.name()), ps.len() as u64, || {
            enc.encode_stream(black_box(&ps))
        });
        let bytes = enc.encode_stream(&ps);
        b.run_throughput(&format!("encoding/decode/{}", enc.name()), ps.len() as u64, || {
            Encoding::decode_stream(black_box(&bytes)).expect("valid stream")
        });
    }
}

fn bench_varint(b: &mut Bench) {
    let values: Vec<u64> =
        (0..4096u64).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> (i % 40)).collect();
    b.run_throughput("varint/write", values.len() as u64, || {
        let mut buf = Vec::with_capacity(values.len() * 5);
        for &v in &values {
            varint::write_u64(&mut buf, black_box(v));
        }
        buf
    });
    let mut buf = Vec::new();
    for &v in &values {
        varint::write_u64(&mut buf, v);
    }
    b.run_throughput("varint/read", values.len() as u64, || {
        let mut off = 0;
        let mut sum = 0u64;
        while off < buf.len() {
            let (v, n) = varint::read_u64(&buf[off..]).expect("valid");
            sum = sum.wrapping_add(v);
            off += n;
        }
        sum
    });
}

fn main() {
    let mut b = Bench::from_env();
    bench_signature(&mut b);
    bench_encoding(&mut b);
    bench_varint(&mut b);
}
