//! Microbenchmarks of the recording hardware's critical paths (A4):
//! signature insert/probe, chunk-packet encode/decode, varint codecs.
//!
//! These are the operations a real MRR performs on every memory access
//! and every chunk termination; their software cost bounds how fast the
//! simulator can record.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use qr_common::{varint, Cycle, LineAddr, ThreadId};
use quickrec_core::signature::Signature;
use quickrec_core::{ChunkPacket, Encoding, TerminationReason};
use std::hint::black_box;

fn packets(n: usize) -> Vec<ChunkPacket> {
    let mut ts = 0u64;
    (0..n)
        .map(|i| {
            ts += 3 + (i as u64 % 29);
            ChunkPacket {
                tid: ThreadId((i % 4) as u32),
                core: qr_common::CoreId((i % 4) as u8),
                icount: (i as u64 * 131) % 10_000,
                timestamp: Cycle(ts),
                rsw: (i % 4) as u8,
                reason: TerminationReason::ALL[i % TerminationReason::ALL.len()],
            }
        })
        .collect()
}

fn bench_signature(c: &mut Criterion) {
    let mut group = c.benchmark_group("signature");
    for bits in [512u32, 2048, 8192] {
        group.throughput(Throughput::Elements(1024));
        group.bench_function(format!("insert-1k/{bits}b"), |b| {
            b.iter_batched(
                || Signature::new(bits, 2),
                |mut sig| {
                    for i in 0..1024u32 {
                        sig.insert(LineAddr(i.wrapping_mul(2654435761)));
                    }
                    sig
                },
                BatchSize::SmallInput,
            );
        });
        group.bench_function(format!("probe-1k/{bits}b"), |b| {
            let mut sig = Signature::new(bits, 2);
            for i in 0..256u32 {
                sig.insert(LineAddr(i));
            }
            b.iter(|| {
                let mut hits = 0u32;
                for i in 0..1024u32 {
                    hits += sig.maybe_contains(black_box(LineAddr(i))) as u32;
                }
                hits
            });
        });
    }
    group.finish();
}

fn bench_encoding(c: &mut Criterion) {
    let ps = packets(4096);
    let mut group = c.benchmark_group("encoding");
    group.throughput(Throughput::Elements(ps.len() as u64));
    for enc in Encoding::ALL {
        group.bench_function(format!("encode/{}", enc.name()), |b| {
            b.iter(|| enc.encode_stream(black_box(&ps)));
        });
        let bytes = enc.encode_stream(&ps);
        group.bench_function(format!("decode/{}", enc.name()), |b| {
            b.iter(|| Encoding::decode_stream(black_box(&bytes)).expect("valid stream"));
        });
    }
    group.finish();
}

fn bench_varint(c: &mut Criterion) {
    let values: Vec<u64> = (0..4096u64).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> (i % 40)).collect();
    let mut group = c.benchmark_group("varint");
    group.throughput(Throughput::Elements(values.len() as u64));
    group.bench_function("write", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(values.len() * 5);
            for &v in &values {
                varint::write_u64(&mut buf, black_box(v));
            }
            buf
        });
    });
    let mut buf = Vec::new();
    for &v in &values {
        varint::write_u64(&mut buf, v);
    }
    group.bench_function("read", |b| {
        b.iter(|| {
            let mut off = 0;
            let mut sum = 0u64;
            while off < buf.len() {
                let (v, n) = varint::read_u64(&buf[off..]).expect("valid");
                sum = sum.wrapping_add(v);
                off += n;
            }
            sum
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_signature, bench_encoding, bench_varint
}
criterion_main!(benches);
