//! End-to-end simulator throughput: native execution, full-stack
//! recording, and replay of representative workloads. The metric that
//! matters is simulated instructions per second of host time.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use qr_capo::{record, RecordingConfig};
use qr_cpu::{CpuConfig, Machine};
use qr_os::{run_native, OsConfig};
use qr_replay::replay;
use qr_workloads::{suite, Scale};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    for name in ["fft", "radix"] {
        let spec = qr_workloads::suite::find(name).expect("suite member");
        let program = (spec.build)(4, Scale::Small).expect("builds");
        let instructions = {
            let mut m = Machine::new(
                program.clone(),
                CpuConfig { num_cores: 4, ..CpuConfig::default() },
            )
            .expect("machine");
            run_native(&mut m, OsConfig::default()).expect("runs").instructions
        };
        let mut group = c.benchmark_group(format!("pipeline/{name}"));
        group.throughput(Throughput::Elements(instructions));
        group.bench_function("native", |b| {
            b.iter(|| {
                let mut m = Machine::new(
                    black_box(program.clone()),
                    CpuConfig { num_cores: 4, ..CpuConfig::default() },
                )
                .expect("machine");
                run_native(&mut m, OsConfig::default()).expect("runs")
            });
        });
        group.bench_function("record", |b| {
            b.iter(|| record(black_box(program.clone()), RecordingConfig::with_cores(4)).expect("records"));
        });
        let recording = record(program.clone(), RecordingConfig::with_cores(4)).expect("records");
        group.bench_function("replay", |b| {
            b.iter(|| replay(black_box(&program), black_box(&recording)).expect("replays"));
        });
        group.finish();
    }
}

fn bench_suite_record(c: &mut Criterion) {
    let mut group = c.benchmark_group("record-suite");
    group.sample_size(10);
    for spec in suite() {
        let program = (spec.build)(4, Scale::Test).expect("builds");
        group.bench_function(spec.name, |b| {
            b.iter(|| record(black_box(program.clone()), RecordingConfig::with_cores(4)).expect("records"));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_pipeline, bench_suite_record
}
criterion_main!(benches);
