//! End-to-end simulator throughput: native execution, full-stack
//! recording, and replay of representative workloads. The metric that
//! matters is simulated instructions per second of host time.
//!
//! Harness-less: a small fixed-time measurement loop (no external
//! benchmarking crate — the container builds fully offline).

use qr_bench::timing::Bench;
use qr_capo::{record, RecordingConfig};
use qr_cpu::{CpuConfig, Machine};
use qr_os::{run_native, OsConfig};
use qr_replay::replay;
use qr_workloads::{suite, Scale};
use std::hint::black_box;

fn bench_pipeline(b: &mut Bench) {
    for name in ["fft", "radix"] {
        let spec = qr_workloads::suite::find(name).expect("suite member");
        let program = (spec.build)(4, Scale::Small).expect("builds");
        let instructions = {
            let mut m = Machine::new(
                program.clone(),
                CpuConfig { num_cores: 4, ..CpuConfig::default() },
            )
            .expect("machine");
            run_native(&mut m, OsConfig::default()).expect("runs").instructions
        };
        b.run_throughput(&format!("pipeline/{name}/native"), instructions, || {
            let mut m = Machine::new(
                black_box(program.clone()),
                CpuConfig { num_cores: 4, ..CpuConfig::default() },
            )
            .expect("machine");
            run_native(&mut m, OsConfig::default()).expect("runs")
        });
        b.run_throughput(&format!("pipeline/{name}/record"), instructions, || {
            record(black_box(program.clone()), RecordingConfig::with_cores(4)).expect("records")
        });
        let recording = record(program.clone(), RecordingConfig::with_cores(4)).expect("records");
        b.run_throughput(&format!("pipeline/{name}/replay"), instructions, || {
            replay(black_box(&program), black_box(&recording)).expect("replays")
        });
    }
}

fn bench_suite_record(b: &mut Bench) {
    for spec in suite() {
        let program = (spec.build)(4, Scale::Test).expect("builds");
        b.run(&format!("record-suite/{}", spec.name), || {
            record(black_box(program.clone()), RecordingConfig::with_cores(4)).expect("records")
        });
    }
}

fn main() {
    let mut b = Bench::from_env();
    bench_pipeline(&mut b);
    bench_suite_record(&mut b);
}
