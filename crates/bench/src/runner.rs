//! The parallel experiment executor.
//!
//! Every experiment in the `repro` harness decomposes into independent
//! jobs — one per (experiment, workload, configuration) tuple — and each
//! job is a deterministic simulation, so the whole suite can fan out
//! across cores. The runner executes a submission-ordered job list on a
//! scoped thread pool and returns results **in submission order**, which
//! makes parallel output byte-identical to the serial fallback
//! (`--serial`): rendering happens after execution, from the ordered
//! results, and the simulator itself is deterministic.
//!
//! A shared [`BuildCache`] deduplicates workload program builds across
//! experiments: the suite builds each (workload, threads, scale) program
//! once instead of once per experiment that touches it.

use qr_common::Result;
use qr_isa::Program;
use qr_workloads::{Scale, WorkloadSpec};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// What one experiment job produced: zero or more table rows, plus an
/// optional scalar that experiment footers aggregate (e.g. the mean
/// log-generation rate across workloads).
#[derive(Debug, Clone, Default)]
pub struct JobOutput {
    /// Table rows, appended to the experiment's table in job order.
    pub rows: Vec<Vec<String>>,
    /// Scalar contributed to the experiment's footer aggregate, if any.
    pub stat: Option<f64>,
}

impl JobOutput {
    /// A single-row output with no footer statistic.
    pub fn row<S: Into<String>>(cells: impl IntoIterator<Item = S>) -> JobOutput {
        JobOutput { rows: vec![cells.into_iter().map(Into::into).collect()], stat: None }
    }

    /// Attaches a footer statistic.
    pub fn with_stat(mut self, stat: f64) -> JobOutput {
        self.stat = Some(stat);
        self
    }
}

/// One unit of experiment work, run on a worker thread with access to the
/// shared build cache.
pub type Job = Box<dyn FnOnce(&BuildCache) -> Result<JobOutput> + Send>;

/// How the job list is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// In submission order on the calling thread (the reference mode the
    /// parallel executor must match byte for byte).
    Serial,
    /// On a scoped thread pool with this many workers.
    Parallel {
        /// Worker-thread count (clamped to at least 1).
        workers: usize,
    },
}

impl ExecMode {
    /// Parallel execution sized to the host's available cores.
    pub fn parallel_default() -> ExecMode {
        let workers =
            std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
        ExecMode::Parallel { workers }
    }
}

/// Executes `jobs`, returning one result per job **in submission order**
/// regardless of completion order.
///
/// In parallel mode the jobs are pulled from a shared queue by
/// `workers` scoped threads; a panicking job propagates the panic to the
/// caller when the scope joins.
pub fn run_jobs(jobs: Vec<Job>, cache: &BuildCache, mode: ExecMode) -> Vec<Result<JobOutput>> {
    match mode {
        ExecMode::Serial => jobs.into_iter().map(|job| job(cache)).collect(),
        ExecMode::Parallel { workers } => {
            let n = jobs.len();
            let slots: Vec<Mutex<Option<Job>>> =
                jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
            let results: Vec<Mutex<Option<Result<JobOutput>>>> =
                (0..n).map(|_| Mutex::new(None)).collect();
            let next = AtomicUsize::new(0);
            let workers = workers.clamp(1, n.max(1));
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let job = slots[i].lock().expect("job slot").take().expect("job taken once");
                        let out = job(cache);
                        *results[i].lock().expect("result slot") = Some(out);
                    });
                }
            });
            results
                .into_iter()
                .map(|m| m.into_inner().expect("result slot").expect("every job ran"))
                .collect()
        }
    }
}

/// A concurrent, deduplicating cache of built workload programs, keyed on
/// (workload, threads, scale).
///
/// Workload builds are pure functions of the key, so the first job to
/// need a program builds it and every later job (in any experiment)
/// clones the cached image. Each key is built exactly once even under
/// concurrent first access.
#[derive(Debug, Default)]
pub struct BuildCache {
    entries: Mutex<HashMap<(&'static str, usize, Scale), Arc<OnceLock<Result<Program>>>>>,
    builds: AtomicU64,
    hits: AtomicU64,
}

impl BuildCache {
    /// Creates an empty cache.
    pub fn new() -> BuildCache {
        BuildCache::default()
    }

    /// Returns the program for `spec` at (`threads`, `scale`), building it
    /// on first use.
    ///
    /// # Errors
    ///
    /// Propagates the workload's build error (the same error on every
    /// lookup of a failed key).
    pub fn program(&self, spec: &WorkloadSpec, threads: usize, scale: Scale) -> Result<Program> {
        let cell = {
            let mut entries = self.entries.lock().expect("cache lock");
            entries.entry((spec.name, threads, scale)).or_default().clone()
        };
        let mut built_here = false;
        let result = cell.get_or_init(|| {
            built_here = true;
            (spec.build)(threads, scale)
        });
        if built_here {
            self.builds.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        result.clone()
    }

    /// Number of programs actually built.
    pub fn builds(&self) -> u64 {
        self.builds.load(Ordering::Relaxed)
    }

    /// Number of lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counting_job(i: usize) -> Job {
        Box::new(move |_cache| Ok(JobOutput::row([format!("job{i}")]).with_stat(i as f64)))
    }

    #[test]
    fn results_come_back_in_submission_order() {
        for mode in [ExecMode::Serial, ExecMode::Parallel { workers: 7 }] {
            let jobs: Vec<Job> = (0..64).map(counting_job).collect();
            let cache = BuildCache::new();
            let outputs = run_jobs(jobs, &cache, mode);
            assert_eq!(outputs.len(), 64);
            for (i, out) in outputs.iter().enumerate() {
                let out = out.as_ref().unwrap();
                assert_eq!(out.rows, vec![vec![format!("job{i}")]]);
                assert_eq!(out.stat, Some(i as f64));
            }
        }
    }

    #[test]
    fn errors_are_reported_per_job() {
        let jobs: Vec<Job> = vec![
            counting_job(0),
            Box::new(|_| Err(qr_common::QrError::Execution { detail: "boom".into() })),
            counting_job(2),
        ];
        let outputs = run_jobs(jobs, &BuildCache::new(), ExecMode::Parallel { workers: 2 });
        assert!(outputs[0].is_ok());
        assert!(outputs[1].is_err());
        assert!(outputs[2].is_ok());
    }

    #[test]
    fn worker_count_exceeding_jobs_is_fine() {
        let jobs: Vec<Job> = (0..3).map(counting_job).collect();
        let outputs = run_jobs(jobs, &BuildCache::new(), ExecMode::Parallel { workers: 64 });
        assert_eq!(outputs.len(), 3);
        assert!(outputs.iter().all(Result::is_ok));
    }

    #[test]
    fn build_cache_builds_each_key_once_under_concurrency() {
        let spec = qr_workloads::suite::find("fft").expect("suite member");
        let cache = BuildCache::new();
        let jobs: Vec<Job> = (0..16)
            .map(|_| {
                Box::new(move |cache: &BuildCache| {
                    let program = cache.program(&spec, 2, Scale::Test)?;
                    Ok(JobOutput::row([format!("{}", program.code().len())]))
                }) as Job
            })
            .collect();
        let outputs = run_jobs(jobs, &cache, ExecMode::Parallel { workers: 8 });
        assert!(outputs.iter().all(Result::is_ok));
        assert_eq!(cache.builds(), 1, "one build for one key");
        assert_eq!(cache.hits(), 15);
        // A different key builds separately.
        cache.program(&spec, 4, Scale::Test).unwrap();
        assert_eq!(cache.builds(), 2);
    }

    #[test]
    fn recording_artifacts_are_send() {
        // The runner moves recordings and sessions across worker threads;
        // keep that a compile-time guarantee.
        fn assert_send<T: Send>() {}
        assert_send::<qr_capo::Recording>();
        assert_send::<qr_capo::RecordingSession>();
        assert_send::<Program>();
    }
}
