//! Minimal timing harness for the `benches/` targets.
//!
//! The workspace builds fully offline, so the bench binaries cannot pull
//! in an external benchmarking crate. This module provides the small
//! subset actually needed: a warmed-up, fixed-duration measurement loop
//! that reports mean wall time per iteration and, optionally, element
//! throughput.

use std::time::{Duration, Instant};

/// Runs `f` repeatedly for roughly `window` (after a quarter-window
/// warm-up) and returns the iteration count and the measured elapsed
/// time. This is the primitive behind [`Bench`] and the `repro e13`
/// hot-path benchmark, exposed so experiments can consume rates as
/// numbers instead of printed lines.
pub fn measure<R>(window: Duration, mut f: impl FnMut() -> R) -> (u64, Duration) {
    let warmup = window / 4;
    let warm_start = Instant::now();
    while warm_start.elapsed() < warmup {
        std::hint::black_box(f());
    }
    let start = Instant::now();
    let mut iters = 0u64;
    loop {
        std::hint::black_box(f());
        iters += 1;
        let elapsed = start.elapsed();
        if elapsed >= window {
            return (iters, elapsed);
        }
    }
}

/// Throughput of `f` in bytes per second, where each call processes
/// `bytes` input bytes.
pub fn bytes_per_sec<R>(window: Duration, bytes: usize, f: impl FnMut() -> R) -> f64 {
    let (iters, elapsed) = measure(window, f);
    bytes as f64 * iters as f64 / elapsed.as_secs_f64().max(f64::MIN_POSITIVE)
}

/// A sequential benchmark session printing one line per benchmark.
#[derive(Debug)]
pub struct Bench {
    measure: Duration,
    warmup: Duration,
}

impl Bench {
    /// Creates a session from the environment: `QR_BENCH_MS` overrides
    /// the per-benchmark measurement window (default 2000 ms; warm-up is
    /// a quarter of the window).
    pub fn from_env() -> Bench {
        let ms = std::env::var("QR_BENCH_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(2000);
        Bench {
            measure: Duration::from_millis(ms.max(1)),
            warmup: Duration::from_millis((ms / 4).max(1)),
        }
    }

    /// Runs `f` repeatedly for the measurement window and prints the mean
    /// iteration time.
    pub fn run<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        let (iters, elapsed) = self.measure_loop(&mut f);
        let per_iter = elapsed / iters.max(1) as u32;
        println!("{name:<40} {:>12} iters  {:>14}/iter", iters, fmt_duration(per_iter));
    }

    /// Like [`Bench::run`], also reporting throughput for `elems`
    /// elements processed per iteration.
    pub fn run_throughput<R>(&mut self, name: &str, elems: u64, mut f: impl FnMut() -> R) {
        let (iters, elapsed) = self.measure_loop(&mut f);
        let per_iter = elapsed / iters.max(1) as u32;
        let rate = elems as f64 * iters as f64 / elapsed.as_secs_f64();
        println!(
            "{name:<40} {:>12} iters  {:>14}/iter  {:>10}/s",
            iters,
            fmt_duration(per_iter),
            fmt_rate(rate)
        );
    }

    fn measure_loop<R>(&self, f: &mut impl FnMut() -> R) -> (u64, Duration) {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warmup {
            std::hint::black_box(f());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            std::hint::black_box(f());
            iters += 1;
            let elapsed = start.elapsed();
            if elapsed >= self.measure {
                return (iters, elapsed);
            }
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn fmt_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2} G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} k", rate / 1e3)
    } else {
        format!("{rate:.0} ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_formatting_picks_sane_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }

    #[test]
    fn rate_formatting_picks_sane_units() {
        assert_eq!(fmt_rate(2_500_000.0), "2.50 M");
        assert_eq!(fmt_rate(999.0), "999 ");
    }
}
