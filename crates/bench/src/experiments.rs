//! The experiment catalog: every table and figure of the QuickRec
//! evaluation, expressed as declarative job lists for the parallel
//! executor (see `runner`).
//!
//! Each experiment contributes one [`Job`] per (workload, configuration)
//! tuple. Jobs run in any order on worker threads; rendering consumes
//! their outputs in submission order, so the printed report is identical
//! whichever execution mode produced it.

use crate::runner::{run_jobs, BuildCache, ExecMode, Job, JobOutput};
use crate::{hw_cfg, overhead_pct, pct, record_workload_with, run_native_workload_with, Table,
            CORE_HZ};
use qr_capo::{InputEvent, RecordingConfig};
use qr_common::QrError;
use qr_mem::TsoMode;
use qr_workloads::{suite, Scale, WorkloadSpec};
use quickrec_core::{Encoding, MrrConfig, OrderMode, TerminationReason};

/// Every deterministic experiment id, in report order (`repro all`).
pub const ALL_IDS: [&str; 22] = [
    "t1", "t2", "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e9b", "e10", "e11", "e12",
    "a1", "a2", "a3", "a5", "a6", "r1", "v1",
];

/// Experiments that report host wall-clock time. They are excluded from
/// `repro all` — their numbers vary run to run, so including them would
/// break the harness guarantee that parallel output is byte-identical
/// to `--serial` — and must be invoked explicitly (like `cargo bench`).
pub const WALL_CLOCK_IDS: [&str; 5] = ["e10b", "e13", "e14", "e15", "e16"];

/// What an experiment prints after its table.
enum Footer {
    /// Nothing.
    None,
    /// A fixed line.
    Static(&'static str),
    /// A line computed from the mean of the jobs' footer statistics.
    MeanStat(fn(f64) -> String),
}

/// One experiment: identity, table shape, and its job list.
pub struct Experiment {
    /// Report id (`e5`, `a1`, …).
    pub id: &'static str,
    title: &'static str,
    note: &'static str,
    header: Vec<String>,
    jobs: Vec<Job>,
    footer: Footer,
}

fn full_cfg(threads: usize) -> RecordingConfig {
    crate::full_cfg(threads)
}

/// Builds the experiment with the given id, or `None` for unknown ids.
pub fn plan(id: &str) -> Option<Experiment> {
    Some(match id {
        "t1" => t1(),
        "t2" => t2(),
        "e1" => e1(),
        "e2" => e2(),
        "e3" => e3(),
        "e4" => e4(),
        "e5" => e5(),
        "e6" => e6(),
        "e7" => e7(),
        "e8" => e8(),
        "e9" => e9(),
        "e9b" => e9b(),
        "e10" => e10(),
        "e10b" => e10b(),
        "e11" => e11(),
        "e12" => e12(),
        "e13" => e13(),
        "e14" => e14(),
        "e15" => e15(),
        "e16" => e16(),
        "a1" => a1(),
        "a2" => a2(),
        "a3" => a3(),
        "a5" => a5(),
        "a6" => a6(),
        "r1" => r1(),
        "v1" => v1(),
        _ => return None,
    })
}

/// Renders the named experiments, executing all of their jobs under
/// `mode` with one shared build cache.
///
/// Returns the rendered report up to the first failure; on failure the
/// offending experiment id and error are returned alongside the partial
/// output (matching the serial harness, which stops at the first failing
/// experiment).
///
/// # Panics
///
/// Panics on unknown experiment ids — the CLI validates ids first.
pub fn render_experiments(
    ids: &[&str],
    mode: ExecMode,
) -> (String, Option<(&'static str, QrError)>) {
    let mut experiments: Vec<Experiment> =
        ids.iter().map(|id| plan(id).unwrap_or_else(|| panic!("unknown experiment `{id}`"))).collect();
    let mut all_jobs: Vec<Job> = Vec::new();
    let mut job_counts = Vec::with_capacity(experiments.len());
    for exp in &mut experiments {
        job_counts.push(exp.jobs.len());
        all_jobs.append(&mut exp.jobs);
    }
    let cache = BuildCache::new();
    let mut results = run_jobs(all_jobs, &cache, mode).into_iter();

    let mut out = String::new();
    for (exp, count) in experiments.iter().zip(job_counts) {
        out.push_str(&format!("\n=== {}: {} ===\n", exp.id.to_uppercase(), exp.title));
        if !exp.note.is_empty() {
            out.push_str(&format!("({})\n\n", exp.note));
        }
        let mut table = Table::new(exp.header.clone());
        let mut stats = Vec::new();
        for _ in 0..count {
            match results.next().expect("one result per job") {
                Ok(output) => {
                    for row in output.rows {
                        table.row(row);
                    }
                    if let Some(stat) = output.stat {
                        stats.push(stat);
                    }
                }
                Err(err) => return (out, Some((exp.id, err))),
            }
        }
        out.push_str(&table.render());
        match exp.footer {
            Footer::None => {}
            Footer::Static(line) => {
                out.push_str(line);
                out.push('\n');
            }
            Footer::MeanStat(fmt) => {
                let mean = stats.iter().sum::<f64>() / stats.len() as f64;
                out.push_str(&fmt(mean));
                out.push('\n');
            }
        }
    }
    (out, None)
}

/// One job per suite workload, in canonical order.
fn per_workload(f: impl Fn(WorkloadSpec) -> Job) -> Vec<Job> {
    suite().into_iter().map(f).collect()
}

/// T1 — platform configuration (the paper's system-parameters table).
fn t1() -> Experiment {
    let job: Job = Box::new(|_cache| {
        let cfg = RecordingConfig::with_cores(4);
        let mut rows = JobOutput::default();
        let mut row = |k: &str, v: String| rows.rows.push(vec![k.to_string(), v]);
        row("cores", format!("{}", cfg.cpu.num_cores));
        row("ISA", "PIA (32-bit IA-like, 8-byte fixed encoding)".to_string());
        row("memory model", "TSO (store buffers with forwarding)".to_string());
        row("L1 per core", format!("{} KiB ({} sets x {} ways x 64 B), MESI",
            cfg.cpu.mem.l1_bytes() / 1024, cfg.cpu.mem.l1_sets, cfg.cpu.mem.l1_ways));
        row("store buffer", format!("{} entries, background drain 1/{} instrs",
            cfg.cpu.mem.store_buffer_entries, cfg.cpu.drain_interval));
        row("miss penalty", format!("{} cycles (+{} dirty intervention)",
            cfg.cpu.mem.miss_penalty, cfg.cpu.mem.intervention_penalty));
        row("read signature", format!("{} bits, {} hashes", cfg.mrr.read_sig_bits, cfg.mrr.sig_hashes));
        row("write signature", format!("{} bits, {} hashes", cfg.mrr.write_sig_bits, cfg.mrr.sig_hashes));
        row("sig saturation limit", format!("{}%", cfg.mrr.sig_saturation_permille / 10));
        row("max chunk size", format!("{} instructions", cfg.mrr.max_chunk_icount));
        row("CBUF", format!("{} packets, DMA 1 packet/{} cycles", cfg.mrr.cbuf_entries, cfg.mrr.cbuf_drain_cycles));
        row("CMEM", format!("{} KiB, interrupt at {} KiB",
            cfg.mrr.cmem_capacity / 1024, cfg.mrr.cmem_interrupt_threshold / 1024));
        row("log encoding", cfg.mrr.encoding.name().to_string());
        row("OS quantum", format!("{} cycles", cfg.os.quantum_cycles));
        row("RSM syscall intercept", format!("{} cycles", cfg.overhead.syscall_intercept_cycles));
        row("RSM drain interrupt", format!("{} + {}/byte cycles",
            cfg.overhead.drain_base_cycles, cfg.overhead.drain_cycles_per_byte));
        Ok(rows)
    });
    Experiment {
        id: "t1",
        title: "QuickRec-RS platform configuration",
        note: "paper analog: QuickIA system parameters table",
        header: vec!["parameter".into(), "value".into()],
        jobs: vec![job],
        footer: Footer::None,
    }
}

/// T2 — the workload suite (the paper's benchmarks table).
fn t2() -> Experiment {
    Experiment {
        id: "t2",
        title: "workload suite (SPLASH-2 analogs)",
        note: "reference-scale sizes, 4 threads",
        header: vec!["workload".into(), "instructions".into(), "sync pattern".into()],
        jobs: per_workload(|spec| {
            Box::new(move |cache| {
                let out = run_native_workload_with(cache, &spec, 4, Scale::Reference)?;
                Ok(JobOutput::row([
                    spec.name.to_string(),
                    format!("{}", out.instructions),
                    spec.description.to_string(),
                ]))
            })
        }),
        footer: Footer::None,
    }
}

/// E1 — memory-log generation rate (abstract claim: "insignificant").
fn e1() -> Experiment {
    Experiment {
        id: "e1",
        title: "memory-log generation rate",
        note: "paper: the rate of memory log generation is insignificant; \
         expect ~1-5 B/kilo-instruction for regular kernels, more for irregular ones",
        header: vec!["workload".into(), "chunks".into(), "log bytes".into(),
            "B/kilo-instr".into(), "KB/s @60MHz".into()],
        jobs: per_workload(|spec| {
            Box::new(move |cache| {
                let r = record_workload_with(cache, &spec, 4, Scale::Reference, full_cfg(4))?;
                let bytes = r.chunks.to_bytes(Encoding::Delta).len();
                let bpki = r.log_bytes_per_kilo_instruction(Encoding::Delta);
                let kbs = bytes as f64 / (r.cycles as f64 / CORE_HZ) / 1024.0;
                Ok(JobOutput::row([
                    spec.name.to_string(),
                    r.chunks.len().to_string(),
                    bytes.to_string(),
                    format!("{bpki:.2}"),
                    format!("{kbs:.1}"),
                ])
                .with_stat(bpki))
            })
        }),
        footer: Footer::MeanStat(|mean| format!("mean: {mean:.2} B/kilo-instruction")),
    }
}

/// E2 — chunk-size distribution.
fn e2() -> Experiment {
    Experiment {
        id: "e2",
        title: "chunk-size distribution (instructions per chunk)",
        note: "paper analog: chunk-size characterization",
        header: vec!["workload".into(), "p10".into(), "p50".into(), "p90".into(),
            "p99".into(), "max".into(), "mean".into()],
        jobs: per_workload(|spec| {
            Box::new(move |cache| {
                let r = record_workload_with(cache, &spec, 4, Scale::Reference, full_cfg(4))?;
                Ok(JobOutput::row([
                    spec.name.to_string(),
                    r.chunks.chunk_size_percentile(10).to_string(),
                    r.chunks.chunk_size_percentile(50).to_string(),
                    r.chunks.chunk_size_percentile(90).to_string(),
                    r.chunks.chunk_size_percentile(99).to_string(),
                    r.chunks.chunk_size_percentile(100).to_string(),
                    format!("{:.0}", r.recorder_stats.mean_chunk_size()),
                ]))
            })
        }),
        footer: Footer::None,
    }
}

/// E3 — chunk-termination reason breakdown.
fn e3() -> Experiment {
    let mut header = vec!["workload".to_string()];
    header.extend(TerminationReason::ALL.iter().map(|r| r.label().to_string()));
    Experiment {
        id: "e3",
        title: "why chunks terminate (% of chunks)",
        note: "paper analog: chunk-termination breakdown",
        header,
        jobs: per_workload(|spec| {
            Box::new(move |cache| {
                let r = record_workload_with(cache, &spec, 4, Scale::Reference, full_cfg(4))?;
                let total = r.chunks.len() as u64;
                let mut row = vec![spec.name.to_string()];
                for reason in TerminationReason::ALL {
                    let count = r.recorder_stats.chunks_by_reason[reason.code() as usize];
                    row.push(pct(count, total));
                }
                Ok(JobOutput::row(row))
            })
        }),
        footer: Footer::None,
    }
}

/// E4 — packet-encoding comparison.
fn e4() -> Experiment {
    Experiment {
        id: "e4",
        title: "log size by packet encoding (B/kilo-instruction)",
        note: "paper analog: log compression comparison; expect raw > packed > delta",
        header: vec!["workload".into(), "raw".into(), "packed".into(), "delta".into(),
            "delta vs raw".into()],
        jobs: per_workload(|spec| {
            Box::new(move |cache| {
                let r = record_workload_with(cache, &spec, 4, Scale::Reference, full_cfg(4))?;
                let sizes: Vec<f64> =
                    Encoding::ALL.iter().map(|&e| r.log_bytes_per_kilo_instruction(e)).collect();
                Ok(JobOutput::row([
                    spec.name.to_string(),
                    format!("{:.2}", sizes[0]),
                    format!("{:.2}", sizes[1]),
                    format!("{:.2}", sizes[2]),
                    format!("{:.1}x", sizes[0] / sizes[2].max(1e-9)),
                ]))
            })
        }),
        footer: Footer::None,
    }
}

/// E5 — recording overhead (abstract claims: hardware negligible,
/// software ~13% mean).
fn e5() -> Experiment {
    Experiment {
        id: "e5",
        title: "recording overhead vs native execution",
        note: "paper: recording hardware has negligible overhead; the software stack costs ~13% on average",
        header: vec!["workload".into(), "native cycles".into(), "hw-only".into(),
            "full stack".into()],
        jobs: per_workload(|spec| {
            Box::new(move |cache| {
                let native = run_native_workload_with(cache, &spec, 4, Scale::Reference)?;
                let hw = record_workload_with(cache, &spec, 4, Scale::Reference, hw_cfg(4))?;
                let full = record_workload_with(cache, &spec, 4, Scale::Reference, full_cfg(4))?;
                let full_pct = overhead_pct(full.cycles, native.cycles);
                Ok(JobOutput::row([
                    spec.name.to_string(),
                    native.cycles.to_string(),
                    format!("{:.2}%", overhead_pct(hw.cycles, native.cycles)),
                    format!("{full_pct:.2}%"),
                ])
                .with_stat(full_pct))
            })
        }),
        footer: Footer::MeanStat(|mean| {
            format!("mean full-stack overhead: {mean:.1}%  (paper: ~13%)")
        }),
    }
}

/// E6 — software overhead breakdown.
fn e6() -> Experiment {
    Experiment {
        id: "e6",
        title: "where the software overhead goes (% of overhead cycles)",
        note: "paper analog: RSM cost breakdown",
        header: vec!["workload".into(), "syscall".into(), "log-copy".into(),
            "cmem-drain".into(), "mrr-switch".into(), "signal".into(), "hw-stall".into()],
        jobs: per_workload(|spec| {
            Box::new(move |cache| {
                let r = record_workload_with(cache, &spec, 4, Scale::Reference, full_cfg(4))?;
                let o = &r.overhead;
                let total = o.total();
                Ok(JobOutput::row([
                    spec.name.to_string(),
                    pct(o.syscall_cycles, total),
                    pct(o.copy_cycles, total),
                    pct(o.drain_cycles, total),
                    pct(o.switch_cycles, total),
                    pct(o.signal_cycles, total),
                    pct(o.hw_stall_cycles, total),
                ]))
            })
        }),
        footer: Footer::None,
    }
}

/// E7 — scaling with thread count.
fn e7() -> Experiment {
    let mut jobs: Vec<Job> = Vec::new();
    for spec in suite().into_iter().filter(|s| ["fft", "lu", "radix", "ocean", "water"].contains(&s.name)) {
        for threads in [1usize, 2, 4] {
            jobs.push(Box::new(move |cache: &BuildCache| {
                let native = run_native_workload_with(cache, &spec, threads, Scale::Reference)?;
                let full = record_workload_with(
                    cache, &spec, threads, Scale::Reference, full_cfg(threads))?;
                Ok(JobOutput::row([
                    spec.name.to_string(),
                    threads.to_string(),
                    full.instructions.to_string(),
                    format!("{:.2}%", overhead_pct(full.cycles, native.cycles)),
                    format!("{:.2}", full.log_bytes_per_kilo_instruction(Encoding::Delta)),
                ]))
            }));
        }
    }
    Experiment {
        id: "e7",
        title: "scaling with thread count (1/2/4)",
        note: "overhead and log rate per thread count, reference scale",
        header: vec!["workload".into(), "t".into(), "instructions".into(),
            "overhead".into(), "B/kilo-instr".into()],
        jobs,
        footer: Footer::Static("(log rate grows with threads: more cross-thread conflicts per instruction)"),
    }
}

/// E8 — TSO reordered-store-window statistics.
fn e8() -> Experiment {
    Experiment {
        id: "e8",
        title: "TSO effects: reordered store windows (Rsw mode)",
        note: "chunks that terminated with stores still in the store buffer; the RSW field makes them replayable",
        header: vec!["workload".into(), "chunks".into(), "rsw>0 chunks".into(),
            "% with rsw".into(), "mean rsw".into()],
        jobs: per_workload(|spec| {
            Box::new(move |cache| {
                let mut cfg = full_cfg(4);
                cfg.cpu.mem.tso_mode = TsoMode::Rsw;
                cfg.cpu.drain_interval = 8;
                let r = record_workload_with(cache, &spec, 4, Scale::Small, cfg)?;
                let s = &r.recorder_stats;
                let mean_rsw = if s.chunks_with_rsw == 0 {
                    0.0
                } else {
                    s.rsw_sum as f64 / s.chunks_with_rsw as f64
                };
                Ok(JobOutput::row([
                    spec.name.to_string(),
                    r.chunks.len().to_string(),
                    s.chunks_with_rsw.to_string(),
                    pct(s.chunks_with_rsw, r.chunks.len() as u64),
                    format!("{mean_rsw:.2}"),
                ]))
            })
        }),
        footer: Footer::None,
    }
}

/// E9 — replay speed relative to recording.
fn e9() -> Experiment {
    Experiment {
        id: "e9",
        title: "replay cost (serialized replay cycles / parallel recording cycles)",
        note: "chunk-ordered replay serializes the execution; ratios near or above 1x on 4 cores show the cost",
        header: vec!["workload".into(), "record cycles".into(), "replay cycles".into(),
            "ratio".into()],
        jobs: per_workload(|spec| {
            Box::new(move |cache| {
                let program = cache.program(&spec, 4, Scale::Small)?;
                let r = record_workload_with(cache, &spec, 4, Scale::Small, full_cfg(4))?;
                let outcome = qr_replay::replay(&program, &r)?;
                Ok(JobOutput::row([
                    spec.name.to_string(),
                    r.cycles.to_string(),
                    outcome.cycles.to_string(),
                    format!("{:.2}x", outcome.slowdown_vs(&r)),
                ]))
            })
        }),
        footer: Footer::None,
    }
}

/// E9b — parallel replay speedup from the conflict-dependency scheduler.
fn e9b() -> Experiment {
    Experiment {
        id: "e9b",
        title: "parallel replay speedup (conflict-dependency scheduler, 4 jobs)",
        note: "chunks with non-conflicting footprints replay concurrently; fingerprints must stay \
               byte-identical to serial replay (compute-dense workloads approach recording \
               parallelism, lock-dense ones stay near serial)",
        header: vec!["workload".into(), "serial cycles".into(), "parallel cycles".into(),
            "speedup".into(), "nodes".into(), "edges".into(), "fingerprint".into()],
        jobs: per_workload(|spec| {
            Box::new(move |cache| {
                let program = cache.program(&spec, 4, Scale::Small)?;
                let r = record_workload_with(cache, &spec, 4, Scale::Small, full_cfg(4))?;
                let serial = qr_replay::replay(&program, &r)?;
                let replayer = qr_replay::ParallelReplayer::new(&program, &r, 4)?;
                if let Some(reason) = replayer.fallback_reason() {
                    return Err(QrError::Execution {
                        detail: format!("{}: parallel replay fell back to serial: {reason}", spec.name),
                    });
                }
                let (nodes, edges) = (replayer.node_count(), replayer.edge_count());
                let parallel = replayer.run()?;
                parallel.verify_against(&r)?;
                if parallel.fingerprint != serial.fingerprint {
                    return Err(QrError::Execution {
                        detail: format!("{}: parallel fingerprint diverged from serial", spec.name),
                    });
                }
                let speedup = serial.cycles as f64 / parallel.cycles.max(1) as f64;
                Ok(JobOutput::row([
                    spec.name.to_string(),
                    serial.cycles.to_string(),
                    parallel.cycles.to_string(),
                    format!("{speedup:.2}x"),
                    nodes.to_string(),
                    edges.to_string(),
                    format!("{:016x}", parallel.fingerprint),
                ])
                .with_stat(speedup.ln()))
            })
        }),
        footer: Footer::MeanStat(|mean| format!("geomean speedup at 4 jobs: {:.2}x", mean.exp())),
    }
}

/// E10 — recording-store compression ratio per chunk-log encoding.
fn e10() -> Experiment {
    Experiment {
        id: "e10",
        title: "recording-store compression by chunk-log encoding",
        note: "block-compressed store entries (32 KiB blocks, per-block CRC); \
         ratio = compressed/uncompressed of the framed chunk log",
        header: vec!["workload".into(), "raw B".into(), "raw z".into(), "packed B".into(),
            "packed z".into(), "delta B".into(), "delta z".into(), "entry ratio".into()],
        jobs: per_workload(|spec| {
            Box::new(move |cache| {
                let r = record_workload_with(cache, &spec, 4, Scale::Small, full_cfg(4))?;
                let mut cells = vec![spec.name.to_string()];
                for encoding in Encoding::ALL {
                    let parts = r.to_parts(encoding);
                    let compressed = qr_store::block::compress(&parts.chunks);
                    cells.push(parts.chunks.len().to_string());
                    cells.push(format!(
                        "{} ({})",
                        compressed.len(),
                        pct(compressed.len() as u64, parts.chunks.len() as u64)
                    ));
                }
                // Whole-entry ratio as the store would commit it
                // (meta + chunks + inputs + footprints, delta chunks).
                let parts = r.to_parts(Encoding::Delta);
                let (mut raw, mut stored) = (0usize, 0usize);
                for (_, bytes) in parts.files() {
                    raw += bytes.len();
                    stored += qr_store::block::compress(bytes).len();
                }
                let ratio = stored as f64 / raw as f64;
                cells.push(format!("{:.2}", ratio));
                Ok(JobOutput::row(cells).with_stat(ratio))
            })
        }),
        footer: Footer::MeanStat(|mean| {
            format!("mean whole-entry stored/raw ratio (delta encoding): {mean:.2}")
        }),
    }
}

/// E10b — `quickrecd` service throughput, serial vs sharded.
///
/// One job measures all three configurations back to back so the rows
/// never contend with each other for host cores (the harness may run
/// unrelated jobs concurrently, but the serial-vs-sharded comparison
/// shares whatever ambient load exists).
fn e10b() -> Experiment {
    let job: Job = Box::new(|_cache: &BuildCache| {
        use qr_server::proto::{Endpoint, Request, Response};
        let names = ["fft", "lu", "radix", "ocean", "water", "barnes", "fmm", "raytrace",
            "cholesky", "volrend", "radiosity", "fft", "lu", "radix", "ocean", "water"];
        let mut out = JobOutput::default();
        let mut serial_secs = None;
        for workers in [1usize, 2, 4] {
            let dir = std::env::temp_dir()
                .join(format!("qr-e10b-{workers}w-{}", std::process::id()));
            std::fs::remove_dir_all(&dir).ok();
            let endpoint = Endpoint::Unix(dir.join("qd.sock"));
            let config = qr_server::ServerConfig {
                workers,
                shards: workers,
                queue_capacity: 64,
                store_root: dir.join("store"),
                event_workers: 2,
                max_connections: 4096,
            };
            let handle = qr_server::Server::start(&endpoint, &config)?;
            let mut client = qr_server::Client::connect(handle.endpoint())?;
            let started = std::time::Instant::now();
            let mut ids = Vec::new();
            for name in names {
                match client.call(&Request::SubmitWorkload {
                    name: name.into(),
                    workload: name.into(),
                    threads: 2,
                    scale: Scale::Small,
                    encoding: Encoding::Delta,
                    order: OrderMode::TotalOrder,
                })? {
                    Response::Submitted { id } => ids.push(id),
                    other => {
                        return Err(QrError::Execution {
                            detail: format!("{name}: unexpected response {other:?}"),
                        })
                    }
                }
            }
            for id in ids {
                client.wait_for(id, std::time::Duration::from_secs(300))?;
            }
            let elapsed = started.elapsed();
            match client.call(&Request::Shutdown)? {
                Response::ShuttingDown => {}
                other => {
                    return Err(QrError::Execution {
                        detail: format!("shutdown: unexpected response {other:?}"),
                    })
                }
            }
            drop(client);
            handle.wait();
            std::fs::remove_dir_all(&dir).ok();
            let secs = elapsed.as_secs_f64();
            let speedup = *serial_secs.get_or_insert(secs) / secs.max(f64::MIN_POSITIVE);
            out.rows.push(vec![
                workers.to_string(),
                workers.to_string(),
                names.len().to_string(),
                format!("{:.0}", secs * 1000.0),
                format!("{:.1}", names.len() as f64 / secs),
                format!("{speedup:.2}x"),
            ]);
        }
        Ok(out)
    });
    Experiment {
        id: "e10b",
        title: "quickrecd service throughput, serial vs sharded",
        note: "16 RECORD submissions against one daemon per row; wall-clock, so the shape \
         depends on host cores — sharded rows pull ahead only with cores to spare, and a \
         single-core host showing speedup ~1.0x at unchanged totals is the correct result \
         (concurrency without overhead)",
        header: vec!["workers".into(), "shards".into(), "jobs".into(), "wall ms".into(),
            "jobs/s".into(), "speedup".into()],
        jobs: vec![job],
        footer: Footer::Static(
            "(worker pool and registry shards scale together; RECORD jobs are embarrassingly \
             parallel until the store serializes commits)",
        ),
    }
}

/// V1 — determinism validation across the suite.
fn v1() -> Experiment {
    Experiment {
        id: "v1",
        title: "deterministic replay validation",
        note: "replay must reproduce memory, console and exit codes exactly",
        header: vec!["workload".into(), "chunks".into(), "inputs".into(),
            "fingerprint".into(), "verdict".into()],
        jobs: per_workload(|spec| {
            Box::new(move |cache| {
                let program = cache.program(&spec, 4, Scale::Small)?;
                let r = record_workload_with(cache, &spec, 4, Scale::Small, full_cfg(4))?;
                let outcome = qr_replay::replay_and_verify(&program, &r)?;
                Ok(JobOutput::row([
                    spec.name.to_string(),
                    outcome.chunks_replayed.to_string(),
                    outcome.inputs_injected.to_string(),
                    format!("{:016x}", outcome.fingerprint),
                    "PASS".to_string(),
                ]))
            })
        }),
        footer: Footer::None,
    }
}

/// E11 — input-log characterization.
fn e11() -> Experiment {
    Experiment {
        id: "e11",
        title: "input-log volume and composition",
        note: "the Capo3 side of the log: syscall results, copy_to_user payloads, nondet values",
        header: vec!["workload".into(), "events".into(), "payload bytes".into(),
            "nondet vals".into(), "log bytes".into(), "B/kilo-instr".into()],
        jobs: per_workload(|spec| {
            Box::new(move |cache| {
                let r = record_workload_with(cache, &spec, 4, Scale::Reference, full_cfg(4))?;
                let payload: usize = r
                    .inputs
                    .events()
                    .iter()
                    .map(|e| match e {
                        InputEvent::Syscall { record, .. } => {
                            record.writes.iter().map(|(_, d)| d.len()).sum()
                        }
                        InputEvent::Signal { .. } => 0,
                    })
                    .sum();
                let bytes = r.inputs.byte_size();
                Ok(JobOutput::row([
                    spec.name.to_string(),
                    r.inputs.events().len().to_string(),
                    payload.to_string(),
                    r.inputs.nondet_count().to_string(),
                    bytes.to_string(),
                    format!("{:.3}", bytes as f64 * 1000.0 / r.instructions as f64),
                ]))
            })
        }),
        footer: Footer::Static("(the input log is far smaller than the memory log for compute-bound workloads)"),
    }
}

/// E12 — observability is free of observer effects: recordings are
/// byte-identical with metrics on and off.
///
/// One job runs every comparison serially because the `qr-obs` enabled
/// flag is process-global: toggling it from concurrent jobs would only
/// perturb *metric contents* (never outputs), but serializing keeps the
/// flag state simple to reason about. The flag is restored afterwards.
fn e12() -> Experiment {
    let job: Job = Box::new(|cache: &BuildCache| {
        let workloads = ["fft", "lu", "radix", "water"];
        let mut out = JobOutput::default();
        let was_enabled = qr_obs::enabled();
        let result = (|| {
            for name in workloads {
                let spec = qr_workloads::suite::find(name).expect("suite member");
                qr_obs::set_enabled(true);
                let observed = record_workload_with(cache, &spec, 4, Scale::Small, full_cfg(4))?;
                qr_obs::set_enabled(false);
                let blind = record_workload_with(cache, &spec, 4, Scale::Small, full_cfg(4))?;
                if observed.fingerprint != blind.fingerprint {
                    return Err(QrError::Execution {
                        detail: format!("{name}: fingerprint changed with metrics enabled"),
                    });
                }
                let mut identical = true;
                let mut log_bytes = 0usize;
                for encoding in Encoding::ALL {
                    let on = observed.chunks.to_bytes(encoding);
                    let off = blind.chunks.to_bytes(encoding);
                    identical &= on == off;
                    if encoding == Encoding::Delta {
                        log_bytes = on.len();
                    }
                }
                if !identical {
                    return Err(QrError::Execution {
                        detail: format!("{name}: serialized chunk log changed with metrics enabled"),
                    });
                }
                out.rows.push(vec![
                    name.to_string(),
                    observed.chunks.len().to_string(),
                    log_bytes.to_string(),
                    format!("{:016x}", observed.fingerprint),
                    "identical".to_string(),
                ]);
            }
            Ok(())
        })();
        qr_obs::set_enabled(was_enabled);
        result?;
        Ok(out)
    });
    Experiment {
        id: "e12",
        title: "observability overhead accounting: metrics on vs off",
        note: "qr-obs is observational only — fingerprints and serialized logs must be \
         byte-identical with the metrics registry enabled and disabled",
        header: vec!["workload".into(), "chunks".into(), "delta log B".into(),
            "fingerprint".into(), "on vs off".into()],
        jobs: vec![job],
        footer: Footer::Static(
            "(wall-clock metric values are excluded from every deterministic report; \
             only their absence of side effects is asserted here)",
        ),
    }
}

/// E13 — hot-path raw speed: slice-by-8 CRC-32 vs the scalar reference,
/// hash-chain LZ vs the greedy reference, wide-copy decompression, store
/// ratio per encoding, and simulator instruction rate.
///
/// Wall-clock (see [`WALL_CLOCK_IDS`]), so it is excluded from
/// `repro all` and invoked explicitly. Besides printing the table it
/// writes a machine-readable summary to `BENCH_hotpath.json` (path
/// overridable via `QR_BENCH_JSON`, measurement window via
/// `QR_BENCH_MS`). The run *fails* only on differential drift — a fast
/// path disagreeing with its reference path on real recording bytes —
/// never on a speedup threshold, so CI stays immune to host-load flake.
fn e13() -> Experiment {
    let job: Job = Box::new(|cache: &BuildCache| {
        use qr_common::crc32;
        use qr_store::{block, lz};

        let ms = std::env::var("QR_BENCH_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(400)
            .max(1);
        let window = std::time::Duration::from_millis(ms);

        // Corpus: real framed recording bytes (meta + chunk logs +
        // inputs + footprints across all three encodings) from four
        // workloads, so every rate below reflects the byte patterns the
        // hot paths actually see.
        let names = ["fft", "lu", "radix", "water"];
        let mut recordings = Vec::new();
        let mut corpus: Vec<u8> = Vec::new();
        for name in names {
            let spec = qr_workloads::suite::find(name).expect("suite member");
            let r = record_workload_with(cache, &spec, 4, Scale::Small, full_cfg(4))?;
            for encoding in Encoding::ALL {
                for (_, bytes) in r.to_parts(encoding).files() {
                    corpus.extend_from_slice(bytes);
                }
            }
            recordings.push((name, r));
        }

        // Differential drift gate: the fast paths must agree with their
        // reference paths on every file of every recording × encoding.
        let mut cases = 0u64;
        let mut drift = 0u64;
        let mut first_drift = String::new();
        let note_drift = |what: String, first: &mut String| {
            if first.is_empty() {
                *first = what;
            }
        };
        for (name, r) in &recordings {
            for encoding in Encoding::ALL {
                let parts = r.to_parts(encoding);
                for (file, bytes) in parts.files() {
                    cases += 1;
                    let mut bad = false;
                    if crc32::checksum(bytes) != crc32::checksum_scalar(bytes) {
                        bad = true;
                        note_drift(
                            format!("{name}/{encoding:?}/{file}: slice-by-8 CRC != scalar CRC"),
                            &mut first_drift,
                        );
                    }
                    let fast = lz::decompress(&lz::compress(bytes), bytes.len())?;
                    let greedy = lz::decompress(&lz::compress_greedy(bytes), bytes.len())?;
                    if fast != bytes || greedy != bytes {
                        bad = true;
                        note_drift(
                            format!("{name}/{encoding:?}/{file}: LZ round trip diverged"),
                            &mut first_drift,
                        );
                    }
                    if block::decompress(&block::compress(bytes))? != bytes {
                        bad = true;
                        note_drift(
                            format!("{name}/{encoding:?}/{file}: block round trip diverged"),
                            &mut first_drift,
                        );
                    }
                    drift += bad as u64;
                }
            }
        }

        // Throughput measurements (fixed window, quarter-window warmup).
        let mbs = |bytes_per_sec: f64| bytes_per_sec / (1024.0 * 1024.0);
        let crc_fast = mbs(crate::timing::bytes_per_sec(window, corpus.len(), || {
            crc32::checksum(&corpus)
        }));
        let crc_scalar = mbs(crate::timing::bytes_per_sec(window, corpus.len(), || {
            crc32::checksum_scalar(&corpus)
        }));
        let lz_fast = mbs(crate::timing::bytes_per_sec(window, corpus.len(), || {
            lz::compress(&corpus)
        }));
        let lz_greedy = mbs(crate::timing::bytes_per_sec(window, corpus.len(), || {
            lz::compress_greedy(&corpus)
        }));
        let packed = lz::compress(&corpus);
        let lz_dec = mbs(crate::timing::bytes_per_sec(window, corpus.len(), || {
            lz::decompress(&packed, corpus.len()).expect("benchmark corpus decompresses")
        }));
        let lz_dec_scalar = mbs(crate::timing::bytes_per_sec(window, corpus.len(), || {
            lz::decompress_scalar(&packed, corpus.len()).expect("benchmark corpus decompresses")
        }));
        let corpus_ratio = packed.len() as f64 / corpus.len().max(1) as f64;

        // Store ratio per chunk-log encoding, summed across workloads
        // (compressed/uncompressed of the framed chunk logs, as e10
        // reports per workload).
        let mut encoding_ratios = Vec::new();
        for encoding in Encoding::ALL {
            let (mut raw, mut stored) = (0usize, 0usize);
            for (_, r) in &recordings {
                let parts = r.to_parts(encoding);
                raw += parts.chunks.len();
                stored += block::compress(&parts.chunks).len();
            }
            encoding_ratios.push((encoding, stored as f64 / raw.max(1) as f64));
        }

        // Simulator rate: repeated full recordings of fft (4 threads,
        // small scale), using the recordings' own instruction counts.
        let sim_spec = qr_workloads::suite::find("fft").expect("suite member");
        let sim_started = std::time::Instant::now();
        let mut sim_instr = 0u64;
        let mut sim_runs = 0u64;
        loop {
            let r = record_workload_with(cache, &sim_spec, 4, Scale::Small, full_cfg(4))?;
            sim_instr += r.instructions;
            sim_runs += 1;
            if sim_started.elapsed() >= window {
                break;
            }
        }
        let sim_rate = sim_instr as f64 / sim_started.elapsed().as_secs_f64() / 1e6;

        let mut out = JobOutput::default();
        out.rows.push(vec![
            "crc32 MB/s".into(),
            format!("{crc_fast:.0}"),
            format!("{crc_scalar:.0}"),
            format!("{:.2}x", crc_fast / crc_scalar.max(f64::MIN_POSITIVE)),
        ]);
        out.rows.push(vec![
            "lz compress MB/s".into(),
            format!("{lz_fast:.0}"),
            format!("{lz_greedy:.0}"),
            format!("{:.2}x", lz_fast / lz_greedy.max(f64::MIN_POSITIVE)),
        ]);
        out.rows.push(vec![
            "lz decompress MB/s".into(),
            format!("{lz_dec:.0}"),
            format!("{lz_dec_scalar:.0}"),
            format!("{:.2}x", lz_dec / lz_dec_scalar.max(f64::MIN_POSITIVE)),
        ]);
        out.rows.push(vec![
            "lz corpus ratio".into(),
            format!("{corpus_ratio:.3}"),
            "-".into(),
            "-".into(),
        ]);
        for (encoding, ratio) in &encoding_ratios {
            out.rows.push(vec![
                format!("store ratio ({encoding:?})"),
                format!("{ratio:.3}"),
                "-".into(),
                "-".into(),
            ]);
        }
        out.rows.push(vec![
            "simulator Minstr/s".into(),
            format!("{sim_rate:.1}"),
            format!("({sim_runs} runs)"),
            "-".into(),
        ]);
        out.rows.push(vec![
            "differential".into(),
            format!("{cases} cases"),
            format!("{drift} drift"),
            if drift == 0 { "PASS".into() } else { "FAIL".into() },
        ]);

        // Machine-readable summary, hand-rolled JSON (no external crates).
        let json_path = std::env::var("QR_BENCH_JSON")
            .unwrap_or_else(|_| "BENCH_hotpath.json".into());
        let ratio_fields = encoding_ratios
            .iter()
            .map(|(e, r)| format!("    \"{}\": {r:.4}", format!("{e:?}").to_lowercase()))
            .collect::<Vec<_>>()
            .join(",\n");
        let json = format!(
            "{{\n  \"experiment\": \"e13\",\n  \"bench_ms\": {ms},\n  \"corpus_bytes\": {},\n\
             \x20 \"crc32\": {{\n    \"slice8_mb_s\": {crc_fast:.1},\n    \"scalar_mb_s\": \
             {crc_scalar:.1},\n    \"speedup\": {:.3}\n  }},\n  \"lz\": {{\n    \
             \"hash_chain_mb_s\": {lz_fast:.1},\n    \"greedy_mb_s\": {lz_greedy:.1},\n    \
             \"speedup\": {:.3},\n    \"decompress_mb_s\": {lz_dec:.1},\n    \
             \"decompress_scalar_mb_s\": {lz_dec_scalar:.1},\n    \"decompress_speedup\": \
             {:.3},\n    \"corpus_ratio\": \
             {corpus_ratio:.4}\n  }},\n  \"store_ratio\": {{\n{ratio_fields}\n  }},\n  \
             \"simulator\": {{\n    \"workload\": \"fft\",\n    \"threads\": 4,\n    \
             \"minstr_per_s\": {sim_rate:.2},\n    \"runs\": {sim_runs}\n  }},\n  \
             \"differential\": {{\n    \"cases\": {cases},\n    \"drift\": {drift}\n  }}\n}}\n",
            corpus.len(),
            crc_fast / crc_scalar.max(f64::MIN_POSITIVE),
            lz_fast / lz_greedy.max(f64::MIN_POSITIVE),
            lz_dec / lz_dec_scalar.max(f64::MIN_POSITIVE),
        );
        std::fs::write(&json_path, json).map_err(|e| QrError::Execution {
            detail: format!("writing {json_path}: {e}"),
        })?;

        if drift > 0 {
            return Err(QrError::Execution {
                detail: format!("hot-path differential drift ({drift}/{cases}): {first_drift}"),
            });
        }
        Ok(out)
    });
    Experiment {
        id: "e13",
        title: "hot-path throughput: fast paths vs reference paths",
        note: "wall-clock rates vary with the host; the differential column is the only \
         pass/fail signal — fast and reference paths must agree byte-for-byte on every \
         recording file (summary written to BENCH_hotpath.json, QR_BENCH_JSON to override)",
        header: vec!["metric".into(), "fast".into(), "reference".into(), "ratio".into()],
        jobs: vec![job],
        footer: Footer::Static(
            "(slice-by-8 CRC and the hash-chain matcher are the production paths; the scalar \
             CRC and greedy matcher exist as references for this differential gate)",
        ),
    }
}

/// E14 — time-travel seek latency versus checkpoint interval: how fast
/// the persisted `checkpoints.qrc` index lands a replayer on an
/// arbitrary timeline event, compared to replaying from scratch.
///
/// Wall-clock (see [`WALL_CLOCK_IDS`]), invoked explicitly. Writes a
/// machine-readable summary to `BENCH_seek.json` (path overridable via
/// `QR_BENCH_JSON`, measurement window via `QR_BENCH_MS`). Like e13,
/// the run *fails* only on differential drift — an indexed seek or
/// query disagreeing with the from-scratch answer — never on a latency
/// threshold, so CI stays immune to host-load flake.
fn e14() -> Experiment {
    let job: Job = Box::new(|cache: &BuildCache| {
        use qr_replay::{CheckpointIndex, QueryEngine, ReplayQuery};

        let ms = std::env::var("QR_BENCH_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(400)
            .max(1);
        let window = std::time::Duration::from_millis(ms);
        const INTERVALS: [usize; 4] = [4, 8, 16, 32];
        const THREADS: usize = 3;

        // Deterministic seek targets for a timeline: the boundary
        // positions plus a seeded spread. The same targets feed both
        // the drift gate and the latency loop, so the two always talk
        // about the same work.
        let targets_for = |len: usize, seed: u64| -> Vec<usize> {
            let mut rng = qr_common::SplitMix64::new(seed);
            let mut targets = vec![0, len / 2, len.saturating_sub(1)];
            targets.extend((0..8).map(|_| rng.below(len as u64) as usize));
            targets
        };
        // Events an indexed seek to `target` re-executes: the gap back
        // to the nearest checkpoint at or before the target.
        let reexec = |index: &CheckpointIndex, target: usize| -> u64 {
            let floor = index
                .keys
                .iter()
                .take_while(|k| k.position <= target as u64)
                .last()
                .map_or(0, |k| k.position);
            target as u64 - floor
        };

        // Differential drift gate, deterministic and windowless: every
        // indexed seek and query must match the from-scratch engine on
        // several workloads across every interval.
        let mut cases = 0u64;
        let mut drift = 0u64;
        let mut first_drift = String::new();
        for (w, name) in ["fft", "lu", "radix"].iter().enumerate() {
            let spec = qr_workloads::suite::find(name).expect("suite member");
            let program = cache.program(&spec, THREADS, Scale::Test)?;
            let recording = record_workload_with(cache, &spec, THREADS, Scale::Test,
                full_cfg(THREADS))?;
            let scratch = QueryEngine::new(&program, &recording)?;
            let len = scratch.timeline_len();
            for interval in INTERVALS {
                let index = CheckpointIndex::build(&program, &recording, interval)?;
                let mut indexed = QueryEngine::new(&program, &recording)?;
                indexed.attach_index(index)?;
                for target in targets_for(len, 0x5EEC_0DE + w as u64) {
                    cases += 1;
                    let a = indexed.seek(target)?;
                    let b = scratch.seek(target)?;
                    if a.partial_fingerprint() != b.partial_fingerprint()
                        || a.instructions_so_far() != b.instructions_so_far()
                        || a.console_so_far() != b.console_so_far()
                    {
                        drift += 1;
                        if first_drift.is_empty() {
                            first_drift =
                                format!("{name}/interval {interval}: seek {target} diverged");
                        }
                    }
                }
                cases += 1;
                let query = ReplayQuery::ReverseStep { events: (len as u64 / 3).max(1) };
                if indexed.execute(query, None)?.to_bytes()
                    != scratch.execute(query, None)?.to_bytes()
                {
                    drift += 1;
                    if first_drift.is_empty() {
                        first_drift = format!("{name}/interval {interval}: {query} diverged");
                    }
                }
            }
        }

        // Latency measurement on one workload: mean seek time over the
        // rotating target set, from scratch and through each interval.
        let spec = qr_workloads::suite::find("lu").expect("suite member");
        let program = cache.program(&spec, THREADS, Scale::Test)?;
        let recording =
            record_workload_with(cache, &spec, THREADS, Scale::Test, full_cfg(THREADS))?;
        let scratch = QueryEngine::new(&program, &recording)?;
        let len = scratch.timeline_len();
        let targets = targets_for(len, 0x5EEC_0DE);
        let mean_us = |engine: &QueryEngine| {
            let mut next = 0usize;
            let (iters, elapsed) = crate::timing::measure(window, || {
                let target = targets[next % targets.len()];
                next += 1;
                engine.seek(target).expect("benchmark seek")
            });
            elapsed.as_secs_f64() * 1e6 / iters.max(1) as f64
        };

        let scratch_us = mean_us(&scratch);
        let mut out = JobOutput::default();
        out.rows.push(vec![
            "from scratch".into(),
            format!("{scratch_us:.1}"),
            format!("{:.1}", targets.iter().map(|&t| t as f64).sum::<f64>()
                / targets.len() as f64),
            "1.00x".into(),
        ]);
        let mut interval_fields = Vec::new();
        for interval in INTERVALS {
            let index = CheckpointIndex::build(&program, &recording, interval)?;
            let index_bytes = index.to_bytes().len();
            let mean_reexec = targets.iter().map(|&t| reexec(&index, t) as f64).sum::<f64>()
                / targets.len() as f64;
            let mut indexed = QueryEngine::new(&program, &recording)?;
            indexed.attach_index(index)?;
            let us = mean_us(&indexed);
            out.rows.push(vec![
                format!("interval {interval}"),
                format!("{us:.1}"),
                format!("{mean_reexec:.1}"),
                format!("{:.2}x", scratch_us / us.max(f64::MIN_POSITIVE)),
            ]);
            interval_fields.push(format!(
                "    {{ \"interval\": {interval}, \"mean_seek_us\": {us:.2}, \
                 \"mean_reexec_events\": {mean_reexec:.2}, \"index_bytes\": {index_bytes} }}"
            ));
        }
        out.rows.push(vec![
            "differential".into(),
            format!("{cases} cases"),
            format!("{drift} drift"),
            if drift == 0 { "PASS".into() } else { "FAIL".into() },
        ]);

        let json_path =
            std::env::var("QR_BENCH_JSON").unwrap_or_else(|_| "BENCH_seek.json".into());
        let json = format!(
            "{{\n  \"experiment\": \"e14\",\n  \"bench_ms\": {ms},\n  \"workload\": \"lu\",\n\
             \x20 \"threads\": {THREADS},\n  \"timeline_len\": {len},\n  \
             \"scratch_seek_us\": {scratch_us:.2},\n  \"intervals\": [\n{}\n  ],\n  \
             \"differential\": {{\n    \"cases\": {cases},\n    \"drift\": {drift}\n  }}\n}}\n",
            interval_fields.join(",\n"),
        );
        std::fs::write(&json_path, json).map_err(|e| QrError::Execution {
            detail: format!("writing {json_path}: {e}"),
        })?;

        if drift > 0 {
            return Err(QrError::Execution {
                detail: format!("time-travel seek drift ({drift}/{cases}): {first_drift}"),
            });
        }
        Ok(out)
    });
    Experiment {
        id: "e14",
        title: "time-travel seek latency vs checkpoint interval",
        note: "wall-clock latencies vary with the host; the differential row is the only \
         pass/fail signal — indexed seeks and queries must match the from-scratch engine \
         (summary written to BENCH_seek.json, QR_BENCH_JSON to override)",
        header: vec![
            "configuration".into(),
            "mean seek us".into(),
            "mean reexec events".into(),
            "speedup".into(),
        ],
        jobs: vec![job],
        footer: Footer::Static(
            "(the interval trades sidecar bytes for seek latency: smaller intervals re-execute \
             fewer events per seek but persist more snapshots — see DESIGN.md, decision 12)",
        ),
    }
}

/// E15 — ordering-log cost versus core count: the bytes each ordering
/// authority needs per recorded instruction as the same 16-thread
/// workloads run on a machine growing from 2 to 16 cores. Total order
/// serializes the global chunk timestamps (delta-varint over the
/// replay schedule, the minimal encoding of that authority); partial
/// order serializes `order.qrp` — explicit happens-before edges only.
/// More cores mean more concurrency and therefore more chunk splits —
/// every one of which needs a timestamp — while the edge set tracks
/// the program's actual communication, which core count does not
/// change.
///
/// Wall-clock (see [`WALL_CLOCK_IDS`]) because it also reports record
/// wall time, so it is invoked explicitly. Writes a machine-readable
/// summary to `BENCH_order.json` (path overridable via
/// `QR_BENCH_JSON`). Like e13/e14, the run *fails* only on
/// deterministic gates — a partial-order replay fingerprint diverging
/// from the total-order replay of the same seeded execution, or the
/// partial-order bytes/instr growing 2→16 cores at least as fast as
/// the total-order bytes/instr — never on a time threshold, so CI
/// stays immune to host-load flake.
fn e15() -> Experiment {
    let job: Job = Box::new(|cache: &BuildCache| {
        use qr_common::varint;

        let core_counts = [2usize, 4, 8, 16];
        let threads = 16usize;
        let names = ["fft", "lu", "radix"];

        struct Point {
            cores: usize,
            instructions: u64,
            total_bytes: usize,
            partial_bytes: usize,
            edges: usize,
            total_ms: f64,
            partial_ms: f64,
            drift: u64,
        }
        let mut points = Vec::new();
        let mut cases = 0u64;
        let mut first_drift = String::new();

        for cores in core_counts {
            let mut point = Point {
                cores,
                instructions: 0,
                total_bytes: 0,
                partial_bytes: 0,
                edges: 0,
                total_ms: 0.0,
                partial_ms: 0.0,
                drift: 0,
            };
            for name in names {
                let spec = qr_workloads::suite::find(name).expect("suite member");
                let program = cache.program(&spec, threads, Scale::Small)?;

                let started = std::time::Instant::now();
                let total =
                    record_workload_with(cache, &spec, threads, Scale::Small, RecordingConfig::with_cores(cores))?;
                point.total_ms += started.elapsed().as_secs_f64() * 1e3;

                let mut cfg = RecordingConfig::with_cores(cores);
                cfg.order = OrderMode::PartialOrder;
                let started = std::time::Instant::now();
                let partial = record_workload_with(cache, &spec, threads, Scale::Small, cfg)?;
                point.partial_ms += started.elapsed().as_secs_f64() * 1e3;

                // Total-order ordering bytes: the global timestamps in
                // schedule order, delta-varint coded.
                let mut ts_bytes = Vec::new();
                let mut prev = 0u64;
                for packet in total.chunks.replay_schedule()? {
                    varint::write_u64(&mut ts_bytes, packet.timestamp.0 - prev);
                    prev = packet.timestamp.0;
                }
                let order = partial.order.as_ref().expect("partial-order recording");
                point.instructions += total.instructions;
                point.total_bytes += ts_bytes.len();
                point.partial_bytes += order.byte_size();
                point.edges += order.edges().len();

                // Drift gate: the partial-order replay must land on the
                // total-order fingerprint of the same seeded execution.
                cases += 1;
                let serial = qr_replay::replay(&program, &total)?;
                match qr_replay::replay_ordered_and_verify(&program, &partial, 2) {
                    Ok(outcome) if outcome.fingerprint == serial.fingerprint => {}
                    Ok(outcome) => {
                        point.drift += 1;
                        if first_drift.is_empty() {
                            first_drift = format!(
                                "{name}@{cores}c: ordered fingerprint {:#018x} != total {:#018x}",
                                outcome.fingerprint, serial.fingerprint
                            );
                        }
                    }
                    Err(e) => {
                        point.drift += 1;
                        if first_drift.is_empty() {
                            first_drift = format!("{name}@{cores}c: ordered replay failed: {e}");
                        }
                    }
                }
            }
            points.push(point);
        }

        let per_kinstr = |bytes: usize, instr: u64| 1e3 * bytes as f64 / instr.max(1) as f64;
        let drift: u64 = points.iter().map(|p| p.drift).sum();

        // Growth gate: scaling 2→16 cores must cost partial order
        // strictly less relative byte growth than total order. Both
        // series are deterministic (seeded executions), so this gate is
        // as replayable as the fingerprint one.
        let growth = |bytes: fn(&Point) -> usize| {
            let lo = &points[0];
            let hi = &points[points.len() - 1];
            per_kinstr(bytes(hi), hi.instructions) / per_kinstr(bytes(lo), lo.instructions)
        };
        let total_growth = growth(|p| p.total_bytes);
        let partial_growth = growth(|p| p.partial_bytes);
        let growth_ok = partial_growth < total_growth;

        let mut out = JobOutput::default();
        for p in &points {
            out.rows.push(vec![
                p.cores.to_string(),
                format!("{} ({:.2})", p.total_bytes, per_kinstr(p.total_bytes, p.instructions)),
                format!("{} ({:.2})", p.partial_bytes, per_kinstr(p.partial_bytes, p.instructions)),
                p.edges.to_string(),
                format!("{:.2}x", p.partial_bytes as f64 / p.total_bytes.max(1) as f64),
                format!("{:.0}/{:.0}", p.total_ms, p.partial_ms),
                if p.drift == 0 { "PASS".into() } else { format!("{} DRIFT", p.drift) },
            ]);
        }
        out.rows.push(vec![
            "growth 2→16".into(),
            format!("{total_growth:.2}x"),
            format!("{partial_growth:.2}x"),
            "-".into(),
            "-".into(),
            "-".into(),
            if growth_ok { "PASS".into() } else { "FAIL".into() },
        ]);

        // Machine-readable summary, hand-rolled JSON (no external crates).
        let json_path =
            std::env::var("QR_BENCH_JSON").unwrap_or_else(|_| "BENCH_order.json".into());
        let point_fields = points
            .iter()
            .map(|p| {
                format!(
                    "    {{\n      \"cores\": {},\n      \"instructions\": {},\n      \
                     \"total_order_bytes\": {},\n      \"total_order_bytes_per_kinstr\": \
                     {:.4},\n      \"partial_order_bytes\": {},\n      \
                     \"partial_order_bytes_per_kinstr\": {:.4},\n      \"edges\": {},\n      \
                     \"record_ms_total_order\": {:.1},\n      \"record_ms_partial_order\": \
                     {:.1},\n      \"drift\": {}\n    }}",
                    p.cores,
                    p.instructions,
                    p.total_bytes,
                    per_kinstr(p.total_bytes, p.instructions),
                    p.partial_bytes,
                    per_kinstr(p.partial_bytes, p.instructions),
                    p.edges,
                    p.total_ms,
                    p.partial_ms,
                    p.drift,
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let json = format!(
            "{{\n  \"experiment\": \"e15\",\n  \"workloads\": [\"fft\", \"lu\", \"radix\"],\n  \
             \"threads\": 16,\n  \
             \"core_counts\": [2, 4, 8, 16],\n  \"points\": [\n{point_fields}\n  ],\n  \
             \"growth_2_to_16\": {{\n    \"total_order\": {total_growth:.4},\n    \
             \"partial_order\": {partial_growth:.4},\n    \"partial_grows_slower\": {growth_ok}\n  \
             }},\n  \"drift\": {{\n    \"cases\": {cases},\n    \"drift\": {drift}\n  }}\n}}\n",
        );
        std::fs::write(&json_path, json).map_err(|e| QrError::Execution {
            detail: format!("writing {json_path}: {e}"),
        })?;

        if drift > 0 {
            return Err(QrError::Execution {
                detail: format!("ordering drift ({drift}/{cases}): {first_drift}"),
            });
        }
        if !growth_ok {
            return Err(QrError::Execution {
                detail: format!(
                    "partial-order bytes/instr grew {partial_growth:.2}x from 2 to 16 cores, \
                     total order only {total_growth:.2}x"
                ),
            });
        }
        Ok(out)
    });
    Experiment {
        id: "e15",
        title: "ordering-log bytes vs core count: total order vs partial order",
        note: "bytes column shows total (bytes/kinstr); wall times vary with the host; the \
         drift and growth columns are the only pass/fail signals (summary written to \
         BENCH_order.json, QR_BENCH_JSON to override)",
        header: vec!["cores".into(), "total-order B".into(), "partial-order B".into(),
            "edges".into(), "partial/total".into(), "rec ms t/p".into(), "gate".into()],
        jobs: vec![job],
        footer: Footer::Static(
            "(total order serializes every chunk's global timestamp; partial order only the \
             happens-before edges that constrain replay, so its cost tracks actual sharing, \
             not core count)",
        ),
    }
}

/// E16 — daemon concurrency: one `quickrecd` multiplexing a thousand
/// live connections on a handful of event workers, with Busy
/// backpressure under saturation and fetch results byte-identical to a
/// sequential local recording.
fn e16() -> Experiment {
    let job: Job = Box::new(|cache: &BuildCache| {
        use qr_server::proto::{Endpoint, Request, Response};
        use qr_server::Client;

        let env_count = |name: &str, default: usize| {
            std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
        };
        let conns = env_count("QR_BENCH_CONNS", 1100).max(4);
        let jobs = env_count("QR_BENCH_JOBS", 64).clamp(1, conns);
        // An external daemon (spawned by verify.sh / CI) owns its own
        // lifecycle and configuration; in-process we pick a queue the
        // default burst must overflow so the Busy path is exercised.
        let external = std::env::var("QR_E16_SOCKET").ok();
        let queue_capacity = 16usize;
        let workers = 2usize;

        let dir = std::env::temp_dir().join(format!("qr-e16-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).map_err(|e| QrError::Execution {
            detail: format!("scratch dir: {e}"),
        })?;
        let (endpoint, handle) = match &external {
            Some(path) => (Endpoint::Unix(path.into()), None),
            None => {
                let endpoint = Endpoint::Unix(dir.join("qd.sock"));
                let config = qr_server::ServerConfig {
                    workers,
                    shards: workers,
                    queue_capacity,
                    store_root: dir.join("store"),
                    event_workers: 2,
                    // Exactly the fleet size: every connection beyond
                    // the fleet must be refused with Busy at accept.
                    max_connections: conns,
                };
                let handle = qr_server::Server::start(&endpoint, &config)?;
                (endpoint, Some(handle))
            }
        };

        // Phase 1: open the whole fleet and keep every stream alive.
        let started = std::time::Instant::now();
        let mut clients = Vec::with_capacity(conns);
        clients.push(Client::connect_with_retry(&endpoint, std::time::Duration::from_secs(10))?);
        for _ in 1..conns {
            clients.push(Client::connect(&endpoint)?);
        }
        let connect_ms = started.elapsed().as_secs_f64() * 1e3;

        // Phase 2: one PING round trip on every open connection — each
        // must answer while all the others stay connected.
        let started = std::time::Instant::now();
        for (i, client) in clients.iter_mut().enumerate() {
            client.ping().map_err(|e| QrError::Execution {
                detail: format!("ping on connection {i} of {conns}: {e}"),
            })?;
        }
        let ping_ms = started.elapsed().as_secs_f64() * 1e3;

        // Phase 3: burst RECORD submissions over distinct connections.
        // Every one gets a framed answer: Submitted or a clean Busy.
        let started = std::time::Instant::now();
        let mut accepted = Vec::new();
        let mut busy = 0usize;
        for i in 0..jobs {
            let client = &mut clients[i % conns];
            match client.call(&Request::SubmitWorkload {
                name: format!("e16-{i}"),
                workload: "fft".into(),
                threads: 2,
                scale: Scale::Test,
                encoding: Encoding::Delta,
                order: OrderMode::TotalOrder,
            })? {
                Response::Submitted { id } => accepted.push(id),
                Response::Busy { .. } => busy += 1,
                other => {
                    return Err(QrError::Execution {
                        detail: format!("submission {i}: unexpected response {other:?}"),
                    })
                }
            }
        }
        if accepted.len() + busy != jobs || accepted.is_empty() {
            return Err(QrError::Execution {
                detail: format!(
                    "burst of {jobs} answered {} Submitted + {busy} Busy",
                    accepted.len()
                ),
            });
        }
        if external.is_none() && jobs > queue_capacity + workers && busy == 0 {
            return Err(QrError::Execution {
                detail: format!(
                    "a {jobs}-burst against a {queue_capacity}-deep queue never saw Busy"
                ),
            });
        }
        for &id in &accepted {
            clients[0].wait_for(id, std::time::Duration::from_secs(600))?;
        }
        let jobs_ms = started.elapsed().as_secs_f64() * 1e3;

        // Phase 4: fidelity gate. A sample of the daemon's recordings
        // must be byte-identical to one sequential local recording of
        // the same seeded workload (the daemon adds its checkpoint
        // sidecar on top; every file the local run produces must match).
        let spec = suite::find("fft").expect("suite member");
        let reference =
            record_workload_with(cache, &spec, 2, Scale::Test, RecordingConfig::with_cores(2))?;
        let ref_dir = dir.join("reference");
        std::fs::create_dir_all(&ref_dir).map_err(|e| QrError::Execution {
            detail: format!("reference dir: {e}"),
        })?;
        reference.save(&ref_dir, Encoding::Delta)?;
        let mut ref_files = Vec::new();
        for entry in std::fs::read_dir(&ref_dir).map_err(|e| QrError::Execution {
            detail: format!("reference dir: {e}"),
        })? {
            let entry = entry.map_err(|e| QrError::Execution { detail: e.to_string() })?;
            let name = entry.file_name().to_string_lossy().into_owned();
            let bytes = std::fs::read(entry.path())
                .map_err(|e| QrError::Execution { detail: format!("{name}: {e}") })?;
            ref_files.push((name, bytes));
        }

        let mut cases = 0u64;
        let mut drift = 0u64;
        let mut first_drift = String::new();
        let mut note_drift = |detail: String, drift: &mut u64| {
            *drift += 1;
            if first_drift.is_empty() {
                first_drift = detail;
            }
        };
        for &id in accepted.iter().take(8) {
            cases += 1;
            let Response::Fetched { files, fingerprint } =
                clients[0].call(&Request::Fetch { id })?
            else {
                note_drift(format!("session {id}: fetch refused"), &mut drift);
                continue;
            };
            if fingerprint != reference.fingerprint {
                note_drift(
                    format!(
                        "session {id}: fingerprint {fingerprint:#018x} != local \
                         {:#018x}",
                        reference.fingerprint
                    ),
                    &mut drift,
                );
                continue;
            }
            for (name, bytes) in &ref_files {
                let fetched = match files.iter().find(|(n, _)| n == name) {
                    Some((_, fetched)) => fetched,
                    None => {
                        note_drift(format!("session {id}: {name} missing"), &mut drift);
                        continue;
                    }
                };
                // The daemon legitimately rewrites the format manifest
                // to list its checkpoint sidecar; every other file must
                // be byte-identical to the local recording.
                if name == "format.qrv" {
                    use qr_common::frame::PayloadKind;
                    let mut expected = qr_capo::FormatManifest::from_bytes(bytes)?;
                    if !expected.payloads.contains(&PayloadKind::CheckpointIndex) {
                        expected.payloads.push(PayloadKind::CheckpointIndex);
                        expected.payloads.sort_by_key(|k| k.code());
                    }
                    if fetched != &expected.to_bytes() && fetched != bytes {
                        note_drift(
                            format!("session {id}: {name} differs beyond the sidecar entry"),
                            &mut drift,
                        );
                    }
                } else if fetched != bytes {
                    note_drift(
                        format!("session {id}: {name} differs from the local bytes"),
                        &mut drift,
                    );
                }
            }
        }

        // Phase 5 (in-process only): the accept path refuses connection
        // number max_connections+1 with a framed Busy, never a hang.
        let mut refused = 0usize;
        if external.is_none() {
            for i in 0..8 {
                match Client::connect(&endpoint) {
                    Err(_) => refused += 1,
                    Ok(mut extra) => match extra.ping() {
                        Err(_) => refused += 1,
                        Ok(()) => {
                            return Err(QrError::Execution {
                                detail: format!(
                                    "overload probe {i} was served with {conns} \
                                     connections already open (max_connections={conns})"
                                ),
                            })
                        }
                    },
                }
            }
        }

        // Phase 6: the event loop's own instrumentation is live.
        let metrics = clients[0].metrics()?;
        for family in ["qr_server_event_loop_wakeups_total", "qr_server_open_connections"] {
            if !metrics.contains(family) {
                return Err(QrError::Execution {
                    detail: format!("metrics exposition is missing `{family}`"),
                });
            }
        }

        // Phase 7 (in-process only): hang up everywhere; the gauge must
        // drain to exactly zero, then shut the daemon down.
        drop(clients);
        if let Some(handle) = handle {
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
            while handle.open_connections() != 0 {
                if std::time::Instant::now() >= deadline {
                    return Err(QrError::Execution {
                        detail: format!(
                            "open-connections gauge stuck at {} after the fleet hung up",
                            handle.open_connections()
                        ),
                    });
                }
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
            handle.shutdown();
            handle.wait();
        }

        let mut out = JobOutput::default();
        out.rows.push(vec![
            "connections".into(),
            conns.to_string(),
            "held open concurrently on one daemon".into(),
        ]);
        out.rows.push(vec![
            "connect".into(),
            format!("{connect_ms:.0} ms"),
            format!("{:.0} conns/s", conns as f64 / (connect_ms / 1e3).max(1e-9)),
        ]);
        out.rows.push(vec![
            "ping sweep".into(),
            format!("{ping_ms:.0} ms"),
            format!("every one of {conns} connections answered"),
        ]);
        out.rows.push(vec![
            "submissions".into(),
            jobs.to_string(),
            format!("{} accepted, {busy} busy (all framed)", accepted.len()),
        ]);
        out.rows.push(vec![
            "jobs drained".into(),
            format!("{jobs_ms:.0} ms"),
            format!("{} RECORD jobs to Done", accepted.len()),
        ]);
        out.rows.push(vec![
            "overload probe".into(),
            refused.to_string(),
            if external.is_some() {
                "skipped (external daemon)".into()
            } else {
                format!("refused past max_connections={conns}")
            },
        ]);
        out.rows.push(vec![
            "fidelity".into(),
            format!("{cases} sessions"),
            if drift == 0 { "PASS (byte-identical to local)".into() }
            else { format!("{drift} DRIFT") },
        ]);

        // Machine-readable summary, hand-rolled JSON (no external crates).
        let json_path =
            std::env::var("QR_BENCH_JSON").unwrap_or_else(|_| "BENCH_daemon.json".into());
        let json = format!(
            "{{\n  \"experiment\": \"e16\",\n  \"connections\": {conns},\n  \
             \"event_workers\": 2,\n  \"external_daemon\": {},\n  \
             \"connect_ms\": {connect_ms:.1},\n  \
             \"connects_per_sec\": {:.1},\n  \"ping_sweep_ms\": {ping_ms:.1},\n  \
             \"submissions\": {jobs},\n  \"accepted\": {},\n  \"busy\": {busy},\n  \
             \"refused_at_accept\": {refused},\n  \"jobs_wall_ms\": {jobs_ms:.1},\n  \
             \"fidelity\": {{\n    \"cases\": {cases},\n    \"drift\": {drift}\n  }}\n}}\n",
            external.is_some(),
            conns as f64 / (connect_ms / 1e3).max(1e-9),
            accepted.len(),
        );
        std::fs::write(&json_path, json).map_err(|e| QrError::Execution {
            detail: format!("writing {json_path}: {e}"),
        })?;
        std::fs::remove_dir_all(&dir).ok();

        if drift > 0 {
            return Err(QrError::Execution {
                detail: format!("fetch drift ({drift} in {cases} sessions): {first_drift}"),
            });
        }
        Ok(out)
    });
    Experiment {
        id: "e16",
        title: "daemon concurrency: multiplexed sessions on the event-driven listener",
        note: "QR_BENCH_CONNS connections (default 1100) and QR_BENCH_JOBS submissions \
         (default 64) against one daemon; wall times vary with the host — the fidelity \
         drift, framed-answer and accounting gates are the pass/fail signals (summary \
         written to BENCH_daemon.json, QR_BENCH_JSON to override; QR_E16_SOCKET points \
         at an externally spawned daemon)",
        header: vec!["metric".into(), "value".into(), "detail".into()],
        jobs: vec![job],
        footer: Footer::Static(
            "(a fixed crew of event workers multiplexes every connection with poll(2); \
             the bounded worker pool still runs the CPU-bound jobs, so saturation shows \
             up as clean Busy answers, not stalled connections)",
        ),
    }
}

/// A1 — signature-size ablation.
fn a1() -> Experiment {
    let mut jobs: Vec<Job> = Vec::new();
    for name in ["radix", "ocean"] {
        let spec = qr_workloads::suite::find(name).expect("suite member");
        for bits in [256u32, 512, 1024, 2048, 8192] {
            jobs.push(Box::new(move |cache: &BuildCache| {
                let mut cfg = full_cfg(4);
                cfg.mrr = MrrConfig {
                    read_sig_bits: bits,
                    write_sig_bits: bits / 2,
                    track_exact_sets: true,
                    ..MrrConfig::default()
                };
                let r = record_workload_with(cache, &spec, 4, Scale::Small, cfg)?;
                Ok(JobOutput::row([
                    name.to_string(),
                    bits.to_string(),
                    r.chunks.len().to_string(),
                    format!("{:.0}", r.recorder_stats.mean_chunk_size()),
                    r.recorder_stats.conflict_chunks().to_string(),
                    r.recorder_stats.false_positive_conflicts.to_string(),
                ]))
            }));
        }
    }
    Experiment {
        id: "a1",
        title: "ablation: signature size vs chunk length and false positives",
        note: "smaller signatures saturate earlier and alias more; expect chunk sizes to grow with bits",
        header: vec!["workload".into(), "sig bits".into(), "chunks".into(),
            "mean chunk".into(), "conflict chunks".into(), "false-pos conflicts".into()],
        jobs,
        footer: Footer::None,
    }
}

/// A2 — CBUF-capacity ablation.
fn a2() -> Experiment {
    let mut jobs: Vec<Job> = Vec::new();
    for name in ["radix", "fft"] {
        let spec = qr_workloads::suite::find(name).expect("suite member");
        for (entries, drain) in [(1usize, 512u64), (2, 256), (4, 64), (64, 16)] {
            jobs.push(Box::new(move |cache: &BuildCache| {
                let native = run_native_workload_with(cache, &spec, 4, Scale::Small)?;
                let mut cfg = hw_cfg(4);
                cfg.mrr.cbuf_entries = entries;
                cfg.mrr.cbuf_drain_cycles = drain;
                let r = record_workload_with(cache, &spec, 4, Scale::Small, cfg)?;
                Ok(JobOutput::row([
                    name.to_string(),
                    entries.to_string(),
                    drain.to_string(),
                    r.overhead.hw_stall_cycles.to_string(),
                    format!("{:.3}%", overhead_pct(r.cycles, native.cycles)),
                ]))
            }));
        }
    }
    Experiment {
        id: "a2",
        title: "ablation: CBUF capacity vs hardware stalls",
        note: "the only hardware overhead source; stalls appear only when the buffer is starved",
        header: vec!["workload".into(), "cbuf entries".into(), "drain cyc/pkt".into(),
            "stall cycles".into(), "hw overhead".into()],
        jobs,
        footer: Footer::None,
    }
}

/// A3 — TSO-mode ablation.
fn a3() -> Experiment {
    let mut jobs: Vec<Job> = Vec::new();
    for name in ["fft", "water", "radiosity"] {
        let spec = qr_workloads::suite::find(name).expect("suite member");
        for mode in [TsoMode::DrainAtChunk, TsoMode::Rsw] {
            jobs.push(Box::new(move |cache: &BuildCache| {
                let mut cfg = full_cfg(4);
                cfg.cpu.mem.tso_mode = mode;
                cfg.cpu.drain_interval = 8;
                // A small chunk-size cap forces hardware (ic-overflow) chunk
                // closings, where the two modes actually differ.
                cfg.mrr.max_chunk_icount = 400;
                let program = cache.program(&spec, 4, Scale::Small)?;
                let r = record_workload_with(cache, &spec, 4, Scale::Small, cfg)?;
                let verdict = match qr_replay::replay_and_verify(&program, &r) {
                    Ok(_) => "PASS",
                    Err(_) => "FAIL",
                };
                Ok(JobOutput::row([
                    name.to_string(),
                    format!("{mode:?}"),
                    r.chunks.len().to_string(),
                    r.recorder_stats.chunks_with_rsw.to_string(),
                    r.chunks.to_bytes(Encoding::Delta).len().to_string(),
                    verdict.to_string(),
                ]))
            }));
        }
    }
    Experiment {
        id: "a3",
        title: "ablation: DrainAtChunk vs Rsw",
        note: "draining at hardware chunk boundaries removes RSW at a small cost; both modes replay exactly",
        header: vec!["workload".into(), "mode".into(), "chunks".into(), "rsw>0".into(),
            "log bytes".into(), "replay".into()],
        jobs,
        footer: Footer::None,
    }
}

/// A5 — store-buffer drain-interval ablation.
fn a5() -> Experiment {
    let mut jobs: Vec<Job> = Vec::new();
    for name in ["fft", "water"] {
        let spec = qr_workloads::suite::find(name).expect("suite member");
        for interval in [1u64, 4, 16, 64] {
            jobs.push(Box::new(move |cache: &BuildCache| {
                let mut cfg = full_cfg(4);
                cfg.cpu.mem.tso_mode = TsoMode::Rsw;
                cfg.cpu.drain_interval = interval;
                let program = cache.program(&spec, 4, Scale::Small)?;
                let r = record_workload_with(cache, &spec, 4, Scale::Small, cfg)?;
                let verdict = match qr_replay::replay_and_verify(&program, &r) {
                    Ok(_) => "PASS",
                    Err(_) => "FAIL",
                };
                Ok(JobOutput::row([
                    name.to_string(),
                    interval.to_string(),
                    r.chunks.len().to_string(),
                    r.recorder_stats.chunks_with_rsw.to_string(),
                    pct(r.recorder_stats.chunks_with_rsw, r.chunks.len() as u64),
                    verdict.to_string(),
                ]))
            }));
        }
    }
    Experiment {
        id: "a5",
        title: "ablation: background drain interval vs TSO reordering",
        note: "slower drains leave more stores pending at chunk boundaries (larger RSW footprint)",
        header: vec!["workload".into(), "drain 1/N".into(), "chunks".into(), "rsw>0".into(),
            "% with rsw".into(), "replay".into()],
        jobs,
        footer: Footer::None,
    }
}

/// A6 — scheduling-quantum ablation.
fn a6() -> Experiment {
    let spec = qr_workloads::suite::find("lu").expect("suite member");
    let jobs: Vec<Job> = [1_000u64, 5_000, 20_000, 100_000]
        .into_iter()
        .map(|quantum| {
            Box::new(move |cache: &BuildCache| {
                let mut cfg = full_cfg(2); // 4 threads on 2 cores
                cfg.os.quantum_cycles = quantum;
                let program = cache.program(&spec, 4, Scale::Small)?;
                let r = record_workload_with(cache, &spec, 4, Scale::Small, cfg)?;
                let verdict = match qr_replay::replay_and_verify(&program, &r) {
                    Ok(_) => "PASS",
                    Err(_) => "FAIL",
                };
                let ctx = r.recorder_stats.chunks_by_reason
                    [TerminationReason::ContextSwitch.code() as usize];
                Ok(JobOutput::row([
                    quantum.to_string(),
                    ctx.to_string(),
                    r.chunks.len().to_string(),
                    r.overhead.total().to_string(),
                    verdict.to_string(),
                ]))
            }) as Job
        })
        .collect();
    Experiment {
        id: "a6",
        title: "ablation: scheduling quantum vs context-switch chunks and overhead",
        note: "threads > cores: shorter quanta force more recorder save/restores",
        header: vec!["quantum".into(), "ctx-switch chunks".into(), "chunks".into(),
            "overhead cycles".into(), "replay".into()],
        jobs,
        footer: Footer::None,
    }
}

/// R1 — log fault injection (the robustness contract of the framed
/// format and salvage replay).
fn r1() -> Experiment {
    use crate::fault::{self, Mutator};
    let workloads = ["fft", "water", "radix", "lu"];
    let combos: Vec<(WorkloadSpec, Encoding, Mutator)> = workloads
        .iter()
        .map(|name| qr_workloads::suite::find(name).expect("suite member"))
        .flat_map(|spec| {
            Encoding::ALL.iter().flat_map(move |&encoding| {
                Mutator::ALL.iter().map(move |&mutator| (spec, encoding, mutator))
            })
        })
        .collect();
    // The case budget is captured at plan time (the CLI sets it before
    // planning); each job then owns a fixed share, keyed RNG and all.
    let total = fault::fuzz_cases();
    let n_jobs = combos.len();
    let jobs: Vec<Job> = combos
        .into_iter()
        .enumerate()
        .map(|(i, (spec, encoding, mutator))| {
            let cases = total / n_jobs + usize::from(i < total % n_jobs);
            Box::new(move |cache: &BuildCache| {
                fault::fuzz_job(cache, &spec, encoding, mutator, cases)
            }) as Job
        })
        .collect();
    Experiment {
        id: "r1",
        title: "log fault injection: mutated recordings never panic, always salvage a true prefix",
        note: "per-job SplitMix64 streams keyed by (workload, encoding, mutator); every case asserts \
         strict decode rejects or the salvaged replay prefix-matches the clean run",
        header: vec!["workload".into(), "encoding".into(), "mutator".into(), "cases".into(),
            "rejected".into(), "decoded".into(), "mean salvaged".into()],
        jobs,
        footer: Footer::MeanStat(|mean| {
            format!("mean salvaged-timeline fraction: {:.1}% (0 panics, all prefixes verified)",
                100.0 * mean)
        }),
    }
}
