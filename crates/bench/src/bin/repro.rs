//! `repro` — regenerates every table and figure of the QuickRec
//! evaluation (see DESIGN.md's experiment index and EXPERIMENTS.md for
//! the paper-vs-measured record).
//!
//! ```text
//! cargo run --release -p qr-bench --bin repro -- all
//! cargo run --release -p qr-bench --bin repro -- e5
//! cargo run --release -p qr-bench --bin repro -- all --serial
//! cargo run --release -p qr-bench --bin repro -- all --jobs 4
//! cargo run --release -p qr-bench --bin repro -- r1 --fuzz-iters 200
//! ```
//!
//! Experiments decompose into independent (workload, configuration)
//! jobs that run on a scoped thread pool (see `qr_bench::runner`); the
//! simulator is deterministic and results are rendered in submission
//! order, so the output is byte-identical whichever mode runs it.
//! `--serial` runs the jobs on this thread; `--jobs N` sets the worker
//! count (default: the host's available cores).

use qr_bench::experiments::{render_experiments, ALL_IDS, WALL_CLOCK_IDS};
use qr_bench::runner::ExecMode;
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode = ExecMode::parallel_default();
    let mut what: Option<String> = None;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--serial" => mode = ExecMode::Serial,
            "--jobs" => {
                let workers = iter
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--jobs needs a positive integer");
                        std::process::exit(2);
                    });
                mode = ExecMode::Parallel { workers };
            }
            "--fuzz-iters" => {
                let total = iter
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--fuzz-iters needs a positive integer");
                        std::process::exit(2);
                    });
                qr_bench::fault::set_fuzz_cases(total);
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag `{other}`; flags: --serial, --jobs N, --fuzz-iters N");
                std::process::exit(2);
            }
            other => what = Some(other.to_string()),
        }
    }
    let what = what.unwrap_or_else(|| "all".to_string());
    let selected: Vec<&str> = if what == "all" {
        // Wall-clock experiments (WALL_CLOCK_IDS) are deliberately
        // excluded: their timings differ run to run, which would break
        // the byte-identical serial/parallel guarantee below.
        ALL_IDS.to_vec()
    } else if let Some(&id) = ALL_IDS
        .iter()
        .chain(WALL_CLOCK_IDS.iter())
        .find(|&&id| id == what)
    {
        vec![id]
    } else {
        eprintln!(
            "unknown experiment `{what}`; known: {ALL_IDS:?}, \
             wall-clock (explicit only): {WALL_CLOCK_IDS:?}, or `all`"
        );
        std::process::exit(2);
    };

    let (output, failure) = render_experiments(&selected, mode);
    print!("{output}");
    if let Some((exp, e)) = failure {
        std::io::stdout().flush().ok();
        eprintln!("experiment {exp} failed: {e}");
        std::process::exit(1);
    }
}
