//! `repro` — regenerates every table and figure of the QuickRec
//! evaluation (see DESIGN.md's experiment index and EXPERIMENTS.md for
//! the paper-vs-measured record).
//!
//! ```text
//! cargo run --release -p qr-bench --bin repro -- all
//! cargo run --release -p qr-bench --bin repro -- e5
//! ```

use qr_bench::{full_cfg, hw_cfg, overhead_pct, record_workload, run_native_workload, Table, CORE_HZ};
use qr_capo::{InputEvent, RecordingConfig};
use qr_common::Result;
use qr_mem::TsoMode;
use qr_replay::replay;
use qr_workloads::{suite, Scale};
use quickrec_core::{Encoding, MrrConfig, TerminationReason};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    let all = [
        "t1", "t2", "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "a1",
        "a2", "a3", "a5", "a6",
    ];
    let selected: Vec<&str> =
        if what == "all" { all.to_vec() } else { vec![what] };
    for exp in selected {
        let result = match exp {
            "t1" => t1(),
            "t2" => t2(),
            "e1" => e1(),
            "e2" => e2(),
            "e3" => e3(),
            "e4" => e4(),
            "e5" => e5(),
            "e6" => e6(),
            "e7" => e7(),
            "e8" => e8(),
            "e9" => e9(),
            "e10" => e10(),
            "e11" => e11(),
            "a1" => a1(),
            "a2" => a2(),
            "a3" => a3(),
            "a5" => a5(),
            "a6" => a6(),
            other => {
                eprintln!("unknown experiment `{other}`; known: {all:?} or `all`");
                std::process::exit(2);
            }
        };
        if let Err(e) = result {
            eprintln!("experiment {exp} failed: {e}");
            std::process::exit(1);
        }
    }
}

fn heading(id: &str, title: &str, note: &str) {
    println!("\n=== {id}: {title} ===");
    if !note.is_empty() {
        println!("({note})\n");
    }
}

/// T1 — platform configuration (the paper's system-parameters table).
fn t1() -> Result<()> {
    heading("T1", "QuickRec-RS platform configuration", "paper analog: QuickIA system parameters table");
    let cfg = RecordingConfig::with_cores(4);
    let mut t = Table::new(["parameter", "value"]);
    t.row(["cores", &format!("{}", cfg.cpu.num_cores)]);
    t.row(["ISA", "PIA (32-bit IA-like, 8-byte fixed encoding)"]);
    t.row(["memory model", "TSO (store buffers with forwarding)"]);
    t.row(["L1 per core", &format!("{} KiB ({} sets x {} ways x 64 B), MESI",
        cfg.cpu.mem.l1_bytes() / 1024, cfg.cpu.mem.l1_sets, cfg.cpu.mem.l1_ways)]);
    t.row(["store buffer", &format!("{} entries, background drain 1/{} instrs",
        cfg.cpu.mem.store_buffer_entries, cfg.cpu.drain_interval)]);
    t.row(["miss penalty", &format!("{} cycles (+{} dirty intervention)",
        cfg.cpu.mem.miss_penalty, cfg.cpu.mem.intervention_penalty)]);
    t.row(["read signature", &format!("{} bits, {} hashes", cfg.mrr.read_sig_bits, cfg.mrr.sig_hashes)]);
    t.row(["write signature", &format!("{} bits, {} hashes", cfg.mrr.write_sig_bits, cfg.mrr.sig_hashes)]);
    t.row(["sig saturation limit", &format!("{}%", cfg.mrr.sig_saturation_permille / 10)]);
    t.row(["max chunk size", &format!("{} instructions", cfg.mrr.max_chunk_icount)]);
    t.row(["CBUF", &format!("{} packets, DMA 1 packet/{} cycles", cfg.mrr.cbuf_entries, cfg.mrr.cbuf_drain_cycles)]);
    t.row(["CMEM", &format!("{} KiB, interrupt at {} KiB",
        cfg.mrr.cmem_capacity / 1024, cfg.mrr.cmem_interrupt_threshold / 1024)]);
    t.row(["log encoding", cfg.mrr.encoding.name()]);
    t.row(["OS quantum", &format!("{} cycles", cfg.os.quantum_cycles)]);
    t.row(["RSM syscall intercept", &format!("{} cycles", cfg.overhead.syscall_intercept_cycles)]);
    t.row(["RSM drain interrupt", &format!("{} + {}/byte cycles",
        cfg.overhead.drain_base_cycles, cfg.overhead.drain_cycles_per_byte)]);
    print!("{}", t.render());
    Ok(())
}

/// T2 — the workload suite (the paper's benchmarks table).
fn t2() -> Result<()> {
    heading("T2", "workload suite (SPLASH-2 analogs)", "reference-scale sizes, 4 threads");
    let mut t = Table::new(["workload", "instructions", "sync pattern"]);
    for spec in suite() {
        let out = run_native_workload(&spec, 4, Scale::Reference)?;
        t.row([spec.name, &format!("{}", out.instructions), spec.description]);
    }
    print!("{}", t.render());
    Ok(())
}

/// E1 — memory-log generation rate (abstract claim: "insignificant").
fn e1() -> Result<()> {
    heading(
        "E1",
        "memory-log generation rate",
        "paper: the rate of memory log generation is insignificant; \
         expect ~1-5 B/kilo-instruction for regular kernels, more for irregular ones",
    );
    let mut t = Table::new(["workload", "chunks", "log bytes", "B/kilo-instr", "KB/s @60MHz"]);
    let mut rates = Vec::new();
    for spec in suite() {
        let r = record_workload(&spec, 4, Scale::Reference, full_cfg(4))?;
        let bytes = r.chunks.to_bytes(Encoding::Delta).len();
        let bpki = r.log_bytes_per_kilo_instruction(Encoding::Delta);
        let kbs = bytes as f64 / (r.cycles as f64 / CORE_HZ) / 1024.0;
        rates.push(bpki);
        t.row([
            spec.name.to_string(),
            r.chunks.len().to_string(),
            bytes.to_string(),
            format!("{bpki:.2}"),
            format!("{kbs:.1}"),
        ]);
    }
    print!("{}", t.render());
    let mean = rates.iter().sum::<f64>() / rates.len() as f64;
    println!("mean: {mean:.2} B/kilo-instruction");
    Ok(())
}

/// E2 — chunk-size distribution.
fn e2() -> Result<()> {
    heading("E2", "chunk-size distribution (instructions per chunk)", "paper analog: chunk-size characterization");
    let mut t = Table::new(["workload", "p10", "p50", "p90", "p99", "max", "mean"]);
    for spec in suite() {
        let r = record_workload(&spec, 4, Scale::Reference, full_cfg(4))?;
        t.row([
            spec.name.to_string(),
            r.chunks.chunk_size_percentile(10).to_string(),
            r.chunks.chunk_size_percentile(50).to_string(),
            r.chunks.chunk_size_percentile(90).to_string(),
            r.chunks.chunk_size_percentile(99).to_string(),
            r.chunks.chunk_size_percentile(100).to_string(),
            format!("{:.0}", r.recorder_stats.mean_chunk_size()),
        ]);
    }
    print!("{}", t.render());
    Ok(())
}

/// E3 — chunk-termination reason breakdown.
fn e3() -> Result<()> {
    heading("E3", "why chunks terminate (% of chunks)", "paper analog: chunk-termination breakdown");
    let mut header = vec!["workload".to_string()];
    header.extend(TerminationReason::ALL.iter().map(|r| r.label().to_string()));
    let mut t = Table::new(header);
    for spec in suite() {
        let r = record_workload(&spec, 4, Scale::Reference, full_cfg(4))?;
        let total = r.chunks.len() as u64;
        let mut row = vec![spec.name.to_string()];
        for reason in TerminationReason::ALL {
            let count = r.recorder_stats.chunks_by_reason[reason.code() as usize];
            row.push(qr_bench::pct(count, total));
        }
        t.row(row);
    }
    print!("{}", t.render());
    Ok(())
}

/// E4 — packet-encoding comparison.
fn e4() -> Result<()> {
    heading(
        "E4",
        "log size by packet encoding (B/kilo-instruction)",
        "paper analog: log compression comparison; expect raw > packed > delta",
    );
    let mut t = Table::new(["workload", "raw", "packed", "delta", "delta vs raw"]);
    for spec in suite() {
        let r = record_workload(&spec, 4, Scale::Reference, full_cfg(4))?;
        let sizes: Vec<f64> =
            Encoding::ALL.iter().map(|&e| r.log_bytes_per_kilo_instruction(e)).collect();
        t.row([
            spec.name.to_string(),
            format!("{:.2}", sizes[0]),
            format!("{:.2}", sizes[1]),
            format!("{:.2}", sizes[2]),
            format!("{:.1}x", sizes[0] / sizes[2].max(1e-9)),
        ]);
    }
    print!("{}", t.render());
    Ok(())
}

/// E5 — recording overhead (abstract claims: hardware negligible,
/// software ~13% mean).
fn e5() -> Result<()> {
    heading(
        "E5",
        "recording overhead vs native execution",
        "paper: recording hardware has negligible overhead; the software stack costs ~13% on average",
    );
    let mut t = Table::new(["workload", "native cycles", "hw-only", "full stack"]);
    let mut overheads = Vec::new();
    for spec in suite() {
        let native = run_native_workload(&spec, 4, Scale::Reference)?;
        let hw = record_workload(&spec, 4, Scale::Reference, hw_cfg(4))?;
        let full = record_workload(&spec, 4, Scale::Reference, full_cfg(4))?;
        let full_pct = overhead_pct(full.cycles, native.cycles);
        overheads.push(full_pct);
        t.row([
            spec.name.to_string(),
            native.cycles.to_string(),
            format!("{:.2}%", overhead_pct(hw.cycles, native.cycles)),
            format!("{full_pct:.2}%"),
        ]);
    }
    print!("{}", t.render());
    let mean = overheads.iter().sum::<f64>() / overheads.len() as f64;
    println!("mean full-stack overhead: {mean:.1}%  (paper: ~13%)");
    Ok(())
}

/// E6 — software overhead breakdown.
fn e6() -> Result<()> {
    heading("E6", "where the software overhead goes (% of overhead cycles)", "paper analog: RSM cost breakdown");
    let mut t = Table::new(["workload", "syscall", "log-copy", "cmem-drain", "mrr-switch", "signal", "hw-stall"]);
    for spec in suite() {
        let r = record_workload(&spec, 4, Scale::Reference, full_cfg(4))?;
        let o = &r.overhead;
        let total = o.total();
        t.row([
            spec.name.to_string(),
            qr_bench::pct(o.syscall_cycles, total),
            qr_bench::pct(o.copy_cycles, total),
            qr_bench::pct(o.drain_cycles, total),
            qr_bench::pct(o.switch_cycles, total),
            qr_bench::pct(o.signal_cycles, total),
            qr_bench::pct(o.hw_stall_cycles, total),
        ]);
    }
    print!("{}", t.render());
    Ok(())
}

/// E7 — scaling with thread count.
fn e7() -> Result<()> {
    heading("E7", "scaling with thread count (1/2/4)", "overhead and log rate per thread count, reference scale");
    let mut t = Table::new(["workload", "t", "instructions", "overhead", "B/kilo-instr"]);
    for spec in suite().into_iter().filter(|s| ["fft", "lu", "radix", "ocean", "water"].contains(&s.name)) {
        for threads in [1usize, 2, 4] {
            let native = run_native_workload(&spec, threads, Scale::Reference)?;
            let full = record_workload(&spec, threads, Scale::Reference, full_cfg(threads))?;
            t.row([
                spec.name.to_string(),
                threads.to_string(),
                full.instructions.to_string(),
                format!("{:.2}%", overhead_pct(full.cycles, native.cycles)),
                format!("{:.2}", full.log_bytes_per_kilo_instruction(Encoding::Delta)),
            ]);
        }
    }
    print!("{}", t.render());
    println!("(log rate grows with threads: more cross-thread conflicts per instruction)");
    Ok(())
}

/// E8 — TSO reordered-store-window statistics.
fn e8() -> Result<()> {
    heading(
        "E8",
        "TSO effects: reordered store windows (Rsw mode)",
        "chunks that terminated with stores still in the store buffer; the RSW field makes them replayable",
    );
    let mut t = Table::new(["workload", "chunks", "rsw>0 chunks", "% with rsw", "mean rsw"]);
    for spec in suite() {
        let mut cfg = full_cfg(4);
        cfg.cpu.mem.tso_mode = TsoMode::Rsw;
        cfg.cpu.drain_interval = 8;
        let r = record_workload(&spec, 4, Scale::Small, cfg)?;
        let s = &r.recorder_stats;
        let mean_rsw = if s.chunks_with_rsw == 0 {
            0.0
        } else {
            s.rsw_sum as f64 / s.chunks_with_rsw as f64
        };
        t.row([
            spec.name.to_string(),
            r.chunks.len().to_string(),
            s.chunks_with_rsw.to_string(),
            qr_bench::pct(s.chunks_with_rsw, r.chunks.len() as u64),
            format!("{mean_rsw:.2}"),
        ]);
    }
    print!("{}", t.render());
    Ok(())
}

/// E9 — replay speed relative to recording.
fn e9() -> Result<()> {
    heading(
        "E9",
        "replay cost (serialized replay cycles / parallel recording cycles)",
        "chunk-ordered replay serializes the execution; ratios near or above 1x on 4 cores show the cost",
    );
    let mut t = Table::new(["workload", "record cycles", "replay cycles", "ratio"]);
    for spec in suite() {
        let program = (spec.build)(4, Scale::Small)?;
        let r = record_workload(&spec, 4, Scale::Small, full_cfg(4))?;
        let outcome = replay(&program, &r)?;
        t.row([
            spec.name.to_string(),
            r.cycles.to_string(),
            outcome.cycles.to_string(),
            format!("{:.2}x", outcome.slowdown_vs(&r)),
        ]);
    }
    print!("{}", t.render());
    Ok(())
}

/// E10 — determinism validation across the suite.
fn e10() -> Result<()> {
    heading("E10", "deterministic replay validation", "replay must reproduce memory, console and exit codes exactly");
    let mut t = Table::new(["workload", "chunks", "inputs", "fingerprint", "verdict"]);
    for spec in suite() {
        let program = (spec.build)(4, Scale::Small)?;
        let r = record_workload(&spec, 4, Scale::Small, full_cfg(4))?;
        let outcome = qr_replay::replay_and_verify(&program, &r)?;
        t.row([
            spec.name.to_string(),
            outcome.chunks_replayed.to_string(),
            outcome.inputs_injected.to_string(),
            format!("{:016x}", outcome.fingerprint),
            "PASS".to_string(),
        ]);
    }
    print!("{}", t.render());
    Ok(())
}

/// E11 — input-log characterization.
fn e11() -> Result<()> {
    heading(
        "E11",
        "input-log volume and composition",
        "the Capo3 side of the log: syscall results, copy_to_user payloads, nondet values",
    );
    let mut t = Table::new(["workload", "events", "payload bytes", "nondet vals", "log bytes", "B/kilo-instr"]);
    for spec in suite() {
        let r = record_workload(&spec, 4, Scale::Reference, full_cfg(4))?;
        let payload: usize = r
            .inputs
            .events()
            .iter()
            .map(|e| match e {
                InputEvent::Syscall { record, .. } => {
                    record.writes.iter().map(|(_, d)| d.len()).sum()
                }
                InputEvent::Signal { .. } => 0,
            })
            .sum();
        let bytes = r.inputs.byte_size();
        t.row([
            spec.name.to_string(),
            r.inputs.events().len().to_string(),
            payload.to_string(),
            r.inputs.nondet_count().to_string(),
            bytes.to_string(),
            format!("{:.3}", bytes as f64 * 1000.0 / r.instructions as f64),
        ]);
    }
    print!("{}", t.render());
    println!("(the input log is far smaller than the memory log for compute-bound workloads)");
    Ok(())
}

/// A1 — signature-size ablation.
fn a1() -> Result<()> {
    heading(
        "A1",
        "ablation: signature size vs chunk length and false positives",
        "smaller signatures saturate earlier and alias more; expect chunk sizes to grow with bits",
    );
    let mut t = Table::new(["workload", "sig bits", "chunks", "mean chunk", "conflict chunks", "false-pos conflicts"]);
    for name in ["radix", "ocean"] {
        let spec = qr_workloads::suite::find(name).expect("suite member");
        for bits in [256u32, 512, 1024, 2048, 8192] {
            let mut cfg = full_cfg(4);
            cfg.mrr = MrrConfig {
                read_sig_bits: bits,
                write_sig_bits: bits / 2,
                track_exact_sets: true,
                ..MrrConfig::default()
            };
            let r = record_workload(&spec, 4, Scale::Small, cfg)?;
            t.row([
                name.to_string(),
                bits.to_string(),
                r.chunks.len().to_string(),
                format!("{:.0}", r.recorder_stats.mean_chunk_size()),
                r.recorder_stats.conflict_chunks().to_string(),
                r.recorder_stats.false_positive_conflicts.to_string(),
            ]);
        }
    }
    print!("{}", t.render());
    Ok(())
}

/// A2 — CBUF-capacity ablation.
fn a2() -> Result<()> {
    heading(
        "A2",
        "ablation: CBUF capacity vs hardware stalls",
        "the only hardware overhead source; stalls appear only when the buffer is starved",
    );
    let mut t = Table::new(["workload", "cbuf entries", "drain cyc/pkt", "stall cycles", "hw overhead"]);
    for name in ["radix", "fft"] {
        let spec = qr_workloads::suite::find(name).expect("suite member");
        let native = run_native_workload(&spec, 4, Scale::Small)?;
        for (entries, drain) in [(1usize, 512u64), (2, 256), (4, 64), (64, 16)] {
            let mut cfg = hw_cfg(4);
            cfg.mrr.cbuf_entries = entries;
            cfg.mrr.cbuf_drain_cycles = drain;
            let r = record_workload(&spec, 4, Scale::Small, cfg)?;
            t.row([
                name.to_string(),
                entries.to_string(),
                drain.to_string(),
                r.overhead.hw_stall_cycles.to_string(),
                format!("{:.3}%", overhead_pct(r.cycles, native.cycles)),
            ]);
        }
    }
    print!("{}", t.render());
    Ok(())
}

/// A3 — TSO-mode ablation.
fn a3() -> Result<()> {
    heading(
        "A3",
        "ablation: DrainAtChunk vs Rsw",
        "draining at hardware chunk boundaries removes RSW at a small cost; both modes replay exactly",
    );
    let mut t = Table::new(["workload", "mode", "chunks", "rsw>0", "log bytes", "replay"]);
    for name in ["fft", "water", "radiosity"] {
        let spec = qr_workloads::suite::find(name).expect("suite member");
        for mode in [TsoMode::DrainAtChunk, TsoMode::Rsw] {
            let mut cfg = full_cfg(4);
            cfg.cpu.mem.tso_mode = mode;
            cfg.cpu.drain_interval = 8;
            // A small chunk-size cap forces hardware (ic-overflow) chunk
            // closings, where the two modes actually differ.
            cfg.mrr.max_chunk_icount = 400;
            let program = (spec.build)(4, Scale::Small)?;
            let r = record_workload(&spec, 4, Scale::Small, cfg)?;
            let verdict = match qr_replay::replay_and_verify(&program, &r) {
                Ok(_) => "PASS",
                Err(_) => "FAIL",
            };
            t.row([
                name.to_string(),
                format!("{mode:?}"),
                r.chunks.len().to_string(),
                r.recorder_stats.chunks_with_rsw.to_string(),
                r.chunks.to_bytes(Encoding::Delta).len().to_string(),
                verdict.to_string(),
            ]);
        }
    }
    print!("{}", t.render());
    Ok(())
}

/// A5 — store-buffer drain-interval ablation.
fn a5() -> Result<()> {
    heading(
        "A5",
        "ablation: background drain interval vs TSO reordering",
        "slower drains leave more stores pending at chunk boundaries (larger RSW footprint)",
    );
    let mut t = Table::new(["workload", "drain 1/N", "chunks", "rsw>0", "% with rsw", "replay"]);
    for name in ["fft", "water"] {
        let spec = qr_workloads::suite::find(name).expect("suite member");
        for interval in [1u64, 4, 16, 64] {
            let mut cfg = full_cfg(4);
            cfg.cpu.mem.tso_mode = TsoMode::Rsw;
            cfg.cpu.drain_interval = interval;
            let program = (spec.build)(4, Scale::Small)?;
            let r = record_workload(&spec, 4, Scale::Small, cfg)?;
            let verdict = match qr_replay::replay_and_verify(&program, &r) {
                Ok(_) => "PASS",
                Err(_) => "FAIL",
            };
            t.row([
                name.to_string(),
                interval.to_string(),
                r.chunks.len().to_string(),
                r.recorder_stats.chunks_with_rsw.to_string(),
                qr_bench::pct(r.recorder_stats.chunks_with_rsw, r.chunks.len() as u64),
                verdict.to_string(),
            ]);
        }
    }
    print!("{}", t.render());
    Ok(())
}

/// A6 — scheduling-quantum ablation.
fn a6() -> Result<()> {
    heading(
        "A6",
        "ablation: scheduling quantum vs context-switch chunks and overhead",
        "threads > cores: shorter quanta force more recorder save/restores",
    );
    let spec = qr_workloads::suite::find("lu").expect("suite member");
    let mut t = Table::new(["quantum", "ctx-switch chunks", "chunks", "overhead cycles", "replay"]);
    for quantum in [1_000u64, 5_000, 20_000, 100_000] {
        let mut cfg = full_cfg(2); // 4 threads on 2 cores
        cfg.os.quantum_cycles = quantum;
        let program = (spec.build)(4, Scale::Small)?;
        let r = record_workload(&spec, 4, Scale::Small, cfg)?;
        let verdict = match qr_replay::replay_and_verify(&program, &r) {
            Ok(_) => "PASS",
            Err(_) => "FAIL",
        };
        let ctx = r.recorder_stats.chunks_by_reason
            [TerminationReason::ContextSwitch.code() as usize];
        t.row([
            quantum.to_string(),
            ctx.to_string(),
            r.chunks.len().to_string(),
            r.overhead.total().to_string(),
            verdict.to_string(),
        ]);
    }
    print!("{}", t.render());
    Ok(())
}

// Silence an unused-import lint when some experiments are compiled out.
#[allow(unused)]
fn _unused(_: &InputEvent) {}
