#![warn(missing_docs)]

//! Experiment support library for the QuickRec-RS reproduction.
//!
//! The `repro` binary regenerates every table and figure of the
//! evaluation (see DESIGN.md's experiment index); this library holds the
//! shared measurement helpers and a small fixed-width table formatter so
//! the experiments print uniform, diff-able output.

pub mod experiments;
pub mod fault;
pub mod runner;
pub mod timing;

use qr_capo::{record, Recording, RecordingConfig, RecordingMode};
use qr_common::Result;
use qr_cpu::{CpuConfig, Machine};
use qr_isa::Program;
use qr_os::{run_native, OsConfig, RunOutcome};
use qr_workloads::{Scale, WorkloadSpec};
use runner::BuildCache;

/// The simulated core clock, used to convert cycles to wall time when an
/// experiment reports rates (the QuickIA FPGA cores ran at 60 MHz).
pub const CORE_HZ: f64 = 60_000_000.0;

/// Runs a workload natively (no recording).
///
/// # Errors
///
/// Propagates build and execution errors.
pub fn run_native_workload(spec: &WorkloadSpec, threads: usize, scale: Scale) -> Result<RunOutcome> {
    run_native_program((spec.build)(threads, scale)?, threads)
}

/// Like [`run_native_workload`], but sourcing the program from a shared
/// [`BuildCache`] so concurrent experiment jobs build each (workload,
/// threads, scale) key once.
///
/// # Errors
///
/// Propagates build and execution errors.
pub fn run_native_workload_with(
    cache: &BuildCache,
    spec: &WorkloadSpec,
    threads: usize,
    scale: Scale,
) -> Result<RunOutcome> {
    run_native_program(cache.program(spec, threads, scale)?, threads)
}

fn run_native_program(program: Program, threads: usize) -> Result<RunOutcome> {
    let mut machine =
        Machine::new(program, CpuConfig { num_cores: threads, ..CpuConfig::default() })?;
    run_native(&mut machine, OsConfig::default())
}

/// Records a workload with the given configuration.
///
/// # Errors
///
/// Propagates build and recording errors; also checks the workload's
/// self-validation checksum.
pub fn record_workload(
    spec: &WorkloadSpec,
    threads: usize,
    scale: Scale,
    cfg: RecordingConfig,
) -> Result<Recording> {
    record_program(spec, (spec.build)(threads, scale)?, threads, scale, cfg)
}

/// Like [`record_workload`], but sourcing the program from a shared
/// [`BuildCache`].
///
/// # Errors
///
/// Propagates build and recording errors; also checks the workload's
/// self-validation checksum.
pub fn record_workload_with(
    cache: &BuildCache,
    spec: &WorkloadSpec,
    threads: usize,
    scale: Scale,
    cfg: RecordingConfig,
) -> Result<Recording> {
    record_program(spec, cache.program(spec, threads, scale)?, threads, scale, cfg)
}

fn record_program(
    spec: &WorkloadSpec,
    program: Program,
    threads: usize,
    scale: Scale,
    cfg: RecordingConfig,
) -> Result<Recording> {
    let recording = record(program, cfg)?;
    let expected = (spec.expected)(threads, scale);
    if recording.exit_code != expected {
        return Err(qr_common::QrError::Execution {
            detail: format!(
                "{}: recorded checksum {:#x} != expected {:#x}",
                spec.name, recording.exit_code, expected
            ),
        });
    }
    Ok(recording)
}

/// Convenience: a full-stack recording config for `threads` cores.
pub fn full_cfg(threads: usize) -> RecordingConfig {
    RecordingConfig::with_cores(threads)
}

/// Convenience: a hardware-only recording config for `threads` cores.
pub fn hw_cfg(threads: usize) -> RecordingConfig {
    RecordingConfig { mode: RecordingMode::HardwareOnly, ..RecordingConfig::with_cores(threads) }
}

/// A fixed-width text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Table {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch — a bug in the experiment code.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Table {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "table row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Renders the table with aligned columns (first column
    /// left-aligned, the rest right-aligned).
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                if i == 0 {
                    line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
                } else {
                    line.push_str(&format!("{:>width$}", cells[i], width = widths[i]));
                }
            }
            line
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a fraction as a percentage string.
pub fn pct(numer: u64, denom: u64) -> String {
    if denom == 0 {
        "-".to_string()
    } else {
        format!("{:.2}%", 100.0 * numer as f64 / denom as f64)
    }
}

/// Relative overhead of `measured` cycles versus `baseline` cycles.
pub fn overhead_pct(measured: u64, baseline: u64) -> f64 {
    if baseline == 0 {
        0.0
    } else {
        100.0 * (measured as f64 / baseline as f64 - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["longer-name", "123456"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].starts_with("a "));
        assert!(lines[3].starts_with("longer-name"));
        // Right-aligned numeric column ends at the same offset.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_is_checked() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn percentage_helpers() {
        assert_eq!(pct(1, 4), "25.00%");
        assert_eq!(pct(1, 0), "-");
        assert!((overhead_pct(113, 100) - 13.0).abs() < 1e-9);
        assert_eq!(overhead_pct(5, 0), 0.0);
    }
}
