//! Deterministic fault injection for recording logs (experiment R1).
//!
//! A crash-consistent log format is only trustworthy if *arbitrary*
//! damage is handled, not just the tears we thought of. This module
//! mutates serialized chunk and input logs with five deterministic,
//! SplitMix64-driven mutators and checks the robustness contract on
//! every case:
//!
//! 1. decoding mutated bytes never panics,
//! 2. strict decode either succeeds or returns a structured
//!    [`QrError`], and
//! 3. salvage replay of the mutated log reproduces a *prefix* of the
//!    clean execution — console output, replayed chunk count and
//!    instruction count never exceed (or diverge from) the clean run,
//!    and the salvaged prefix is internally consistent.
//!
//! Every random stream is keyed by the job's stable identity
//! (workload, encoding, mutator), never by shared mutable state, so a
//! fuzz campaign is reproducible case-for-case regardless of how the
//! parallel executor schedules the jobs.

use crate::runner::{BuildCache, JobOutput};
use crate::{full_cfg, record_workload_with};
use qr_capo::{InputLog, InputSalvage, Recording, RecoveryInfo};
use qr_common::{frame, Fingerprint, QrError, Result, SplitMix64};
use qr_isa::Program;
use qr_workloads::{Scale, WorkloadSpec};
use quickrec_core::{ChunkLog, Encoding, OrderLog, OrderMode, SalvagedPackets};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default total mutated-recording cases for a full `repro r1` run.
pub const DEFAULT_FUZZ_CASES: usize = 12_000;

static FUZZ_CASES: AtomicUsize = AtomicUsize::new(DEFAULT_FUZZ_CASES);

/// Sets the total case budget for experiment R1 (divided across its
/// jobs). Called by the CLI (`--fuzz-iters`) before planning; the plan
/// captures the value, so jobs themselves read no shared state.
pub fn set_fuzz_cases(total: usize) {
    FUZZ_CASES.store(total.max(1), Ordering::SeqCst);
}

/// The current total case budget for experiment R1.
pub fn fuzz_cases() -> usize {
    FUZZ_CASES.load(Ordering::SeqCst)
}

/// One way of damaging a serialized log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutator {
    /// Cut the byte stream at a random offset (a torn write).
    Truncate,
    /// Flip one random bit (media or transport corruption).
    BitFlip,
    /// Duplicate one whole frame record in place (a replayed write).
    DuplicateRecord,
    /// Swap two whole frame records (reordered writeback).
    ReorderRecords,
    /// Overwrite a random span (up to 64 bytes) with zeroes (an
    /// unwritten page backing part of the file).
    ZeroFill,
}

impl Mutator {
    /// All mutators, in report order.
    pub const ALL: [Mutator; 5] = [
        Mutator::Truncate,
        Mutator::BitFlip,
        Mutator::DuplicateRecord,
        Mutator::ReorderRecords,
        Mutator::ZeroFill,
    ];

    /// Stable name used in reports and seed derivation.
    pub fn name(self) -> &'static str {
        match self {
            Mutator::Truncate => "truncate",
            Mutator::BitFlip => "bit-flip",
            Mutator::DuplicateRecord => "duplicate",
            Mutator::ReorderRecords => "reorder",
            Mutator::ZeroFill => "zero-fill",
        }
    }

    /// Applies the mutation to a copy of `original`, drawing all
    /// randomness from `rng`. Structural mutators that need frame
    /// records fall back to a mid-stream tear when the container has
    /// too few records (possible only for degenerate inputs); `Reorder`
    /// on identical records may be a byte-level no-op, which the
    /// harness tolerates.
    pub fn apply(self, original: &[u8], rng: &mut SplitMix64) -> Vec<u8> {
        let mut bytes = original.to_vec();
        let len = bytes.len();
        if len == 0 {
            return bytes;
        }
        match self {
            Mutator::Truncate => {
                bytes.truncate(rng.below(len as u64) as usize);
            }
            Mutator::BitFlip => {
                let pos = rng.below(len as u64) as usize;
                bytes[pos] ^= 1 << rng.below(8);
            }
            Mutator::DuplicateRecord => {
                let spans = record_spans(&bytes);
                if spans.is_empty() {
                    bytes.truncate(len / 2);
                } else {
                    let span = spans[rng.below(spans.len() as u64) as usize].clone();
                    let copy = bytes[span.clone()].to_vec();
                    let mut out = Vec::with_capacity(len + copy.len());
                    out.extend_from_slice(&bytes[..span.end]);
                    out.extend_from_slice(&copy);
                    out.extend_from_slice(&bytes[span.end..]);
                    bytes = out;
                }
            }
            Mutator::ReorderRecords => {
                let spans = record_spans(&bytes);
                if spans.len() < 2 {
                    bytes.truncate(len / 2);
                } else {
                    let i = rng.below(spans.len() as u64 - 1) as usize;
                    let j = i + 1 + rng.below((spans.len() - 1 - i) as u64) as usize;
                    let (a, b) = (spans[i].clone(), spans[j].clone());
                    let mut out = Vec::with_capacity(len);
                    out.extend_from_slice(&bytes[..a.start]);
                    out.extend_from_slice(&bytes[b.clone()]);
                    out.extend_from_slice(&bytes[a.end..b.start]);
                    out.extend_from_slice(&bytes[a.clone()]);
                    out.extend_from_slice(&bytes[b.end..]);
                    bytes = out;
                }
            }
            Mutator::ZeroFill => {
                let start = rng.below(len as u64) as usize;
                let span = rng.below((len - start).min(64) as u64) as usize + 1;
                bytes[start..start + span].fill(0);
            }
        }
        bytes
    }
}

/// Byte ranges of the complete frame records in `buf` (each including
/// its length prefix and checksum trailer). Tolerant: stops at the
/// first structurally incomplete record.
fn record_spans(buf: &[u8]) -> Vec<Range<usize>> {
    let mut spans = Vec::new();
    let mut off = frame::HEADER_LEN;
    while off + frame::RECORD_OVERHEAD <= buf.len() {
        let len =
            u32::from_le_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]]) as usize;
        let Some(end) = off.checked_add(frame::RECORD_OVERHEAD + len) else { break };
        if end > buf.len() {
            break;
        }
        spans.push(off..end);
        off = end;
    }
    spans
}

/// Derives a job's RNG seed from its stable identity so fuzz streams
/// are independent of scheduling and submission order.
pub fn job_seed(parts: &[&str]) -> u64 {
    let mut fp = Fingerprint::new();
    for part in parts {
        fp.field("part", part.as_bytes());
    }
    fp.digest()
}

/// Which serialized log a fuzz case damages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Target {
    Chunks,
    Inputs,
    Order,
}

impl Target {
    fn label(self) -> &'static str {
        match self {
            Target::Chunks => "chunk",
            Target::Inputs => "input",
            Target::Order => "order",
        }
    }
}

/// What the clean (unmutated) execution produced — the reference every
/// salvaged prefix is checked against.
struct CleanBaseline {
    console: Vec<u8>,
    instructions: u64,
    chunks: usize,
}

/// Per-case verdict: how the mutated bytes were handled (all contract
/// violations are reported as errors, not verdicts).
struct CaseOutcome {
    /// Strict decode returned a structured error.
    rejected: bool,
    /// Fraction of the salvaged timeline that replayed (0 when the
    /// replay could not start).
    salvaged_fraction: f64,
}

/// An intact [`SalvagedPackets`] for the log that was *not* mutated.
fn clean_chunk_salvage() -> SalvagedPackets {
    SalvagedPackets { packets: Vec::new(), expected: None, bytes_dropped: 0, corruption: None }
}

/// An intact [`InputSalvage`] for the log that was *not* mutated.
fn clean_input_salvage() -> InputSalvage {
    InputSalvage {
        expected_events: None,
        expected_threads: None,
        bytes_dropped: 0,
        corruption: None,
    }
}

/// Runs one fuzz case: strict-decodes the mutated bytes, then replays
/// the salvaged recording and checks the prefix contract.
///
/// # Errors
///
/// Any contract violation — a salvaged replay whose console is not a
/// prefix of the clean run's, counters exceeding the clean run's, an
/// internally inconsistent prefix, strict decode disagreeing with
/// salvage on a framed-routed buffer, or an accepted mutant whose full
/// replay neither verifies exactly nor errors structurally — is an
/// error. Panics inside decode or replay propagate and fail the
/// harness, which is the "never panics" half of the contract.
/// Runs one fuzz case against the `order.qrp` sidecar: strict decode
/// must reject or accept structurally, salvage must recover a clean
/// *prefix* of the recorded edge set, and an ordered replay under the
/// (possibly weaker) salvaged constraints must either verify exactly or
/// refuse with a structured error — never panic, never silently
/// diverge.
fn check_order_case(
    program: &Program,
    recording: &Recording,
    mutated: &[u8],
    original: &[u8],
) -> Result<CaseOutcome> {
    let violation = |detail: String| QrError::Execution { detail };
    let clean = recording.order.as_ref().expect("order campaign needs a partial-order recording");

    // Strict decode: must fail structurally or succeed — panics abort.
    let strict = OrderLog::from_bytes(mutated);
    let rejected = strict.is_err();

    // Salvage: never fails, and strict/salvage verdicts always agree
    // (the order log has no legacy routing).
    let (salvaged, info) = OrderLog::salvage_from_bytes(mutated);
    if rejected != info.corruption.is_some() {
        return Err(violation(format!(
            "strict decode ({}) and salvage ({}) disagree",
            if rejected { "rejected" } else { "accepted" },
            if info.corruption.is_some() { "corrupt" } else { "intact" },
        )));
    }

    // Prefix contract: salvage may only drop edges from the tail, never
    // invent or reorder them, and a surviving header matches the clean
    // thread map exactly.
    if !clean.edges().starts_with(salvaged.edges()) {
        return Err(violation(format!(
            "salvaged {} edge(s) are not a prefix of the clean {}",
            salvaged.edges().len(),
            clean.edges().len()
        )));
    }
    if !salvaged.threads().is_empty() && salvaged.threads() != clean.threads() {
        return Err(violation("salvaged thread map differs from the clean header".into()));
    }
    if !rejected && mutated == original && salvaged.edges() != clean.edges() {
        return Err(violation("no-op mutation lost edges".into()));
    }

    // Replay contract: ordered replay under the salvaged constraint set
    // either reproduces the recorded outcome exactly or errors
    // structurally (a dropped binding edge surfaces as a divergence).
    let mut damaged = recording.clone();
    damaged.order = Some(salvaged.clone());
    let replayed_exact =
        match qr_replay::replay_ordered(program, &damaged, 2).map(|o| o.verify_against(recording)) {
            Ok(Ok(())) => true,
            Ok(Err(_)) | Err(_) => false,
        };
    if !rejected && mutated == original && !replayed_exact {
        return Err(violation("no-op mutation did not replay exactly".into()));
    }

    let salvaged_fraction = if clean.edges().is_empty() {
        1.0
    } else {
        salvaged.edges().len() as f64 / clean.edges().len() as f64
    };
    Ok(CaseOutcome { rejected, salvaged_fraction })
}

fn check_case(
    program: &Program,
    recording: &Recording,
    clean: &CleanBaseline,
    target: Target,
    mutated: &[u8],
    original: &[u8],
) -> Result<CaseOutcome> {
    if target == Target::Order {
        return check_order_case(program, recording, mutated, original);
    }
    let target_chunks = target == Target::Chunks;
    let violation = |detail: String| QrError::Execution { detail };

    // Strict decode: must fail structurally or succeed — panics abort.
    let (strict_chunks, strict_inputs) = if target_chunks {
        (Some(ChunkLog::from_bytes(mutated)), None)
    } else {
        (None, Some(InputLog::from_bytes(mutated)))
    };
    let rejected = strict_chunks.as_ref().map_or(false, |r| r.is_err())
        || strict_inputs.as_ref().map_or(false, |r| r.is_err());

    // A mutation that destroys the frame magic can make the buffer look
    // like a pre-framing legacy log, sending strict decode down a
    // different path than the (framed-only) salvage scanner; the two
    // verdicts are only required to agree when both saw a framed buffer.
    let routed_legacy = if target_chunks {
        matches!(mutated.first(), Some(0..=2))
    } else {
        !frame::is_framed(mutated)
    };

    // Salvage path: substitute the mutated log, replay the prefix.
    let mut damaged = recording.clone();
    let recovery = if target_chunks {
        let (chunks, info) = ChunkLog::salvage_from_bytes(mutated);
        damaged.chunks = chunks;
        RecoveryInfo { chunks: info, inputs: clean_input_salvage(), order: None }
    } else {
        let (inputs, info) = InputLog::salvage_from_bytes(mutated);
        damaged.inputs = inputs;
        RecoveryInfo { chunks: clean_chunk_salvage(), inputs: info, order: None }
    };
    let flagged = recovery.chunks.corruption.is_some() || recovery.inputs.corruption.is_some();
    if !routed_legacy && rejected != flagged {
        return Err(violation(format!(
            "strict decode ({}) and salvage ({}) disagree",
            if rejected { "rejected" } else { "accepted" },
            if flagged { "corrupt" } else { "intact" },
        )));
    }

    // Whatever strict decode *accepted* must not mis-replay: a full
    // verified replay of the accepted content either errors structurally
    // or reproduces the clean outcome exactly (benign mutations like
    // swapped same-timestamp records, and legacy misroutes that happen
    // to parse, both land here).
    if !rejected && mutated != original {
        let mut accepted = recording.clone();
        if let Some(Ok(chunks)) = strict_chunks {
            accepted.chunks = chunks;
        }
        if let Some(Ok(inputs)) = strict_inputs {
            accepted.inputs = inputs;
        }
        // Ok here means the replay reproduced the recorded fingerprint,
        // console and exit codes; Err is a structured rejection at
        // replay time. Both satisfy the contract — only panics, which
        // abort the harness, violate it.
        drop(qr_replay::replay_and_verify(program, &accepted));
    }

    let report = qr_replay::salvage_replay(program, &damaged, &recovery);
    if !clean.console.starts_with(&report.console) {
        return Err(violation(format!(
            "salvaged console ({} bytes) is not a prefix of the clean console ({} bytes)",
            report.console.len(),
            clean.console.len()
        )));
    }
    if report.instructions > clean.instructions {
        return Err(violation(format!(
            "salvaged replay ran {} instructions, clean run had {}",
            report.instructions, clean.instructions
        )));
    }
    if report.chunks_replayed > clean.chunks {
        return Err(violation(format!(
            "salvaged replay consumed {} chunks, clean log had {}",
            report.chunks_replayed, clean.chunks
        )));
    }
    if report.fingerprint.is_some() && !report.fingerprint_consistent {
        return Err(violation("salvaged prefix fingerprint is not reproducible".into()));
    }
    if !rejected && mutated == original && !report.is_complete() {
        return Err(violation(format!(
            "no-op mutation did not replay completely: {}",
            report.summary()
        )));
    }

    let salvaged_fraction = if report.timeline_len == 0 {
        0.0
    } else {
        report.events_replayed as f64 / report.timeline_len as f64
    };
    Ok(CaseOutcome { rejected, salvaged_fraction })
}

/// One R1 job: records `spec` once, then runs `cases` deterministic
/// mutations of one of its serialized logs through [`check_case`].
///
/// Returns one table row: workload, encoding, mutator, case count, how
/// many mutants the strict decoder rejected vs accepted, and the mean
/// fraction of the salvaged timeline that replayed (also the job's
/// footer statistic).
///
/// # Errors
///
/// Fails on the first contract violation, naming the case index and
/// seed so the exact mutant can be replayed.
pub fn fuzz_job(
    cache: &BuildCache,
    spec: &WorkloadSpec,
    encoding: Encoding,
    mutator: Mutator,
    cases: usize,
) -> Result<JobOutput> {
    let threads = 2;
    let program = cache.program(spec, threads, Scale::Test)?;
    // Record in partial-order mode so the campaign covers all three
    // serialized logs; the chunk and input bytes are unaffected by the
    // mode (the equivalence battery pins that).
    let mut cfg = full_cfg(threads);
    cfg.order = OrderMode::PartialOrder;
    let recording = record_workload_with(cache, spec, threads, Scale::Test, cfg)?;
    let clean = CleanBaseline {
        console: recording.console.clone(),
        instructions: recording.instructions,
        chunks: recording.chunks.len(),
    };
    let chunk_bytes = recording.chunks.to_bytes(encoding);
    let input_bytes = recording.inputs.to_bytes();
    let order_bytes = recording.order.as_ref().expect("partial-order recording").to_bytes();

    let seed = job_seed(&["r1", spec.name, encoding.name(), mutator.name()]);
    let mut rng = SplitMix64::new(seed);
    let mut rejected = 0usize;
    let mut fraction_sum = 0.0f64;
    for case in 0..cases {
        let target = match rng.below(3) {
            0 => Target::Chunks,
            1 => Target::Inputs,
            _ => Target::Order,
        };
        let original = match target {
            Target::Chunks => &chunk_bytes,
            Target::Inputs => &input_bytes,
            Target::Order => &order_bytes,
        };
        let mutated = mutator.apply(original, &mut rng);
        let outcome = check_case(&program, &recording, &clean, target, &mutated, original)
            .map_err(|e| QrError::Execution {
                detail: format!(
                    "{}/{}/{} case {case}/{cases} (seed {seed:#018x}, {} log): {e}",
                    spec.name,
                    encoding.name(),
                    mutator.name(),
                    target.label(),
                ),
            })?;
        rejected += outcome.rejected as usize;
        fraction_sum += outcome.salvaged_fraction;
    }
    let mean_fraction = if cases == 0 { 0.0 } else { fraction_sum / cases as f64 };
    Ok(JobOutput::row([
        spec.name.to_string(),
        encoding.name().to_string(),
        mutator.name().to_string(),
        cases.to_string(),
        rejected.to_string(),
        (cases - rejected).to_string(),
        format!("{:.1}%", 100.0 * mean_fraction),
    ])
    .with_stat(mean_fraction))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qr_common::frame::{PayloadKind, Writer};

    fn container(records: &[&[u8]]) -> Vec<u8> {
        let mut w = Writer::new(PayloadKind::ChunkLog);
        for r in records {
            w.record(r);
        }
        w.finish()
    }

    #[test]
    fn record_spans_tile_the_container_exactly() {
        let buf = container(&[b"header", b"alpha", b"", b"a-longer-record"]);
        let spans = record_spans(&buf);
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[0].start, frame::HEADER_LEN);
        for pair in spans.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
        assert_eq!(spans.last().unwrap().end, buf.len());
        assert_eq!(spans[1].len(), frame::RECORD_OVERHEAD + 5);
    }

    #[test]
    fn mutators_are_deterministic() {
        let buf = container(&[b"header", b"payload-one", b"payload-two"]);
        for m in Mutator::ALL {
            let mut a = SplitMix64::new(7);
            let mut b = SplitMix64::new(7);
            assert_eq!(m.apply(&buf, &mut a), m.apply(&buf, &mut b), "{}", m.name());
        }
    }

    #[test]
    fn mutators_have_their_advertised_shape() {
        let buf = container(&[b"header", b"payload-one", b"payload-two"]);
        let mut rng = SplitMix64::new(99);
        for _ in 0..200 {
            let t = Mutator::Truncate.apply(&buf, &mut rng);
            assert!(t.len() < buf.len());

            let f = Mutator::BitFlip.apply(&buf, &mut rng);
            assert_eq!(f.len(), buf.len());
            let flipped: u32 =
                f.iter().zip(&buf).map(|(a, b)| (a ^ b).count_ones()).sum();
            assert_eq!(flipped, 1);

            let d = Mutator::DuplicateRecord.apply(&buf, &mut rng);
            assert!(d.len() > buf.len());

            let r = Mutator::ReorderRecords.apply(&buf, &mut rng);
            assert_eq!(r.len(), buf.len());

            let z = Mutator::ZeroFill.apply(&buf, &mut rng);
            assert_eq!(z.len(), buf.len());
        }
    }

    #[test]
    fn reorder_swaps_whole_records() {
        let buf = container(&[b"header", b"payload-one", b"payload-two"]);
        let spans = record_spans(&buf);
        // Wait for a draw that swaps the last two records and check the
        // swap is exact (records 1 and 2 have equal lengths here).
        let mut rng = SplitMix64::new(3);
        loop {
            let out = Mutator::ReorderRecords.apply(&buf, &mut rng);
            if out != buf && out[spans[0].clone()] == buf[spans[0].clone()] {
                assert_eq!(out.len(), buf.len());
                assert_eq!(out[spans[0].clone()], buf[spans[0].clone()]);
                assert_eq!(out[spans[1].clone()], buf[spans[2].clone()]);
                assert_eq!(out[spans[2].clone()], buf[spans[1].clone()]);
                break;
            }
        }
    }

    #[test]
    fn job_seed_is_stable_and_identity_sensitive() {
        let a = job_seed(&["r1", "fft", "delta", "bit-flip"]);
        assert_eq!(a, job_seed(&["r1", "fft", "delta", "bit-flip"]));
        assert_ne!(a, job_seed(&["r1", "fft", "delta", "truncate"]));
        assert_ne!(a, job_seed(&["r1", "fft", "deltab", "it-flip"]));
    }

    #[test]
    fn fuzz_job_runs_clean_on_a_small_budget() {
        let cache = BuildCache::new();
        let spec = qr_workloads::suite::find("fft").expect("suite member");
        let out = fuzz_job(&cache, &spec, Encoding::Delta, Mutator::Truncate, 20)
            .expect("contract holds");
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0][3], "20");
    }
}
