//! CLI contract of the `repro` binary: bad invocations fail fast with a
//! nonzero exit and a usage hint, before any experiment work starts.

use std::process::Command;

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro")).args(args).output().expect("spawn repro")
}

#[test]
fn unknown_experiment_id_exits_nonzero_and_lists_known_ids() {
    let out = repro(&["zz9"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown experiment"), "{err}");
    assert!(err.contains("r1"), "known-id list includes r1: {err}");
}

#[test]
fn bad_flags_exit_nonzero() {
    for args in [
        &["--bogus"][..],
        &["r1", "--jobs"][..],
        &["r1", "--jobs", "0"][..],
        &["r1", "--jobs", "many"][..],
        &["r1", "--fuzz-iters"][..],
        &["r1", "--fuzz-iters", "0"][..],
        &["r1", "--fuzz-iters", "lots"][..],
    ] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
        assert!(!out.stderr.is_empty(), "diagnostic printed for {args:?}");
    }
}
