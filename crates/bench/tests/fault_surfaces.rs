//! The R1 robustness contract, extended to the two new decode
//! surfaces this service added: the `quickrecd` wire protocol and the
//! store's block-compressed logs. Every mutated input must decode to
//! either a success or a structured [`QrError`] — never a panic — and
//! block salvage must always hand back a *prefix* of the original
//! uncompressed log.

use qr_bench::fault::{job_seed, Mutator};
use qr_common::{QrError, SplitMix64};
use qr_server::proto::{self, Request, Response};
use quickrec_core::{Encoding, OrderMode};
use std::io::Cursor;

const CASES_PER_SURFACE: usize = 400;

/// Clean wire messages covering every request and response shape.
fn wire_corpus() -> Vec<Vec<u8>> {
    let requests = [
        Request::Ping,
        Request::SubmitWorkload {
            name: "fft".into(),
            workload: "fft".into(),
            threads: 4,
            scale: qr_workloads::Scale::Small,
            encoding: Encoding::Delta,
            order: OrderMode::TotalOrder,
        },
        Request::SubmitProgram {
            name: "prog".into(),
            source: ".entry main\n.text\nmain: movi r0, 1\nsyscall\n".into(),
            cores: 2,
            encoding: Encoding::Packed,
            order: OrderMode::TotalOrder,
        },
        Request::Jobs,
        Request::Stats,
        Request::Fetch { id: 7 },
        Request::Replay { id: 7 },
        Request::Verify { id: 7 },
        Request::Races { id: 7 },
        Request::Shutdown,
    ];
    let responses = [
        Response::Pong,
        Response::Submitted { id: 42 },
        Response::Busy { queued: 3 },
        Response::JobList(vec![proto::JobInfo {
            id: 1,
            name: "fft".into(),
            workload: "fft/2t".into(),
            kind: "record".into(),
            state: proto::JobState::Failed("checksum mismatch".into()),
            fingerprint: 0xdead_beef,
        }]),
        Response::Stats(proto::StatsReport {
            accepted: 4,
            completed: 3,
            sessions: vec![proto::SessionStats { id: 1, records: 1, ..Default::default() }],
            ..Default::default()
        }),
        Response::Fetched {
            files: vec![("meta.qrm".into(), vec![0xAB; 60])],
            fingerprint: 99,
        },
        Response::Queued,
        Response::ShuttingDown,
        Response::Error { message: "no such session".into() },
    ];
    requests
        .iter()
        .map(proto::encode_request)
        .chain(responses.iter().map(proto::encode_response))
        .collect()
}

#[test]
fn mutated_wire_payloads_decode_to_structured_errors_never_panics() {
    for (ci, clean) in wire_corpus().iter().enumerate() {
        // Decoders must accept their own clean output.
        let as_req = proto::decode_request(clean);
        let as_resp = proto::decode_response(clean);
        assert!(
            as_req.is_ok() || as_resp.is_ok(),
            "corpus entry {ci} does not decode clean"
        );
        for mutator in Mutator::ALL {
            let mut rng =
                SplitMix64::new(job_seed(&["wire", &ci.to_string(), mutator.name()]));
            for _ in 0..CASES_PER_SURFACE / Mutator::ALL.len() {
                let mutated = mutator.apply(clean, &mut rng);
                // Either decode may succeed (the mutation can be a
                // no-op or still-valid payload); a failure must be a
                // structured error, which the Result type guarantees —
                // reaching the next iteration means no panic.
                let _ = proto::decode_request(&mutated);
                let _ = proto::decode_response(&mutated);
            }
        }
    }
}

#[test]
fn mutated_wire_streams_read_to_structured_errors_never_panics() {
    // A framed stream: header + several length-prefixed messages.
    let mut clean = Vec::new();
    proto::write_stream_header(&mut clean).expect("header");
    for message in wire_corpus() {
        proto::write_message(&mut clean, &message).expect("message");
    }

    for mutator in Mutator::ALL {
        let mut rng = SplitMix64::new(job_seed(&["wire-stream", mutator.name()]));
        for _ in 0..CASES_PER_SURFACE {
            let mutated = mutator.apply(&clean, &mut rng);
            let mut cursor = Cursor::new(mutated.as_slice());
            if proto::read_stream_header(&mut cursor).is_err() {
                continue;
            }
            // Drain messages until clean EOF or the first structured
            // fault; decodes along the way must not panic either.
            loop {
                match proto::read_message(&mut cursor) {
                    Ok(Some(payload)) => {
                        let _ = proto::decode_request(&payload);
                        let _ = proto::decode_response(&payload);
                    }
                    Ok(None) => break,
                    Err(e) => {
                        assert!(
                            matches!(e, QrError::Corrupt { .. } | QrError::Execution { .. }),
                            "stream fault must be structured: {e}"
                        );
                        break;
                    }
                }
            }
        }
    }
}

#[test]
fn mutated_compressed_blocks_decode_or_salvage_a_prefix_never_panic() {
    // Structured-but-compressible inputs of several sizes, spanning
    // multiple 32 KiB blocks at the top end.
    let corpora: Vec<Vec<u8>> = [512usize, 4096, 100_000]
        .iter()
        .map(|&n| {
            let mut rng = SplitMix64::new(job_seed(&["block-corpus", &n.to_string()]));
            (0..n)
                .map(|i| {
                    if rng.chance(7, 10) {
                        (i % 251) as u8
                    } else {
                        (rng.next_u64() & 0xFF) as u8
                    }
                })
                .collect()
        })
        .collect();

    for (ci, original) in corpora.iter().enumerate() {
        let compressed = qr_store::block::compress(original);
        assert_eq!(
            qr_store::block::decompress(&compressed).expect("clean decompress"),
            *original
        );
        for mutator in Mutator::ALL {
            let mut rng =
                SplitMix64::new(job_seed(&["block", &ci.to_string(), mutator.name()]));
            for _ in 0..CASES_PER_SURFACE / Mutator::ALL.len() {
                let mutated = mutator.apply(&compressed, &mut rng);

                // Strict decode: success (mutation hit slack) must
                // reproduce the original; failure must be structured.
                match qr_store::block::decompress(&mutated) {
                    Ok(bytes) => assert_eq!(bytes, *original, "strict decode drifted"),
                    Err(e) => assert!(
                        matches!(e, QrError::Corrupt { .. }),
                        "block fault must be Corrupt: {e}"
                    ),
                }

                // Salvage never fails and always returns a prefix of
                // the original bytes — the guarantee replay-side
                // salvage builds on.
                let salvage = qr_store::block::salvage(&mutated);
                assert!(
                    salvage.bytes.len() <= original.len()
                        && salvage.bytes == original[..salvage.bytes.len()],
                    "salvage must yield a clean prefix ({} bytes of {})",
                    salvage.bytes.len(),
                    original.len()
                );
                assert!(salvage.blocks_recovered <= salvage.blocks_total);
            }
        }
    }
}
