//! The determinism contract of the parallel experiment executor: for any
//! experiment selection, parallel execution renders the exact bytes the
//! serial fallback renders.

use qr_bench::experiments::render_experiments;
use qr_bench::runner::ExecMode;

/// Renders the given experiments, asserting success.
fn render(ids: &[&str], mode: ExecMode) -> String {
    let (out, failure) = render_experiments(ids, mode);
    if let Some((exp, e)) = failure {
        panic!("experiment {exp} failed under {mode:?}: {e}");
    }
    out
}

#[test]
fn parallel_output_is_byte_identical_to_serial() {
    // Two full experiment tables (the CBUF and scheduling-quantum
    // ablations): cheap enough for a debug-mode test, and their job
    // lists exercise multi-workload fan-out, the shared build cache,
    // and footer-free rendering.
    let ids = ["a2", "a6"];
    let serial = render(&ids, ExecMode::Serial);
    for workers in [2, 4, 16] {
        let parallel = render(&ids, ExecMode::Parallel { workers });
        assert_eq!(serial, parallel, "{workers}-worker output diverged from serial");
    }
}

#[test]
fn fault_injection_report_is_mode_invariant() {
    // R1's random streams are keyed per job (workload, encoding,
    // mutator), never shared, so the fuzz campaign must render the same
    // bytes however the scheduler interleaves its 60 jobs.
    qr_bench::fault::set_fuzz_cases(30);
    let ids = ["r1"];
    let serial = render(&ids, ExecMode::Serial);
    for workers in [2, 8] {
        let parallel = render(&ids, ExecMode::Parallel { workers });
        assert_eq!(serial, parallel, "{workers}-worker R1 output diverged from serial");
    }
    assert!(serial.contains("mean salvaged-timeline fraction"), "{serial}");
}

#[test]
fn rendered_report_has_the_expected_shape() {
    let out = render(&["a6"], ExecMode::Parallel { workers: 4 });
    assert!(out.starts_with("\n=== A6: "), "heading present: {out:?}");
    assert!(out.contains("quantum"), "table header present");
    // One line per quantum setting.
    assert_eq!(out.matches("PASS").count(), 4);
}
