//! Fast path == slow path: the tuned hot loops (slice-by-8 CRC-32, the
//! hash-chain LZ matcher, wide-copy decompression) must be byte-for-byte
//! indistinguishable from their scalar reference implementations on every
//! artifact the workload suite can produce — and the byte-level codecs
//! must stay panic-free and prefix-honest when those artifacts are
//! damaged. `repro e13` runs the same differential gate before it prints
//! a single throughput number; this battery is the debug-mode tier-1
//! version of that gate.

use qr_bench::runner::BuildCache;
use qr_bench::{full_cfg, record_workload_with};
use qr_common::{crc32, SplitMix64};
use qr_store::{block, lz};
use qr_workloads::{suite, Scale};
use quickrec_core::Encoding;

/// Records every suite workload once and serializes it under every
/// encoding, yielding one labelled byte corpus per recording artifact
/// (metadata container, chunk log, input log, footprint sidecar).
fn suite_artifacts() -> Vec<(String, Vec<u8>)> {
    let cache = BuildCache::new();
    let threads = 2;
    let mut artifacts = Vec::new();
    for spec in suite() {
        let r = record_workload_with(&cache, &spec, threads, Scale::Small, full_cfg(threads))
            .unwrap_or_else(|e| panic!("recording {} failed: {e}", spec.name));
        for encoding in Encoding::ALL {
            for (file, bytes) in r.to_parts(encoding).files() {
                artifacts.push((format!("{}/{encoding:?}/{file}", spec.name), bytes.to_vec()));
            }
        }
    }
    artifacts
}

#[test]
fn fast_paths_match_reference_on_every_suite_artifact() {
    let artifacts = suite_artifacts();
    // 11 workloads x 3 encodings x at least 3 files each.
    assert!(artifacts.len() >= 99, "suite corpus unexpectedly small: {}", artifacts.len());
    for (label, bytes) in &artifacts {
        // CRC-32: the slice-by-8 kernel is a pure speedup, never a new
        // polynomial.
        assert_eq!(
            crc32::checksum(bytes),
            crc32::checksum_scalar(bytes),
            "slice-by-8 CRC drifted from the bitwise reference on {label}"
        );

        // LZ: both matchers must round-trip through both copy loops.
        for (matcher, packed) in
            [("hash-chain", lz::compress(bytes)), ("greedy", lz::compress_greedy(bytes))]
        {
            let wide = lz::decompress(&packed, bytes.len())
                .unwrap_or_else(|e| panic!("{matcher}/{label}: wide decompress failed: {e}"));
            let scalar = lz::decompress_scalar(&packed, bytes.len())
                .unwrap_or_else(|e| panic!("{matcher}/{label}: scalar decompress failed: {e}"));
            assert_eq!(&wide, bytes, "{matcher} wide round-trip drifted on {label}");
            assert_eq!(&scalar, bytes, "{matcher} scalar round-trip drifted on {label}");
        }

        // Block container: the full framed/CRC'd/indexed path.
        let container = block::compress(bytes);
        let restored = block::decompress(&container)
            .unwrap_or_else(|e| panic!("{label}: block round-trip failed: {e}"));
        assert_eq!(&restored, bytes, "block container round-trip drifted on {label}");
    }
}

#[test]
fn recordings_are_bit_reproducible_across_identical_runs() {
    // The codec rewrite must not have introduced any iteration-order or
    // timing dependence upstream: two identical recordings serialize to
    // identical bytes under every encoding.
    let cache = BuildCache::new();
    for name in ["fft", "water"] {
        let spec = qr_workloads::suite::find(name).expect("suite member");
        let a = record_workload_with(&cache, &spec, 2, Scale::Small, full_cfg(2)).unwrap();
        let b = record_workload_with(&cache, &spec, 2, Scale::Small, full_cfg(2)).unwrap();
        assert_eq!(a.fingerprint, b.fingerprint, "{name}: outcome fingerprint drifted");
        for encoding in Encoding::ALL {
            let pa = a.to_parts(encoding);
            let pb = b.to_parts(encoding);
            for ((file, bytes_a), (_, bytes_b)) in pa.files().iter().zip(pb.files().iter()) {
                assert_eq!(bytes_a, bytes_b, "{name}/{encoding:?}/{file}: bytes drifted");
            }
        }
    }
}

#[test]
fn mutated_containers_never_panic_and_salvage_stays_prefix_honest() {
    // 2000 SplitMix64-driven mutations of a real compressed container:
    // decompress must fail structurally (no panics, no silently wrong
    // bytes) and salvage must only ever return a prefix of the original.
    let mut rng = SplitMix64::new(0xe13_d1ff);
    let mut data = Vec::new();
    for i in 0u64..4096 {
        qr_common::varint::write_u64(&mut data, rng.next_u64() >> (i % 56));
        if i % 9 == 0 {
            data.extend_from_slice(b"chunk-boundary");
        }
    }
    let container = block::compress(&data);
    for case in 0..2000 {
        let mut buf = container.clone();
        match case % 3 {
            0 => {
                // Bit flip anywhere.
                let at = rng.below(buf.len() as u64) as usize;
                buf[at] ^= 1 << rng.below(8);
            }
            1 => {
                // Torn write: truncate to a random prefix.
                buf.truncate(rng.below(buf.len() as u64 + 1) as usize);
            }
            _ => {
                // Overwrite a random short span with noise.
                let at = rng.below(buf.len() as u64) as usize;
                let span = (rng.below(16) as usize + 1).min(buf.len() - at);
                for b in &mut buf[at..at + span] {
                    *b = rng.next_u64() as u8;
                }
            }
        }
        if let Ok(restored) = block::decompress(&buf) {
            // A mutation may land in dead space (padding, an unread
            // byte of a varint's encoding is impossible now that
            // overlong forms are rejected — but the flip may be a
            // no-op on an identical byte). Accepted output must be
            // exactly the original.
            assert_eq!(restored, data, "case {case}: mutated container decoded to wrong bytes");
        }
        let s = block::salvage(&buf);
        assert!(
            s.blocks_recovered <= s.blocks_total.max(s.blocks_recovered),
            "case {case}: salvage counters inconsistent"
        );
        assert!(
            data.starts_with(&s.bytes),
            "case {case}: salvage returned {} bytes that are not a prefix of the original",
            s.bytes.len()
        );
    }
}
