//! `qr-obs` is observational only: the experiment harness must render
//! byte-identical reports whether or not the metrics registry and the
//! trace journal are recording. A report that shifts when observability
//! is on would poison every cross-run comparison in the paper tables.

use qr_bench::experiments::render_experiments;
use qr_bench::runner::ExecMode;

/// Renders the given experiments serially, asserting success.
fn render(ids: &[&str]) -> String {
    let (out, failure) = render_experiments(ids, ExecMode::Serial);
    if let Some((exp, e)) = failure {
        panic!("experiment {exp} failed: {e}");
    }
    out
}

#[test]
fn harness_output_is_byte_identical_with_observability_on_and_off() {
    // One table that records nothing (the platform-parameters table) and
    // one that drives real recordings through the instrumented recorder
    // and chunk-log paths — cheap enough for a debug-mode test.
    let ids = ["t1", "a2"];
    let was_enabled = qr_obs::enabled();
    let journal = qr_obs::trace::global();

    qr_obs::set_enabled(true);
    journal.set_enabled(true);
    let observed = render(&ids);
    journal.set_enabled(false);
    journal.drain();
    qr_obs::set_enabled(false);
    let blind = render(&ids);
    qr_obs::set_enabled(was_enabled);

    assert_eq!(
        observed, blind,
        "experiment report changed with metrics and tracing enabled"
    );
}
