//! Machine-level determinism properties: identical machines stepped
//! identically stay identical, and a cloned (snapshotted) machine is a
//! perfect fork of the original.

use qr_common::{CoreId, SplitMix64, VirtAddr};
use qr_cpu::{CpuConfig, CpuContext, Machine, StepOutcome};
use qr_isa::{Asm, Reg};

/// A little self-contained program mixing ALU, memory and atomics.
fn program(seed: u32) -> qr_isa::Program {
    let mut a = Asm::new();
    a.data_word("buf", &[seed, seed ^ 0xffff, 3, 4]);
    a.movi_sym(Reg::R1, "buf");
    a.movi(Reg::R2, 40);
    a.label("loop");
    a.ld(Reg::R3, Reg::R1, 0);
    a.muli(Reg::R3, Reg::R3, 17);
    a.addi(Reg::R3, Reg::R3, 3);
    a.st(Reg::R1, 4, Reg::R3);
    a.movi(Reg::R4, 1);
    a.fetch_add(Reg::R5, Reg::R1, Reg::R4);
    a.addi(Reg::R2, Reg::R2, -1);
    a.bnez(Reg::R2, "loop");
    a.halt();
    a.finish().unwrap()
}

fn fresh(seed: u32) -> Machine {
    let mut m =
        Machine::new(program(seed), CpuConfig { num_cores: 1, ..CpuConfig::default() }).unwrap();
    let mut ctx = CpuContext::new(m.program().entry());
    ctx.set_reg(Reg::SP, 0x2000_0000);
    m.mem_mut().map_region(VirtAddr(0x2000_0000 - 0x1000), 0x1000).unwrap();
    m.core_mut(CoreId(0)).swap_context(Some(ctx));
    m
}

#[test]
fn identical_machines_step_identically() {
    let mut rng = SplitMix64::new(0xdede_0001);
    for _ in 0..16 {
        let seed = rng.next_u32();
        let steps = 1 + rng.below(199) as usize;
        let mut a = fresh(seed);
        let mut b = fresh(seed);
        for _ in 0..steps {
            let ra = a.step(CoreId(0));
            let rb = b.step(CoreId(0));
            assert_eq!(&ra, &rb);
            if matches!(ra.outcome, StepOutcome::Halt) {
                break;
            }
        }
        assert_eq!(a.core(CoreId(0)).cycles(), b.core(CoreId(0)).cycles());
    }
}

#[test]
fn cloned_machine_forks_perfectly() {
    let mut rng = SplitMix64::new(0xdede_0002);
    for _ in 0..16 {
        let seed = rng.next_u32();
        let split = 1 + rng.below(99) as usize;
        let mut original = fresh(seed);
        for _ in 0..split {
            if matches!(original.step(CoreId(0)).outcome, StepOutcome::Halt) {
                break;
            }
        }
        let mut fork = original.clone();
        // Both continue independently and stay in lockstep.
        for _ in 0..50 {
            let ro = original.step(CoreId(0));
            let rf = fork.step(CoreId(0));
            assert_eq!(&ro, &rf);
            if matches!(ro.outcome, StepOutcome::Halt) {
                break;
            }
        }
        // Memory contents agree exactly.
        let buf = original.program().symbol("buf").unwrap();
        let mut mo = [0u8; 16];
        let mut mf = [0u8; 16];
        original.mem().memory().read_bytes(buf, &mut mo).unwrap();
        fork.mem().memory().read_bytes(buf, &mut mf).unwrap();
        assert_eq!(mo, mf);
    }
}

#[test]
fn fork_divergence_does_not_leak_back() {
    let mut rng = SplitMix64::new(0xdede_0003);
    for _ in 0..16 {
        let seed = rng.next_u32();
        let mut original = fresh(seed);
        original.step(CoreId(0));
        let mut fork = original.clone();
        // Mutate the fork's memory; the original must be unaffected.
        let buf = original.program().symbol("buf").unwrap();
        fork.mem_mut().memory_mut().write_uint(buf, 4, 0xdead_beef).unwrap();
        let o = original.mem().memory().read_uint(buf, 4).unwrap();
        assert_ne!(o, 0xdead_beef);
    }
}
