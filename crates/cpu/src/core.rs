//! Per-core execution state.

use crate::context::CpuContext;

/// One simulated core: the context it is running (if any) plus local
/// accounting.
#[derive(Debug, Clone, Default)]
pub struct Core {
    context: Option<CpuContext>,
    /// Local cycle counter; the orchestrator steps the least-advanced
    /// core to approximate concurrent execution.
    cycles: u64,
    /// Instructions retired on this core (all contexts).
    retired: u64,
}

impl Core {
    /// Creates an idle core.
    pub fn new() -> Core {
        Core::default()
    }

    /// The running context, if any.
    pub fn context(&self) -> Option<&CpuContext> {
        self.context.as_ref()
    }

    /// Mutable access to the running context.
    pub fn context_mut(&mut self) -> Option<&mut CpuContext> {
        self.context.as_mut()
    }

    /// Installs a context, returning the previous one (context switch).
    pub fn swap_context(&mut self, new: Option<CpuContext>) -> Option<CpuContext> {
        std::mem::replace(&mut self.context, new)
    }

    /// Whether the core has nothing to run.
    pub fn is_idle(&self) -> bool {
        self.context.is_none()
    }

    /// Local cycle count.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Advances the local cycle count (stepping, stalls, idle waiting).
    pub fn add_cycles(&mut self, n: u64) {
        self.cycles += n;
    }

    /// Raises the local cycle count to at least `n` (a core leaving the
    /// idle pool re-enters time at "now", not in the past).
    pub fn advance_to(&mut self, n: u64) {
        self.cycles = self.cycles.max(n);
    }

    /// Instructions retired on this core.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Counts one retired instruction.
    pub fn count_retired(&mut self) {
        self.retired += 1;
    }

    /// Serializes the core (running context, cycle and retired counters)
    /// for checkpoint snapshots.
    pub(crate) fn save_state(&self, out: &mut Vec<u8>) {
        match &self.context {
            Some(ctx) => {
                out.push(1);
                ctx.save_state(out);
            }
            None => out.push(0),
        }
        qr_common::varint::write_u64(out, self.cycles);
        qr_common::varint::write_u64(out, self.retired);
    }

    /// Inverse of [`Core::save_state`].
    pub(crate) fn load_state(
        r: &mut qr_common::cursor::ByteReader<'_>,
    ) -> qr_common::Result<Core> {
        let context = match r.u8()? {
            0 => None,
            _ => Some(CpuContext::load_state(r)?),
        };
        let cycles = r.varint()?;
        let retired = r.varint()?;
        Ok(Core { context, cycles, retired })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qr_common::VirtAddr;

    #[test]
    fn swap_context_returns_previous() {
        let mut core = Core::new();
        assert!(core.is_idle());
        let old = core.swap_context(Some(CpuContext::new(VirtAddr(0x1000))));
        assert!(old.is_none());
        assert!(!core.is_idle());
        let prev = core.swap_context(None).unwrap();
        assert_eq!(prev.pc(), VirtAddr(0x1000));
        assert!(core.is_idle());
    }

    #[test]
    fn accounting_accumulates() {
        let mut core = Core::new();
        core.add_cycles(5);
        core.add_cycles(3);
        core.count_retired();
        assert_eq!(core.cycles(), 8);
        assert_eq!(core.retired(), 1);
    }
}
