//! Outcomes of stepping a core.

use qr_common::QrError;
use qr_isa::Reg;
use qr_mem::MemEvent;

/// Which nondeterministic-read instruction trapped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NondetKind {
    /// `rdtsc` — cycle-counter read.
    Rdtsc,
    /// `rdrand` — hardware random number.
    Rdrand,
}

/// What happened when a core stepped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOutcome {
    /// An ordinary instruction retired.
    Retired,
    /// A `syscall` retired; the kernel must service it (arguments are in
    /// the context's registers, the result goes in `R0`).
    Syscall,
    /// A nondeterministic read retired; the orchestrator must supply the
    /// value by writing `rd` before the core steps again. During
    /// recording the value is generated and logged; during replay it is
    /// injected from the log.
    Nondet {
        /// Which instruction.
        kind: NondetKind,
        /// Destination register awaiting the value.
        rd: Reg,
    },
    /// A `halt` retired; the context is finished.
    Halt,
    /// The instruction faulted (unmapped access, misalignment, division
    /// by zero, bad PC). The PC still points at the faulting instruction;
    /// the kernel kills or signals the thread.
    Fault(QrError),
    /// The core has no context to run.
    Idle,
}

/// Full result of one step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepResult {
    /// What happened.
    pub outcome: StepOutcome,
    /// Cycles the step consumed on this core.
    pub cycles: u64,
    /// Memory events the step produced, in order.
    pub events: Vec<MemEvent>,
}

impl StepResult {
    /// A step that retired normally with no memory traffic.
    pub fn retired(cycles: u64) -> StepResult {
        StepResult { outcome: StepOutcome::Retired, cycles, events: Vec::new() }
    }

    /// Whether an instruction actually retired (anything but `Idle` and
    /// `Fault` counts toward the chunk's instruction count).
    pub fn instruction_retired(&self) -> bool {
        !matches!(self.outcome, StepOutcome::Idle | StepOutcome::Fault(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retirement_classification() {
        assert!(StepResult::retired(1).instruction_retired());
        let halt = StepResult { outcome: StepOutcome::Halt, cycles: 1, events: vec![] };
        assert!(halt.instruction_retired(), "halt is a retired instruction");
        let idle = StepResult { outcome: StepOutcome::Idle, cycles: 1, events: vec![] };
        assert!(!idle.instruction_retired());
        let fault = StepResult {
            outcome: StepOutcome::Fault(QrError::Execution { detail: "x".into() }),
            cycles: 1,
            events: vec![],
        };
        assert!(!fault.instruction_retired());
    }
}
