//! The multicore machine and the PIA interpreter.

use crate::context::CpuContext;
use crate::core::Core;
use crate::step::{NondetKind, StepOutcome, StepResult};
use qr_common::{CoreId, QrError, Result, VirtAddr};
use qr_isa::instr::{AluOp, Instr};
use qr_isa::program::{Program, DATA_BASE, INSTR_BYTES};
use qr_isa::Reg;
use qr_mem::{Access, MemConfig, MemorySystem};

/// Machine-level configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuConfig {
    /// Number of cores (the QuickRec prototype had 4).
    pub num_cores: usize,
    /// Background store-buffer drain: one pending store drains every
    /// `drain_interval` retired instructions. Larger values increase TSO
    /// reordering (and RSW counts); fences, atomics and syscalls always
    /// drain fully.
    pub drain_interval: u64,
    /// Memory-hierarchy configuration.
    pub mem: MemConfig,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig { num_cores: 4, drain_interval: 4, mem: MemConfig::default() }
    }
}

impl CpuConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::InvalidConfig`] for zero cores or a zero drain
    /// interval, or an invalid memory configuration.
    pub fn validate(&self) -> Result<()> {
        if self.num_cores == 0 {
            return Err(QrError::InvalidConfig("num_cores must be nonzero".into()));
        }
        if self.drain_interval == 0 {
            return Err(QrError::InvalidConfig("drain_interval must be nonzero".into()));
        }
        self.mem.validate()
    }
}

/// A loaded multicore machine.
///
/// The machine is stepped one core at a time by an orchestrator; see the
/// crate docs for the trap-style protocol. Cloning snapshots the entire
/// machine state (contexts, cycles, memory hierarchy), which replay
/// checkpointing builds on.
#[derive(Debug, Clone)]
pub struct Machine {
    cfg: CpuConfig,
    program: Program,
    cores: Vec<Core>,
    mem: MemorySystem,
}

impl Machine {
    /// Creates a machine and loads the program image (data segment mapped
    /// and initialized; code is fetched from the program directly, as
    /// instruction fetch is not recorded).
    ///
    /// # Errors
    ///
    /// Returns configuration errors from [`CpuConfig::validate`].
    pub fn new(program: Program, cfg: CpuConfig) -> Result<Machine> {
        cfg.validate()?;
        let mut mem = MemorySystem::new(cfg.mem.clone(), cfg.num_cores)?;
        if !program.data().is_empty() {
            mem.map_region(VirtAddr(DATA_BASE), program.data().len() as u32)?;
            mem.memory_mut().write_bytes(VirtAddr(DATA_BASE), program.data())?;
        }
        Ok(Machine { cores: (0..cfg.num_cores).map(|_| Core::new()).collect(), program, mem, cfg })
    }

    /// The loaded program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The machine configuration.
    pub fn config(&self) -> &CpuConfig {
        &self.cfg
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// A core, by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn core(&self, id: CoreId) -> &Core {
        &self.cores[id.index()]
    }

    /// Mutable core access.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn core_mut(&mut self, id: CoreId) -> &mut Core {
        &mut self.cores[id.index()]
    }

    /// The memory system.
    pub fn mem(&self) -> &MemorySystem {
        &self.mem
    }

    /// Mutable memory-system access (kernel copies, region mapping).
    pub fn mem_mut(&mut self) -> &mut MemorySystem {
        &mut self.mem
    }

    /// The non-idle core with the smallest local cycle count — the next
    /// core to step under the default concurrency approximation.
    pub fn least_advanced_busy_core(&self) -> Option<CoreId> {
        self.cores
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_idle())
            .min_by_key(|(i, c)| (c.cycles(), *i))
            .map(|(i, _)| CoreId(i as u8))
    }

    /// Writes a register of the context running on `core` (used to inject
    /// nondeterministic values and syscall results).
    ///
    /// # Panics
    ///
    /// Panics if the core is idle — callers only inject immediately after
    /// a trap from that core.
    pub fn write_reg(&mut self, core: CoreId, r: Reg, value: u32) {
        self.cores[core.index()]
            .context_mut()
            .expect("write_reg on an idle core")
            .set_reg(r, value);
    }

    /// Reads a register of the context running on `core`.
    ///
    /// # Panics
    ///
    /// Panics if the core is idle.
    pub fn read_reg(&self, core: CoreId, r: Reg) -> u32 {
        self.cores[core.index()].context().expect("read_reg on an idle core").reg(r)
    }

    /// Fully drains a core's store buffer (chunk boundaries, syscall
    /// entry). Returns the drain's memory activity.
    ///
    /// # Errors
    ///
    /// Propagates memory faults (cannot occur for stores validated at
    /// issue).
    pub fn drain_store_buffer(&mut self, core: CoreId) -> Result<Access> {
        self.mem.drain_all(core)
    }

    /// Serializes the complete machine state (every core's context and
    /// counters plus the whole memory hierarchy) for checkpoint
    /// snapshots. The program and configuration are *not* serialized:
    /// restore with [`Machine::restore_state`] into a machine built from
    /// the same program and configuration.
    pub fn save_state(&self, out: &mut Vec<u8>) {
        qr_common::varint::write_u64(out, self.cores.len() as u64);
        for core in &self.cores {
            core.save_state(out);
        }
        self.mem.save_state(out);
    }

    /// Overwrites this machine's state from bytes produced by
    /// [`Machine::save_state`].
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Corrupt`] on truncated or implausible bytes, or
    /// a core-count mismatch with this machine's configuration; `self`
    /// may be partially overwritten on error and must be discarded.
    pub fn restore_state(&mut self, r: &mut qr_common::cursor::ByteReader<'_>) -> Result<()> {
        let cores = r.count(256)?;
        if cores != self.cores.len() {
            return Err(QrError::Corrupt {
                what: "checkpoint machine state".into(),
                offset: r.pos() as u64,
                detail: format!("snapshot has {cores} cores, machine has {}", self.cores.len()),
            });
        }
        for core in &mut self.cores {
            *core = Core::load_state(r)?;
        }
        self.mem.restore_state(r)
    }

    /// Steps one instruction on `core`.
    pub fn step(&mut self, core_id: CoreId) -> StepResult {
        let idx = core_id.index();
        if self.cores[idx].is_idle() {
            self.cores[idx].add_cycles(1);
            return StepResult { outcome: StepOutcome::Idle, cycles: 1, events: Vec::new() };
        }
        let pc = self.cores[idx].context().expect("busy core has context").pc();
        let Some(instr) = self.program.instr_at(pc) else {
            return StepResult {
                outcome: StepOutcome::Fault(QrError::Execution {
                    detail: format!("bad program counter {pc}"),
                }),
                cycles: 1,
                events: Vec::new(),
            };
        };
        let mut result = match self.execute(core_id, pc, instr) {
            Ok(r) => r,
            Err(fault) => StepResult {
                outcome: StepOutcome::Fault(fault),
                cycles: 1,
                events: Vec::new(),
            },
        };
        if result.instruction_retired() {
            self.cores[idx].count_retired();
            let thread_retired = {
                let ctx = self.cores[idx].context_mut().expect("busy core has context");
                ctx.count_retired();
                ctx.retired()
            };
            // Background store-buffer drain, keyed on the *context's*
            // retired count so drain points are a deterministic function
            // of the thread's instruction stream (replay reproduces them
            // even though threads migrate between cores).
            if thread_retired % self.cfg.drain_interval == 0 {
                match self.mem.drain_one(core_id) {
                    Ok(access) => {
                        result.cycles += access.cycles;
                        result.events.extend(access.events);
                    }
                    Err(fault) => result.outcome = StepOutcome::Fault(fault),
                }
            }
        }
        self.cores[idx].add_cycles(result.cycles);
        result
    }

    /// Executes one decoded instruction. Register/PC state is only
    /// committed after every fallible memory operation has succeeded, so
    /// a fault leaves the context at the faulting instruction.
    fn execute(&mut self, core: CoreId, pc: VirtAddr, instr: Instr) -> Result<StepResult> {
        let next_pc = pc.wrapping_add(INSTR_BYTES);
        fn ctx(cores: &[Core], core: CoreId) -> &CpuContext {
            cores[core.index()].context().expect("busy core has context")
        }
        let mut cycles = 1u64;
        let mut events = Vec::new();
        let mut outcome = StepOutcome::Retired;

        macro_rules! set {
            ($r:expr, $v:expr) => {
                self.cores[core.index()]
                    .context_mut()
                    .expect("busy core has context")
                    .set_reg($r, $v)
            };
        }
        macro_rules! setpc {
            ($v:expr) => {
                self.cores[core.index()]
                    .context_mut()
                    .expect("busy core has context")
                    .set_pc($v)
            };
        }

        match instr {
            Instr::Nop | Instr::Pause => {
                setpc!(next_pc);
            }
            Instr::Movi { rd, imm } => {
                set!(rd, imm);
                setpc!(next_pc);
            }
            Instr::Mov { rd, rs } => {
                let v = ctx(&self.cores, core).reg(rs);
                set!(rd, v);
                setpc!(next_pc);
            }
            Instr::Alu { op, rd, rs1, rs2 } => {
                let (a, b) = (ctx(&self.cores, core).reg(rs1), ctx(&self.cores, core).reg(rs2));
                let v = alu(op, a, b)?;
                set!(rd, v);
                setpc!(next_pc);
            }
            Instr::AluImm { op, rd, rs1, imm } => {
                let a = ctx(&self.cores, core).reg(rs1);
                let v = alu(op, a, imm)?;
                set!(rd, v);
                setpc!(next_pc);
            }
            Instr::Ld { rd, base, offset, width } => {
                let addr = VirtAddr(ctx(&self.cores, core).reg(base).wrapping_add(offset as u32));
                let access = self.mem.read(core, addr, width.bytes())?;
                cycles += access.cycles;
                events.extend(access.events);
                set!(rd, access.value);
                setpc!(next_pc);
            }
            Instr::St { src, base, offset, width } => {
                let addr = VirtAddr(ctx(&self.cores, core).reg(base).wrapping_add(offset as u32));
                let value = ctx(&self.cores, core).reg(src);
                let access = self.mem.write(core, addr, width.bytes(), value)?;
                cycles += access.cycles;
                events.extend(access.events);
                setpc!(next_pc);
            }
            Instr::Cas { rd, addr, src } => {
                let target = VirtAddr(ctx(&self.cores, core).reg(addr));
                let expected = ctx(&self.cores, core).reg(rd);
                let new = ctx(&self.cores, core).reg(src);
                let access = self
                    .mem
                    .atomic_rmw(core, target, |old| if old == expected { new } else { old })?;
                cycles += access.cycles;
                events.extend(access.events);
                set!(rd, access.value);
                setpc!(next_pc);
            }
            Instr::Xchg { rd, addr } => {
                let target = VirtAddr(ctx(&self.cores, core).reg(addr));
                let new = ctx(&self.cores, core).reg(rd);
                let access = self.mem.atomic_rmw(core, target, |_| new)?;
                cycles += access.cycles;
                events.extend(access.events);
                set!(rd, access.value);
                setpc!(next_pc);
            }
            Instr::FetchAdd { rd, addr, src } => {
                let target = VirtAddr(ctx(&self.cores, core).reg(addr));
                let delta = ctx(&self.cores, core).reg(src);
                let access = self.mem.atomic_rmw(core, target, |old| old.wrapping_add(delta))?;
                cycles += access.cycles;
                events.extend(access.events);
                set!(rd, access.value);
                setpc!(next_pc);
            }
            Instr::Fence => {
                let access = self.mem.fence(core)?;
                cycles += access.cycles;
                events.extend(access.events);
                setpc!(next_pc);
            }
            Instr::Jmp { target } => {
                setpc!(VirtAddr(target));
            }
            Instr::Jr { rs } => {
                let target = ctx(&self.cores, core).reg(rs);
                setpc!(VirtAddr(target));
            }
            Instr::Br { cond, rs1, rs2, target } => {
                let (a, b) = (ctx(&self.cores, core).reg(rs1), ctx(&self.cores, core).reg(rs2));
                setpc!(if cond.eval(a, b) { VirtAddr(target) } else { next_pc });
            }
            Instr::Call { target } => {
                let sp = ctx(&self.cores, core).reg(Reg::SP).wrapping_sub(4);
                let access = self.mem.write(core, VirtAddr(sp), 4, next_pc.0)?;
                cycles += access.cycles;
                events.extend(access.events);
                set!(Reg::SP, sp);
                setpc!(VirtAddr(target));
            }
            Instr::CallR { rs } => {
                let target = ctx(&self.cores, core).reg(rs);
                let sp = ctx(&self.cores, core).reg(Reg::SP).wrapping_sub(4);
                let access = self.mem.write(core, VirtAddr(sp), 4, next_pc.0)?;
                cycles += access.cycles;
                events.extend(access.events);
                set!(Reg::SP, sp);
                setpc!(VirtAddr(target));
            }
            Instr::Ret => {
                let sp = ctx(&self.cores, core).reg(Reg::SP);
                let access = self.mem.read(core, VirtAddr(sp), 4)?;
                cycles += access.cycles;
                events.extend(access.events);
                set!(Reg::SP, sp.wrapping_add(4));
                setpc!(VirtAddr(access.value));
            }
            Instr::Push { rs } => {
                let sp = ctx(&self.cores, core).reg(Reg::SP).wrapping_sub(4);
                let value = ctx(&self.cores, core).reg(rs);
                let access = self.mem.write(core, VirtAddr(sp), 4, value)?;
                cycles += access.cycles;
                events.extend(access.events);
                set!(Reg::SP, sp);
                setpc!(next_pc);
            }
            Instr::Pop { rd } => {
                let sp = ctx(&self.cores, core).reg(Reg::SP);
                let access = self.mem.read(core, VirtAddr(sp), 4)?;
                cycles += access.cycles;
                events.extend(access.events);
                set!(rd, access.value);
                set!(Reg::SP, sp.wrapping_add(4));
                setpc!(next_pc);
            }
            Instr::Syscall => {
                setpc!(next_pc);
                outcome = StepOutcome::Syscall;
            }
            Instr::Rdtsc { rd } => {
                setpc!(next_pc);
                outcome = StepOutcome::Nondet { kind: NondetKind::Rdtsc, rd };
            }
            Instr::Rdrand { rd } => {
                setpc!(next_pc);
                outcome = StepOutcome::Nondet { kind: NondetKind::Rdrand, rd };
            }
            Instr::Halt => {
                setpc!(next_pc);
                outcome = StepOutcome::Halt;
            }
        }
        Ok(StepResult { outcome, cycles, events })
    }
}

fn alu(op: AluOp, a: u32, b: u32) -> Result<u32> {
    Ok(match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Divu => {
            if b == 0 {
                return Err(QrError::Execution { detail: "division by zero".into() });
            }
            a / b
        }
        AluOp::Remu => {
            if b == 0 {
                return Err(QrError::Execution { detail: "remainder by zero".into() });
            }
            a % b
        }
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a.wrapping_shl(b & 31),
        AluOp::Shr => a.wrapping_shr(b & 31),
        AluOp::Sar => ((a as i32).wrapping_shr(b & 31)) as u32,
        AluOp::Slt => ((a as i32) < (b as i32)) as u32,
        AluOp::Sltu => (a < b) as u32,
        AluOp::Seq => (a == b) as u32,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qr_isa::Asm;

    const C0: CoreId = CoreId(0);
    const C1: CoreId = CoreId(1);
    const STACK0: u32 = 0x2000_0000;
    const STACK1: u32 = 0x2100_0000;

    fn machine_for(asm: Asm, cores: usize) -> Machine {
        let program = asm.finish().unwrap();
        let cfg = CpuConfig { num_cores: cores, ..CpuConfig::default() };
        let mut m = Machine::new(program, cfg).unwrap();
        m.mem_mut().map_region(VirtAddr(STACK0 - 0x1000), 0x1000).unwrap();
        m.mem_mut().map_region(VirtAddr(STACK1 - 0x1000), 0x1000).unwrap();
        m
    }

    fn start(m: &mut Machine, core: CoreId, sp: u32) {
        let entry = m.program().entry();
        let mut ctx = CpuContext::new(entry);
        ctx.set_reg(Reg::SP, sp);
        m.core_mut(core).swap_context(Some(ctx));
    }

    /// Runs core 0 until halt; panics on faults or traps.
    fn run_to_halt(m: &mut Machine) {
        for _ in 0..1_000_000 {
            match m.step(C0).outcome {
                StepOutcome::Halt => return,
                StepOutcome::Retired => {}
                other => panic!("unexpected outcome: {other:?}"),
            }
        }
        panic!("did not halt");
    }

    #[test]
    fn arithmetic_loop_computes_sum() {
        // sum = 1 + 2 + ... + 10 = 55
        let mut a = Asm::new();
        a.movi(Reg::R1, 10); // i
        a.movi(Reg::R2, 0); // sum
        a.label("loop");
        a.add(Reg::R2, Reg::R2, Reg::R1);
        a.addi(Reg::R1, Reg::R1, -1);
        a.bnez(Reg::R1, "loop");
        a.halt();
        let mut m = machine_for(a, 1);
        start(&mut m, C0, STACK0);
        run_to_halt(&mut m);
        assert_eq!(m.read_reg(C0, Reg::R2), 55);
    }

    #[test]
    fn memory_round_trip_through_data_segment() {
        let mut a = Asm::new();
        a.data_word("cell", &[5]);
        a.movi_sym(Reg::R1, "cell");
        a.ld(Reg::R2, Reg::R1, 0);
        a.addi(Reg::R2, Reg::R2, 37);
        a.st(Reg::R1, 0, Reg::R2);
        a.fence(); // make it visible
        a.halt();
        let mut m = machine_for(a, 1);
        start(&mut m, C0, STACK0);
        run_to_halt(&mut m);
        let cell = m.program().symbol("cell").unwrap();
        assert_eq!(m.mem().memory().read_uint(cell, 4).unwrap(), 42);
    }

    #[test]
    fn call_ret_push_pop() {
        let mut a = Asm::new();
        a.movi(Reg::R1, 7);
        a.push(Reg::R1);
        a.call("double");
        a.pop(Reg::R3); // restore the 7
        a.halt();
        a.label("double");
        a.ld(Reg::R2, Reg::SP, 4); // arg above the return address
        a.add(Reg::R2, Reg::R2, Reg::R2);
        a.ret();
        let mut m = machine_for(a, 1);
        start(&mut m, C0, STACK0);
        run_to_halt(&mut m);
        assert_eq!(m.read_reg(C0, Reg::R2), 14);
        assert_eq!(m.read_reg(C0, Reg::R3), 7);
        assert_eq!(m.read_reg(C0, Reg::SP), STACK0, "stack balanced");
    }

    #[test]
    fn division_by_zero_faults_without_advancing_pc() {
        let mut a = Asm::new();
        a.movi(Reg::R1, 1);
        a.movi(Reg::R2, 0);
        a.divu(Reg::R3, Reg::R1, Reg::R2);
        a.halt();
        let mut m = machine_for(a, 1);
        start(&mut m, C0, STACK0);
        m.step(C0);
        m.step(C0);
        let pc_before = m.core(C0).context().unwrap().pc();
        let r = m.step(C0);
        assert!(matches!(r.outcome, StepOutcome::Fault(_)));
        assert_eq!(m.core(C0).context().unwrap().pc(), pc_before, "pc unchanged");
    }

    #[test]
    fn unmapped_load_faults() {
        let mut a = Asm::new();
        a.movi_u(Reg::R1, 0x8000_0000);
        a.ld(Reg::R2, Reg::R1, 0);
        a.halt();
        let mut m = machine_for(a, 1);
        start(&mut m, C0, STACK0);
        m.step(C0);
        let r = m.step(C0);
        match r.outcome {
            StepOutcome::Fault(QrError::MemoryFault { addr, .. }) => {
                assert_eq!(addr, 0x8000_0000)
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bad_pc_faults() {
        let mut a = Asm::new();
        a.movi_u(Reg::R1, 0x4000);
        a.jr(Reg::R1);
        a.halt();
        let mut m = machine_for(a, 1);
        start(&mut m, C0, STACK0);
        m.step(C0);
        m.step(C0); // jr to nowhere
        let r = m.step(C0);
        assert!(matches!(r.outcome, StepOutcome::Fault(_)));
    }

    #[test]
    fn syscall_and_nondet_trap_to_orchestrator() {
        let mut a = Asm::new();
        a.movi(Reg::R0, 8); // pretend SYS_TIME
        a.syscall();
        a.rdtsc(Reg::R4);
        a.rdrand(Reg::R5);
        a.halt();
        let mut m = machine_for(a, 1);
        start(&mut m, C0, STACK0);
        m.step(C0);
        assert_eq!(m.step(C0).outcome, StepOutcome::Syscall);
        assert_eq!(m.read_reg(C0, Reg::R0), 8, "args visible to kernel");
        m.write_reg(C0, Reg::R0, 1234); // kernel writes result
        match m.step(C0).outcome {
            StepOutcome::Nondet { kind: NondetKind::Rdtsc, rd } => {
                m.write_reg(C0, rd, 77);
            }
            other => panic!("{other:?}"),
        }
        match m.step(C0).outcome {
            StepOutcome::Nondet { kind: NondetKind::Rdrand, rd } => {
                m.write_reg(C0, rd, 88);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(m.step(C0).outcome, StepOutcome::Halt);
        assert_eq!(m.read_reg(C0, Reg::R0), 1234);
        assert_eq!(m.read_reg(C0, Reg::R4), 77);
        assert_eq!(m.read_reg(C0, Reg::R5), 88);
    }

    #[test]
    fn idle_core_reports_idle() {
        let mut a = Asm::new();
        a.halt();
        let mut m = machine_for(a, 2);
        start(&mut m, C0, STACK0);
        assert_eq!(m.step(C1).outcome, StepOutcome::Idle);
        assert_eq!(m.core(C1).cycles(), 1, "idle still burns a cycle");
    }

    #[test]
    fn two_cores_atomically_increment_shared_counter() {
        let mut a = Asm::new();
        a.data_word("counter", &[0]);
        a.movi_sym(Reg::R1, "counter");
        a.movi(Reg::R2, 1);
        a.movi(Reg::R3, 100); // iterations
        a.label("loop");
        a.fetch_add(Reg::R4, Reg::R1, Reg::R2);
        a.addi(Reg::R3, Reg::R3, -1);
        a.bnez(Reg::R3, "loop");
        a.halt();
        let mut m = machine_for(a, 2);
        start(&mut m, C0, STACK0);
        start(&mut m, C1, STACK1);
        let mut halted = [false; 2];
        let mut flip = 0u32;
        while !(halted[0] && halted[1]) {
            // Alternate in a lumpy pattern to interleave mid-loop.
            flip = flip.wrapping_add(1);
            let id = if (flip / 3).is_multiple_of(2) { C0 } else { C1 };
            if halted[id.index()] {
                continue;
            }
            if m.step(id).outcome == StepOutcome::Halt {
                halted[id.index()] = true;
            }
        }
        let counter = m.program().symbol("counter").unwrap();
        assert_eq!(m.mem().memory().read_uint(counter, 4).unwrap(), 200);
    }

    #[test]
    fn tso_store_buffering_litmus_allows_both_zero() {
        // Classic SB litmus: with store buffers, both loads may see 0.
        let mut a = Asm::new();
        a.data_word("x", &[0]);
        a.align_data_line();
        a.data_word("y", &[0]);
        // Core reads its role from R7: 0 -> writes x reads y; 1 -> writes
        // y reads x.
        a.movi_sym(Reg::R1, "x");
        a.movi_sym(Reg::R2, "y");
        a.movi(Reg::R3, 1);
        a.bnez(Reg::R7, "role1");
        a.st(Reg::R1, 0, Reg::R3); // x = 1 (buffered)
        a.ld(Reg::R4, Reg::R2, 0); // r4 = y
        a.halt();
        a.label("role1");
        a.st(Reg::R2, 0, Reg::R3); // y = 1 (buffered)
        a.ld(Reg::R4, Reg::R1, 0); // r4 = x
        a.halt();
        let program = a.finish().unwrap();
        let cfg = CpuConfig {
            num_cores: 2,
            drain_interval: 100, // keep stores buffered
            ..CpuConfig::default()
        };
        let mut m = Machine::new(program, cfg).unwrap();
        start(&mut m, C0, STACK0);
        start(&mut m, C1, STACK1);
        m.write_reg(C1, Reg::R7, 1);
        // Tight alternation: both stores issue, then both loads.
        loop {
            let a = m.step(C0).outcome;
            let b = m.step(C1).outcome;
            if a == StepOutcome::Halt && b == StepOutcome::Halt {
                break;
            }
        }
        assert_eq!(m.read_reg(C0, Reg::R4), 0, "core0 missed core1's store");
        assert_eq!(m.read_reg(C1, Reg::R4), 0, "core1 missed core0's store");
        assert!(m.mem().pending_stores(C0) > 0 || m.mem().pending_stores(C1) > 0);
    }

    #[test]
    fn background_drain_eventually_empties_buffer() {
        let mut a = Asm::new();
        a.data_word("x", &[0]);
        a.movi_sym(Reg::R1, "x");
        a.movi(Reg::R2, 9);
        a.st(Reg::R1, 0, Reg::R2);
        for _ in 0..12 {
            a.nop();
        }
        a.halt();
        let mut m = machine_for(a, 1);
        start(&mut m, C0, STACK0);
        run_to_halt(&mut m);
        assert_eq!(m.mem().pending_stores(C0), 0);
        let x = m.program().symbol("x").unwrap();
        assert_eq!(m.mem().memory().read_uint(x, 4).unwrap(), 9);
    }

    #[test]
    fn least_advanced_busy_core_picks_minimum() {
        let mut a = Asm::new();
        a.label("spin");
        a.jmp("spin");
        let mut m = machine_for(a, 3);
        assert_eq!(m.least_advanced_busy_core(), None, "all idle");
        start(&mut m, C1, STACK1);
        assert_eq!(m.least_advanced_busy_core(), Some(C1));
        m.step(C1);
        start(&mut m, C0, STACK0);
        assert_eq!(m.least_advanced_busy_core(), Some(C0), "fresh core is behind");
    }
}
