//! Architectural execution context (register file + program counter).

use qr_common::{Fingerprint, VirtAddr};
use qr_isa::Reg;

/// The architectural state the kernel saves and restores on a context
/// switch: sixteen general-purpose registers and the program counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuContext {
    regs: [u32; 16],
    pc: VirtAddr,
    retired: u64,
}

impl CpuContext {
    /// Creates a context starting at `entry` with zeroed registers.
    pub fn new(entry: VirtAddr) -> CpuContext {
        CpuContext { regs: [0; 16], pc: entry, retired: 0 }
    }

    /// Instructions this context has retired across its lifetime,
    /// regardless of which core it ran on. Background store-buffer drains
    /// key on this counter so drain points are a deterministic function
    /// of the thread's own instruction stream — which is what lets the
    /// replayer reproduce TSO visibility exactly.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Counts one retired instruction.
    pub fn count_retired(&mut self) {
        self.retired += 1;
    }

    /// Current program counter.
    pub fn pc(&self) -> VirtAddr {
        self.pc
    }

    /// Sets the program counter.
    pub fn set_pc(&mut self, pc: VirtAddr) {
        self.pc = pc;
    }

    /// Reads a register.
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Writes a register.
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        self.regs[r.index()] = value;
    }

    /// All registers in index order (for logs and validation).
    pub fn regs(&self) -> &[u32; 16] {
        &self.regs
    }

    /// Serializes the context (registers, pc, retired count) for
    /// checkpoint snapshots.
    pub fn save_state(&self, out: &mut Vec<u8>) {
        for &r in &self.regs {
            out.extend_from_slice(&r.to_le_bytes());
        }
        out.extend_from_slice(&self.pc.0.to_le_bytes());
        qr_common::varint::write_u64(out, self.retired);
    }

    /// Inverse of [`CpuContext::save_state`].
    ///
    /// # Errors
    ///
    /// Returns [`qr_common::QrError::Corrupt`] on truncated bytes.
    pub fn load_state(r: &mut qr_common::cursor::ByteReader<'_>) -> qr_common::Result<CpuContext> {
        let mut regs = [0u32; 16];
        for slot in &mut regs {
            *slot = r.u32()?;
        }
        let pc = VirtAddr(r.u32()?);
        let retired = r.varint()?;
        Ok(CpuContext { regs, pc, retired })
    }

    /// Folds this context into a fingerprint (replay validation).
    pub fn fingerprint_into(&self, fp: &mut Fingerprint) {
        for &r in &self.regs {
            fp.u32(r);
        }
        fp.u32(self.pc.0);
        fp.u64(self.retired);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_start_zeroed() {
        let c = CpuContext::new(VirtAddr(0x1000));
        assert!(Reg::ALL.iter().all(|&r| c.reg(r) == 0));
        assert_eq!(c.pc(), VirtAddr(0x1000));
    }

    #[test]
    fn reg_read_write_round_trips() {
        let mut c = CpuContext::new(VirtAddr(0));
        c.set_reg(Reg::R5, 0xdead);
        assert_eq!(c.reg(Reg::R5), 0xdead);
        assert_eq!(c.reg(Reg::R6), 0, "neighbours untouched");
    }

    #[test]
    fn fingerprint_distinguishes_state() {
        let digest = |c: &CpuContext| {
            let mut fp = Fingerprint::new();
            c.fingerprint_into(&mut fp);
            fp.digest()
        };
        let a = CpuContext::new(VirtAddr(0x1000));
        let mut b = a.clone();
        assert_eq!(digest(&a), digest(&b));
        b.set_reg(Reg::R0, 1);
        assert_ne!(digest(&a), digest(&b));
        let mut c = a.clone();
        c.set_pc(VirtAddr(0x1008));
        assert_ne!(digest(&a), digest(&c));
    }
}
