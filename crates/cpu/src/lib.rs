#![warn(missing_docs)]

//! Multicore CPU model: cores, the PIA interpreter, and the machine.
//!
//! A [`machine::Machine`] is the QuickIA-platform analog: `N` cores over
//! the `qr-mem` memory hierarchy, executing one loaded [`qr_isa::Program`].
//! The machine is *passive*: an orchestrator (the kernel in `qr-os`, the
//! recording session in `qr-capo`, or the replayer in `qr-replay`) decides
//! which core steps next and reacts to the returned [`step::StepOutcome`]:
//!
//! - syscalls and nondeterministic reads (`rdtsc`, `rdrand`) *trap* to the
//!   orchestrator instead of being handled internally, which is what makes
//!   record and replay symmetric — the environment supplies the values,
//!
//! - every step reports the retired instruction's memory events so the
//!   recording hardware can grow its chunk signatures and detect
//!   conflicts,
//!
//! - faults are reported as outcomes (the kernel kills the thread), not
//!   simulator errors.
//!
//! Cores execute a [`context::CpuContext`] (register file + PC) that the
//! kernel swaps on context switches; a core without a context is idle.

pub mod context;
pub mod core;
pub mod machine;
pub mod step;

pub use context::CpuContext;
pub use machine::{CpuConfig, Machine};
pub use step::{NondetKind, StepOutcome, StepResult};
