//! The recording session: machine + kernel + recorder, orchestrated.
//!
//! # Event-ordering protocol (the soundness core)
//!
//! The replayer executes chunks in global-timestamp order and re-derives
//! store-buffer drain points from each thread's own instruction stream.
//! For that to reproduce the recorded execution, the session maintains
//! one invariant: **every cross-thread dependency's source chunk (or
//! syscall record) receives its timestamp before the dependent access's
//! chunk does.** Concretely:
//!
//! 1. An instruction's retirement is counted into its chunk *before* its
//!    memory events are processed, so signatures always describe a
//!    nonempty chunk.
//! 2. A remote transaction that hits a core's signature terminates that
//!    core's chunk *at detection time* — before any core steps again —
//!    so the victim's timestamp precedes the accessor's (which
//!    terminates later).
//! 3. Conflict-victim terminations do **not** drain the victim's store
//!    buffer (pending stores drain later, attributed to the chunk open
//!    at drain time — the visibility-time attribution that makes TSO
//!    replayable and avoids ordering cycles). Self-initiated boundary
//!    terminations (syscall, trap, context switch, thread end) always
//!    drain; hardware chunk closings (IC overflow, signature
//!    saturation) drain only in `DrainAtChunk` mode, and the reason code
//!    in the packet tells the replayer which rule applied.
//! 4. Syscall records are stamped *after* the kernel's memory effects
//!    (whose coherence transactions have already terminated any
//!    conflicting chunks), so `ts(victim) < ts(record) < ts(any chunk
//!    that observes the effects)`.

use crate::input_log::{InputEvent, InputLog};
use crate::overhead::OverheadBreakdown;
use crate::recording::{Recording, RecordingConfig, RecordingMeta, RecordingMode};
use crate::sphere::ReplaySphere;
use qr_common::{CoreId, LineAddr, QrError, Result};
use qr_cpu::{Machine, StepOutcome};
use qr_isa::Program;
use qr_mem::{BusKind, MemEvent, TsoMode};
use qr_os::{Kernel, SchedEvent, SyscallOutcome};
use quickrec_core::{ChunkFootprint, FootprintLog, RecorderBank, TerminationReason};
use std::collections::BTreeSet;

/// An in-progress recording of one program execution.
#[derive(Debug)]
pub struct RecordingSession {
    cfg: RecordingConfig,
    machine: Machine,
    kernel: Kernel,
    bank: RecorderBank,
    sphere: ReplaySphere,
    chunks: quickrec_core::ChunkLog,
    inputs: InputLog,
    footprints: FootprintLog,
    /// Per-core (read, write) line sets of the chunk currently open on
    /// that core, flushed into `footprints` when the chunk terminates.
    fp_sets: Vec<(BTreeSet<LineAddr>, BTreeSet<LineAddr>)>,
    overhead: OverheadBreakdown,
    instructions: u64,
}

/// Records `program` under `cfg`, running it to completion.
///
/// # Errors
///
/// Returns configuration errors, [`QrError::BudgetExceeded`] on runaway
/// programs, or [`QrError::Execution`] on kernel-level deadlock.
///
/// # Example
///
/// ```
/// use qr_capo::{record, RecordingConfig};
/// use qr_isa::{Asm, Reg};
///
/// let mut a = Asm::new();
/// a.movi_u(Reg::R0, qr_isa::abi::SYS_EXIT);
/// a.movi(Reg::R1, 0);
/// a.syscall();
/// let recording = record(a.finish()?, RecordingConfig::with_cores(2))?;
/// assert!(recording.chunks.len() >= 1);
/// # Ok::<(), qr_common::QrError>(())
/// ```
pub fn record(program: Program, cfg: RecordingConfig) -> Result<Recording> {
    RecordingSession::new(program, cfg)?.run()
}

impl RecordingSession {
    /// Creates a session with the program loaded and the main thread
    /// created but not yet started.
    ///
    /// # Errors
    ///
    /// Returns configuration or loading errors.
    pub fn new(program: Program, cfg: RecordingConfig) -> Result<RecordingSession> {
        cfg.validate()?;
        let mut machine = Machine::new(program, cfg.cpu.clone())?;
        let kernel = Kernel::new(cfg.os.clone(), &mut machine)?;
        let bank = RecorderBank::new(cfg.mrr.clone(), cfg.cpu.num_cores)?;
        Ok(RecordingSession {
            machine,
            kernel,
            bank,
            sphere: ReplaySphere::new(0),
            chunks: quickrec_core::ChunkLog::new(),
            inputs: InputLog::new(),
            footprints: FootprintLog::new(),
            fp_sets: vec![Default::default(); cfg.cpu.num_cores],
            overhead: OverheadBreakdown::default(),
            instructions: 0,
            cfg,
        })
    }

    fn full_stack(&self) -> bool {
        self.cfg.mode == RecordingMode::Full
    }

    /// Runs the program to completion and returns the recording.
    ///
    /// # Errors
    ///
    /// See [`record`].
    pub fn run(mut self) -> Result<Recording> {
        let sched = self.kernel.place_runnable(&mut self.machine);
        self.apply_sched(&sched);
        let budget = self.kernel.config().max_instructions;
        while !self.kernel.all_done() {
            let Some(core) = self.machine.least_advanced_busy_core() else {
                let sched = self.kernel.place_runnable(&mut self.machine);
                self.apply_sched(&sched);
                if self.machine.least_advanced_busy_core().is_none() {
                    return Err(QrError::Execution {
                        detail: format!(
                            "deadlock: {} threads blocked forever",
                            self.kernel.live_threads()
                        ),
                    });
                }
                continue;
            };
            let step = self.machine.step(core);
            let mut overflow = false;
            if step.instruction_retired() {
                self.instructions += 1;
                if self.instructions > budget {
                    return Err(QrError::BudgetExceeded { executed: self.instructions });
                }
                // Invariant 1: count retirement before processing events.
                overflow = self.bank.unit_mut(core).note_retired();
            }
            self.note_footprint(&step.events);
            self.process_mem_events(&step.events)?;
            // An overflow that coincides with a syscall or halt yields to
            // that boundary's own termination (reason Syscall/SphereEnd),
            // so the packet's reason always tells the replayer what the
            // chunk's final instruction did.
            if overflow
                && matches!(step.outcome, StepOutcome::Retired | StepOutcome::Nondet { .. })
            {
                self.terminate(core, TerminationReason::IcOverflow)?;
            }
            self.bank.advance(core, step.cycles);
            match step.outcome {
                StepOutcome::Retired => {
                    if self.kernel.quantum_expired(&self.machine, core) {
                        self.terminate(core, TerminationReason::ContextSwitch)?;
                        let out = self.kernel.preempt(&mut self.machine, core);
                        self.apply_outcome(core, out)?;
                    }
                    if self.kernel.signal_ready(core) {
                        self.terminate(core, TerminationReason::Trap)?;
                        let tid = self.kernel.deliver_signal(&mut self.machine, core);
                        if self.full_stack() {
                            let cost = self.cfg.overhead.signal_intercept_cycles;
                            self.overhead.signal_cycles += cost;
                            self.machine.core_mut(core).add_cycles(cost);
                        }
                        let ts = self.machine.mem_mut().tick_clock();
                        self.inputs.push_event(InputEvent::Signal { ts, tid });
                    }
                }
                StepOutcome::Syscall => {
                    let drain = self.machine.drain_store_buffer(core)?;
                    self.note_footprint(&drain.events);
                    self.process_mem_events(&drain.events)?;
                    self.terminate(core, TerminationReason::Syscall)?;
                    if self.full_stack() {
                        let cost = self.cfg.overhead.syscall_intercept_cycles;
                        self.overhead.syscall_cycles += cost;
                        self.machine.core_mut(core).add_cycles(cost);
                    }
                    let out = self.kernel.handle_syscall(&mut self.machine, core)?;
                    self.apply_outcome(core, out)?;
                    let sched = self.kernel.place_runnable(&mut self.machine);
                    self.apply_sched(&sched);
                }
                StepOutcome::Nondet { kind, rd } => {
                    let tid = self.kernel.thread_on(core).expect("nondet from a running thread");
                    let value = self.kernel.nondet_value(&self.machine, kind);
                    self.machine.write_reg(core, rd, value);
                    self.inputs.push_nondet(tid, kind, value);
                }
                StepOutcome::Halt => {
                    let drain = self.machine.drain_store_buffer(core)?;
                    self.note_footprint(&drain.events);
                    self.process_mem_events(&drain.events)?;
                    self.terminate(core, TerminationReason::SphereEnd)?;
                    let out = self.kernel.handle_halt(&mut self.machine, core);
                    self.apply_outcome(core, out)?;
                }
                StepOutcome::Fault(ref err) => {
                    let err = err.clone();
                    let drain = self.machine.drain_store_buffer(core)?;
                    self.note_footprint(&drain.events);
                    self.process_mem_events(&drain.events)?;
                    self.terminate(core, TerminationReason::SphereEnd)?;
                    let out = self.kernel.handle_fault(&mut self.machine, core, &err);
                    self.apply_outcome(core, out)?;
                }
                StepOutcome::Idle => {}
            }
            self.service_cmem_interrupt(core);
        }
        self.finish()
    }

    fn finish(mut self) -> Result<Recording> {
        self.bank.flush_all();
        let (packets, _) = self.bank.drain_cmem();
        self.chunks.extend(packets);
        self.sphere.close();
        let cycles = (0..self.machine.num_cores())
            .map(|i| self.machine.core(CoreId(i as u8)).cycles())
            .max()
            .unwrap_or(0);
        self.overhead.hw_stall_cycles = (0..self.machine.num_cores())
            .map(|i| self.bank.stall_cycles(CoreId(i as u8)))
            .sum();
        let mut recording = Recording {
            meta: RecordingMeta {
                program_fingerprint: self.machine.program().fingerprint(),
                tso_mode: self.cfg.cpu.mem.tso_mode,
                cpu: self.cfg.cpu.clone(),
                os: self.cfg.os.clone(),
            },
            cycles,
            instructions: self.instructions,
            console: self.kernel.console().to_vec(),
            exit_code: self.kernel.exit_code(),
            fingerprint: qr_os::native::state_fingerprint(&self.machine, &self.kernel),
            recorder_stats: self.bank.stats().clone(),
            overhead: self.overhead,
            chunks: self.chunks,
            inputs: self.inputs,
            footprints: Some(self.footprints),
            order: None,
        };
        recording.check_consistency()?;
        if self.cfg.order == quickrec_core::OrderMode::PartialOrder {
            let (log, _) = recording.derive_order()?;
            recording.order = Some(log);
        }
        Ok(recording)
    }

    /// Invariant 2: conflicts terminate victims at detection time.
    fn process_mem_events(&mut self, events: &[MemEvent]) -> Result<()> {
        for event in events {
            match *event {
                MemEvent::LocalRead { core, line, .. } => {
                    if self.bank.unit(core).is_recording()
                        && self.bank.unit_mut(core).note_local_read(line)
                        && self.bank.unit(core).chunk_icount() > 0
                    {
                        self.terminate(core, TerminationReason::SigSaturation)?;
                    }
                }
                MemEvent::LocalWrite { core, line, .. } => {
                    if self.bank.unit(core).is_recording()
                        && self.bank.unit_mut(core).note_local_write(line)
                        && self.bank.unit(core).chunk_icount() > 0
                    {
                        self.terminate(core, TerminationReason::SigSaturation)?;
                    }
                }
                MemEvent::BusTxn { from, line, kind } => {
                    if kind.is_read() || kind.is_write() {
                        let victims = self.bank.conflicting_cores(from, line, kind.is_write());
                        for (victim, reason) in victims {
                            self.terminate(victim, reason)?;
                        }
                    }
                    debug_assert!(
                        kind != BusKind::Writeback || !kind.is_read(),
                        "writebacks are not snooped for conflicts"
                    );
                }
                MemEvent::Eviction { .. } => {}
            }
        }
        Ok(())
    }

    /// Invariant 3: boundary drains, then the timestamp.
    fn terminate(&mut self, core: CoreId, reason: TerminationReason) -> Result<()> {
        if !self.bank.unit(core).is_recording() || self.bank.unit(core).chunk_icount() == 0 {
            return Ok(());
        }
        let drains = match reason {
            // Kernel/serialization boundaries always drain.
            TerminationReason::Syscall
            | TerminationReason::Trap
            | TerminationReason::ContextSwitch
            | TerminationReason::SphereEnd => true,
            // Hardware chunk closings drain only in DrainAtChunk mode.
            TerminationReason::IcOverflow | TerminationReason::SigSaturation => {
                self.cfg.cpu.mem.tso_mode == TsoMode::DrainAtChunk
            }
            // Conflict victims never drain (visibility-time attribution).
            TerminationReason::ConflictRaw
            | TerminationReason::ConflictWar
            | TerminationReason::ConflictWaw => false,
        };
        if drains {
            let drain = self.machine.drain_store_buffer(core)?;
            self.note_footprint(&drain.events);
            self.process_mem_events(&drain.events)?;
        }
        let rsw = self.machine.mem().pending_stores(core).min(u8::MAX as usize) as u8;
        let ts = self.machine.mem_mut().tick_clock();
        let (packet, stall) = self.bank.terminate_chunk(core, reason, ts, rsw);
        if packet.is_some() {
            let (reads, writes) = std::mem::take(&mut self.fp_sets[core.index()]);
            self.footprints.push(ChunkFootprint::new(
                ts,
                reads.into_iter().collect(),
                writes.into_iter().collect(),
            ));
        }
        if stall > 0 {
            self.machine.core_mut(core).add_cycles(stall);
        }
        Ok(())
    }

    /// Attributes a step's local memory events to the footprint of the
    /// chunk open on each event's core. Called on a whole event batch
    /// *before* [`RecordingSession::process_mem_events`], because
    /// processing may terminate the chunk mid-batch (signature
    /// saturation) while the remaining events still belong to the
    /// just-closed chunk — replay executes every access of a chunk's
    /// instructions, including post-saturation drains, inside that chunk.
    fn note_footprint(&mut self, events: &[MemEvent]) {
        for event in events {
            match *event {
                MemEvent::LocalRead { core, line, .. } => {
                    self.fp_sets[core.index()].0.insert(line);
                }
                MemEvent::LocalWrite { core, line, .. } => {
                    self.fp_sets[core.index()].1.insert(line);
                }
                MemEvent::BusTxn { .. } | MemEvent::Eviction { .. } => {}
            }
        }
    }

    fn apply_sched(&mut self, events: &[SchedEvent]) {
        for event in events {
            match *event {
                SchedEvent::ScheduledOn { core, tid } => {
                    self.bank.unit_mut(core).start(tid);
                    self.sphere.add_thread(tid);
                    if self.full_stack() {
                        let cost = self.cfg.overhead.mrr_switch_cycles;
                        self.overhead.switch_cycles += cost;
                        self.machine.core_mut(core).add_cycles(cost);
                    }
                }
                SchedEvent::DescheduledFrom { core, tid } => {
                    debug_assert_eq!(
                        self.bank.unit(core).chunk_icount(),
                        0,
                        "deschedule with an open chunk on {core}"
                    );
                    let owner = self.bank.unit_mut(core).stop();
                    debug_assert_eq!(owner, Some(tid));
                    if self.full_stack() {
                        let cost = self.cfg.overhead.mrr_switch_cycles;
                        self.overhead.switch_cycles += cost;
                        self.machine.core_mut(core).add_cycles(cost);
                    }
                }
            }
        }
    }

    /// Invariant 4: kernel memory effects, then scheduling, then stamped
    /// records.
    fn apply_outcome(&mut self, core: CoreId, out: SyscallOutcome) -> Result<()> {
        // Kernel-side memory activity becomes the footprint of every
        // record this outcome stamps: replay re-reads console payloads
        // and re-applies `record.writes`, so the lines the kernel
        // touched coherently (BusRd = read, BusRdX/BusUpgr = written)
        // are replay-time reads/writes of the injecting chunk.
        let mut kernel_reads = Vec::new();
        let mut kernel_writes = Vec::new();
        for event in &out.mem_events {
            if let MemEvent::BusTxn { line, kind, .. } = *event {
                if kind.is_write() {
                    kernel_writes.push(line);
                } else if kind.is_read() {
                    kernel_reads.push(line);
                }
            }
        }
        self.process_mem_events(&out.mem_events)?;
        self.apply_sched(&out.sched);
        for record in out.records {
            if self.full_stack() {
                let bytes: usize =
                    16 + record.writes.iter().map(|(_, data)| data.len()).sum::<usize>();
                let cost = self.cfg.overhead.input_copy_cycles_per_byte * bytes as u64;
                self.overhead.copy_cycles += cost;
                self.machine.core_mut(core).add_cycles(cost);
            }
            let mut writes = kernel_writes.clone();
            for (addr, data) in &record.writes {
                let first = addr.line().0;
                let last = if data.is_empty() {
                    first
                } else {
                    addr.wrapping_add(data.len() as u32 - 1).line().0
                };
                writes.extend((first..=last).map(LineAddr));
            }
            let ts = self.machine.mem_mut().tick_clock();
            self.footprints.push(ChunkFootprint::new(ts, kernel_reads.clone(), writes));
            self.inputs.push_event(InputEvent::Syscall { ts, record });
        }
        Ok(())
    }

    fn service_cmem_interrupt(&mut self, core: CoreId) {
        if !self.bank.cmem_interrupt_pending() {
            return;
        }
        let (packets, bytes) = self.bank.drain_cmem();
        self.chunks.extend(packets);
        if self.full_stack() {
            let cost = self.cfg.overhead.drain_base_cycles
                + self.cfg.overhead.drain_cycles_per_byte * bytes as u64;
            self.overhead.drain_cycles += cost;
            self.machine.core_mut(core).add_cycles(cost);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qr_isa::{abi, Asm, Reg};

    fn sys(a: &mut Asm, number: u32, set_args: impl FnOnce(&mut Asm)) {
        a.movi_u(Reg::R0, number);
        set_args(a);
        a.syscall();
    }

    /// Two threads incrementing a shared counter under a spinlock built
    /// on cas + futex.
    fn racy_program() -> Program {
        let mut a = Asm::new();
        a.data_word("counter", &[0]);
        a.align_data_line();
        a.data_word("lock", &[0]);
        sys(&mut a, abi::SYS_SPAWN, |a| {
            a.movi_sym(Reg::R1, "work");
            a.movi(Reg::R2, 0);
        });
        a.mov(Reg::R6, Reg::R0);
        a.movi(Reg::R1, 0);
        a.call("work_body");
        sys(&mut a, abi::SYS_JOIN, |a| {
            a.mov(Reg::R1, Reg::R6);
        });
        sys(&mut a, abi::SYS_EXIT, |a| {
            a.movi_sym(Reg::R2, "counter");
            a.ld(Reg::R1, Reg::R2, 0);
        });
        // worker thread entry
        a.label("work");
        a.call("work_body");
        sys(&mut a, abi::SYS_EXIT, |a| {
            a.movi(Reg::R1, 0);
        });
        // shared body: 50 locked increments
        a.label("work_body");
        a.movi(Reg::R8, 50);
        a.label("iter");
        // spin: cas(lock: 0 -> 1)
        a.movi_sym(Reg::R2, "lock");
        a.label("acquire");
        a.movi(Reg::R3, 0);
        a.movi(Reg::R4, 1);
        a.cas(Reg::R3, Reg::R2, Reg::R4);
        a.beqz(Reg::R3, "locked");
        a.pause();
        a.jmp("acquire");
        a.label("locked");
        a.movi_sym(Reg::R5, "counter");
        a.ld(Reg::R7, Reg::R5, 0);
        a.addi(Reg::R7, Reg::R7, 1);
        a.st(Reg::R5, 0, Reg::R7);
        // release
        a.movi(Reg::R3, 0);
        a.xchg(Reg::R3, Reg::R2);
        a.addi(Reg::R8, Reg::R8, -1);
        a.bnez(Reg::R8, "iter");
        a.ret();
        a.finish().unwrap()
    }

    #[test]
    fn recording_captures_a_racy_execution() {
        let recording = record(racy_program(), RecordingConfig::with_cores(2)).unwrap();
        assert_eq!(recording.exit_code, 100, "both threads' increments landed");
        assert!(recording.chunks.len() > 2, "multiple chunks recorded");
        assert!(
            recording.recorder_stats.conflict_chunks() > 0,
            "lock contention must produce conflict terminations: {:?}",
            recording.recorder_stats.chunks_by_reason
        );
        assert!(recording.inputs.events().len() >= 4, "spawn/join/exit syscalls logged");
        recording.check_consistency().unwrap();
    }

    #[test]
    fn recording_is_deterministic() {
        let a = record(racy_program(), RecordingConfig::with_cores(2)).unwrap();
        let b = record(racy_program(), RecordingConfig::with_cores(2)).unwrap();
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.chunks, b.chunks);
        assert_eq!(a.inputs, b.inputs);
        assert_eq!(a.cycles, b.cycles);
    }

    #[test]
    fn hardware_only_mode_charges_no_software_cycles() {
        let cfg = RecordingConfig {
            mode: RecordingMode::HardwareOnly,
            ..RecordingConfig::with_cores(2)
        };
        let recording = record(racy_program(), cfg).unwrap();
        assert_eq!(recording.overhead.software_total(), 0);
        assert!(!recording.chunks.is_empty(), "hardware still records");
    }

    #[test]
    fn full_stack_costs_more_than_hardware_only() {
        let full = record(racy_program(), RecordingConfig::with_cores(2)).unwrap();
        let hw = record(
            racy_program(),
            RecordingConfig { mode: RecordingMode::HardwareOnly, ..RecordingConfig::with_cores(2) },
        )
        .unwrap();
        assert!(full.overhead.software_total() > 0);
        assert!(full.cycles > hw.cycles, "software stack must slow recording down");
        assert_eq!(full.exit_code, hw.exit_code);
    }

    #[test]
    fn timestamps_are_unique_and_sorted_schedule_exists() {
        let recording = record(racy_program(), RecordingConfig::with_cores(4)).unwrap();
        let schedule = recording.chunks.replay_schedule().unwrap();
        assert_eq!(schedule.len(), recording.chunks.len());
    }

    #[test]
    fn chunk_icounts_sum_to_user_instructions() {
        // Every retired user instruction must be covered by exactly one
        // chunk: threads only leave a core after their chunk terminated.
        let recording = record(racy_program(), RecordingConfig::with_cores(2)).unwrap();
        assert_eq!(
            recording.chunks.total_instructions(),
            recording.instructions,
            "chunks must partition the instruction stream"
        );
    }

    #[test]
    fn nondet_values_are_logged() {
        let mut a = Asm::new();
        a.rdtsc(Reg::R4);
        a.rdrand(Reg::R5);
        sys(&mut a, abi::SYS_EXIT, |a| {
            a.movi(Reg::R1, 0);
        });
        let recording = record(a.finish().unwrap(), RecordingConfig::with_cores(1)).unwrap();
        assert_eq!(recording.inputs.nondet_count(), 2);
    }

    #[test]
    fn read_payloads_are_captured() {
        let mut a = Asm::new();
        a.data_space("buf", 8);
        sys(&mut a, abi::SYS_READ, |a| {
            a.movi_sym(Reg::R1, "buf");
            a.movi(Reg::R2, 32);
        });
        sys(&mut a, abi::SYS_EXIT, |a| {
            a.movi(Reg::R1, 0);
        });
        let recording = record(a.finish().unwrap(), RecordingConfig::with_cores(1)).unwrap();
        let read_event = recording
            .inputs
            .events()
            .iter()
            .find_map(|e| match e {
                InputEvent::Syscall { record, .. } if record.number == abi::SYS_READ => {
                    Some(record)
                }
                _ => None,
            })
            .expect("read syscall logged");
        assert_eq!(read_event.writes.len(), 1);
        assert_eq!(read_event.writes[0].1.len(), 32);
    }
}
