//! Recording configuration and the recording artifact.

use crate::input_log::{InputEvent, InputLog, InputSalvage};
use crate::overhead::{OverheadBreakdown, OverheadModel};
use qr_common::frame::{self, PayloadKind};
use qr_common::{QrError, Result};
use qr_cpu::CpuConfig;
use qr_mem::TsoMode;
use qr_os::OsConfig;
use quickrec_core::po::{self, DeriveStats, PoEvent};
use quickrec_core::{
    ChunkLog, FootprintLog, MrrConfig, OrderLog, OrderMode, OrderSalvage, RecorderStats,
    SalvagedPackets,
};

/// How much of the recording stack is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecordingMode {
    /// Hardware and the full Capo3 software stack (costs charged). The
    /// default, and the only mode that produces replay-complete logs
    /// with realistic overhead accounting.
    #[default]
    Full,
    /// Recording hardware only: chunks are produced and drained by DMA,
    /// but no software costs are charged (the paper's hardware-overhead
    /// measurement).
    HardwareOnly,
}

/// Everything a recording run needs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecordingConfig {
    /// Machine configuration.
    pub cpu: CpuConfig,
    /// Kernel configuration.
    pub os: OsConfig,
    /// Recorder-hardware configuration.
    pub mrr: MrrConfig,
    /// RSM cost model.
    pub overhead: OverheadModel,
    /// Stack activation mode.
    pub mode: RecordingMode,
    /// How chunk ordering is persisted: the default global-timestamp
    /// total order, or per-thread partial order with an `order.qrp`
    /// sidecar. Recordings made in the default mode are byte-identical
    /// to recordings made before this field existed.
    pub order: OrderMode,
}

impl RecordingConfig {
    /// Validates all component configurations.
    ///
    /// # Errors
    ///
    /// Returns the first component's [`QrError::InvalidConfig`].
    pub fn validate(&self) -> Result<()> {
        self.cpu.validate()?;
        self.os.validate()?;
        self.mrr.validate()
    }

    /// Convenience: a config with `cores` cores, everything else default.
    pub fn with_cores(cores: usize) -> RecordingConfig {
        RecordingConfig {
            cpu: CpuConfig { num_cores: cores, ..CpuConfig::default() },
            ..RecordingConfig::default()
        }
    }
}

/// Metadata binding a recording to the binary and platform that produced
/// it (the replayer refuses mismatches).
#[derive(Debug, Clone, PartialEq)]
pub struct RecordingMeta {
    /// Digest of the recorded program image.
    pub program_fingerprint: u64,
    /// TSO mode in effect (determines replay drain rules).
    pub tso_mode: TsoMode,
    /// Full machine configuration (replay must match it).
    pub cpu: CpuConfig,
    /// Full kernel configuration (stack layout must match).
    pub os: OsConfig,
}

/// The artifact of one recorded execution.
#[derive(Debug, Clone)]
pub struct Recording {
    /// The memory (chunk) log.
    pub chunks: ChunkLog,
    /// The input log.
    pub inputs: InputLog,
    /// Per-chunk read/write footprints (parallel replay's dependency
    /// evidence). `None` for legacy recordings and unsalvageable
    /// sidecars; parallel replay then falls back to the serial path.
    pub footprints: Option<FootprintLog>,
    /// Provenance and platform metadata.
    pub meta: RecordingMeta,
    /// Makespan in cycles (max per-core count).
    pub cycles: u64,
    /// Total retired instructions.
    pub instructions: u64,
    /// Console output of the recorded run.
    pub console: Vec<u8>,
    /// Main thread's exit code.
    pub exit_code: u32,
    /// Architectural-outcome digest (memory + console + exit codes).
    pub fingerprint: u64,
    /// Recorder-hardware statistics.
    pub recorder_stats: RecorderStats,
    /// Where the recording overhead went.
    pub overhead: OverheadBreakdown,
    /// Partial-order sidecar (`order.qrp`): per-thread node counts plus
    /// the happens-before edges that constrain replay. `None` for
    /// total-order recordings (the default), whose ordering lives in the
    /// chunk timestamps.
    pub order: Option<OrderLog>,
}

impl RecordingMeta {
    const MAGIC: &'static [u8; 4] = b"QRM1";

    /// Serializes the metadata (plus the scalar outcome fields passed in)
    /// as a framed container holding one CRC-32-protected record (the
    /// `QRM1` blob pre-framing recorders wrote bare).
    fn to_bytes(&self, outcome: &RecordingOutcomeFields) -> Vec<u8> {
        let mut w = frame::Writer::new(PayloadKind::Meta);
        w.record(&self.to_inner_bytes(outcome));
        w.finish()
    }

    /// The inner `QRM1` metadata blob (the framed record's payload, and
    /// the whole file in the legacy layout).
    fn to_inner_bytes(&self, outcome: &RecordingOutcomeFields) -> Vec<u8> {
        use qr_common::varint::write_u64 as w;
        let mut out = Vec::new();
        out.extend_from_slice(Self::MAGIC);
        w(&mut out, self.program_fingerprint);
        out.push(match self.tso_mode {
            TsoMode::DrainAtChunk => 0,
            TsoMode::Rsw => 1,
        });
        // Machine configuration.
        w(&mut out, self.cpu.num_cores as u64);
        w(&mut out, self.cpu.drain_interval);
        w(&mut out, self.cpu.mem.l1_sets as u64);
        w(&mut out, self.cpu.mem.l1_ways as u64);
        w(&mut out, self.cpu.mem.store_buffer_entries as u64);
        w(&mut out, self.cpu.mem.miss_penalty);
        w(&mut out, self.cpu.mem.intervention_penalty);
        w(&mut out, self.cpu.mem.hit_cycles);
        // Kernel configuration.
        w(&mut out, self.os.quantum_cycles);
        w(&mut out, self.os.stack_bytes as u64);
        w(&mut out, self.os.stack_guard_bytes as u64);
        w(&mut out, self.os.syscall_base_cycles);
        w(&mut out, self.os.copy_cycles_per_byte);
        w(&mut out, self.os.context_switch_cycles);
        w(&mut out, self.os.input_seed);
        w(&mut out, self.os.max_instructions);
        // Outcome scalars.
        w(&mut out, outcome.cycles);
        w(&mut out, outcome.instructions);
        w(&mut out, outcome.exit_code as u64);
        w(&mut out, outcome.fingerprint);
        w(&mut out, outcome.console.len() as u64);
        out.extend_from_slice(&outcome.console);
        out
    }

    /// Deserializes metadata written by [`RecordingMeta::to_bytes`]
    /// (framed) or by a pre-framing recorder (bare `QRM1` blob).
    fn from_bytes(buf: &[u8]) -> Result<(RecordingMeta, RecordingOutcomeFields)> {
        if !frame::is_framed(buf) {
            return Self::from_inner_bytes(buf, 0);
        }
        let records = frame::read(buf, PayloadKind::Meta, "recording meta")?;
        let [payload] = records[..] else {
            return Err(QrError::Corrupt {
                what: "recording meta".into(),
                offset: frame::HEADER_LEN as u64,
                detail: format!("expected exactly 1 record, found {}", records.len()),
            });
        };
        Self::from_inner_bytes(payload, frame::HEADER_LEN + 4)
    }

    // Sequential field-by-field decode reads clearer than a giant
    // struct literal here.
    #[allow(clippy::field_reassign_with_default)]
    fn from_inner_bytes(
        buf: &[u8],
        base: usize,
    ) -> Result<(RecordingMeta, RecordingOutcomeFields)> {
        use qr_common::varint::read_u64;
        let corrupt = |off: usize, detail: String| QrError::Corrupt {
            what: "recording meta".into(),
            offset: (base + off) as u64,
            detail,
        };
        if buf.len() < 4 || &buf[..4] != Self::MAGIC {
            return Err(corrupt(0, "bad recording-meta magic".into()));
        }
        let mut off = 4usize;
        let next = |buf: &[u8], off: &mut usize| -> Result<u64> {
            let (v, n) =
                read_u64(buf.get(*off..).unwrap_or(&[])).map_err(|e| corrupt(*off, e.to_string()))?;
            *off += n;
            Ok(v)
        };
        let program_fingerprint = next(buf, &mut off)?;
        let tso_mode = match buf.get(off) {
            Some(0) => TsoMode::DrainAtChunk,
            Some(1) => TsoMode::Rsw,
            _ => return Err(corrupt(off, "bad tso mode".into())),
        };
        off += 1;
        let mut cpu = CpuConfig::default();
        cpu.num_cores = next(buf, &mut off)? as usize;
        cpu.drain_interval = next(buf, &mut off)?;
        cpu.mem.tso_mode = tso_mode;
        cpu.mem.l1_sets = next(buf, &mut off)? as u32;
        cpu.mem.l1_ways = next(buf, &mut off)? as u32;
        cpu.mem.store_buffer_entries = next(buf, &mut off)? as usize;
        cpu.mem.miss_penalty = next(buf, &mut off)?;
        cpu.mem.intervention_penalty = next(buf, &mut off)?;
        cpu.mem.hit_cycles = next(buf, &mut off)?;
        let mut os = OsConfig::default();
        os.quantum_cycles = next(buf, &mut off)?;
        os.stack_bytes = next(buf, &mut off)? as u32;
        os.stack_guard_bytes = next(buf, &mut off)? as u32;
        os.syscall_base_cycles = next(buf, &mut off)?;
        os.copy_cycles_per_byte = next(buf, &mut off)?;
        os.context_switch_cycles = next(buf, &mut off)?;
        os.input_seed = next(buf, &mut off)?;
        os.max_instructions = next(buf, &mut off)?;
        let cycles = next(buf, &mut off)?;
        let instructions = next(buf, &mut off)?;
        let exit_code = next(buf, &mut off)? as u32;
        let fingerprint = next(buf, &mut off)?;
        let console_len = next(buf, &mut off)? as usize;
        let end = off
            .checked_add(console_len)
            .filter(|&e| e <= buf.len())
            .ok_or_else(|| corrupt(off, "truncated console".into()))?;
        let console = buf[off..end].to_vec();
        if end != buf.len() {
            return Err(corrupt(end, format!("{} trailing bytes", buf.len() - end)));
        }
        Ok((
            RecordingMeta { program_fingerprint, tso_mode, cpu, os },
            RecordingOutcomeFields { cycles, instructions, exit_code, fingerprint, console },
        ))
    }
}

/// Scalar outcome fields persisted alongside the metadata.
struct RecordingOutcomeFields {
    cycles: u64,
    instructions: u64,
    exit_code: u32,
    fingerprint: u64,
    console: Vec<u8>,
}

impl Recording {
    /// Memory-log bytes per 1000 recorded instructions — the paper's
    /// log-generation-rate metric (E1), under the configured encoding.
    pub fn log_bytes_per_kilo_instruction(&self, encoding: quickrec_core::Encoding) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        let bytes = self.chunks.to_bytes(encoding).len() as f64;
        bytes * 1000.0 / self.instructions as f64
    }

    /// File names used by [`Recording::save`] within the target directory.
    pub const META_FILE: &'static str = "meta.qrm";
    /// Chunk-log file name.
    pub const CHUNKS_FILE: &'static str = "chunks.qrl";
    /// Input-log file name.
    pub const INPUTS_FILE: &'static str = "inputs.qrl";
    /// Footprint-log file name (absent in legacy recordings).
    pub const FOOTPRINTS_FILE: &'static str = "footprints.qrl";
    /// Format-manifest file name (absent in v1/v2 recordings; see
    /// [`crate::format`]).
    pub const FORMAT_FILE: &'static str = "format.qrv";
    /// Checkpoint-index sidecar file name (optional: a recording without
    /// one replays from scratch, and the index can be regenerated from
    /// the logs at any time).
    pub const CHECKPOINTS_FILE: &'static str = "checkpoints.qrc";
    /// Partial-order sidecar file name (present only for recordings made
    /// under [`OrderMode::PartialOrder`]).
    pub const ORDER_FILE: &'static str = "order.qrp";

    /// The ordering mode this recording was made under, inferred from
    /// the presence of the `order.qrp` sidecar.
    pub fn order_mode(&self) -> OrderMode {
        if self.order.is_some() { OrderMode::PartialOrder } else { OrderMode::TotalOrder }
    }

    /// Derives the partial-order log of this recording from its
    /// timestamp-merged timeline: chunk footprints give conflict edges,
    /// successful `SYS_SPAWN` records give spawn edges, and input events
    /// chain the global injection order. The timestamps are consumed
    /// here and stripped — the resulting log is timestamp-free.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::InvalidConfig`] when the footprint sidecar is
    /// missing (there is no conflict evidence to derive edges from) and
    /// [`QrError::LogDecode`] for an ambiguous timeline (duplicate
    /// timestamps).
    pub fn derive_order(&self) -> Result<(OrderLog, DeriveStats)> {
        let footprints = self.footprints.as_ref().ok_or_else(|| {
            QrError::InvalidConfig(
                "partial-order derivation needs the footprint sidecar".into(),
            )
        })?;
        let schedule = self.chunks.replay_schedule()?;
        let mut raw: Vec<(u64, PoEvent)> = Vec::with_capacity(
            schedule.len() + self.inputs.events().len(),
        );
        for packet in &schedule {
            raw.push((
                packet.timestamp.0,
                PoEvent {
                    tid: packet.tid,
                    footprint: footprints.get(packet.timestamp),
                    is_input: false,
                    spawns: None,
                },
            ));
        }
        for event in self.inputs.events() {
            let spawns = match event {
                InputEvent::Syscall { record, .. }
                    if record.number == qr_isa::abi::SYS_SPAWN
                        && record.result != qr_os::kernel::EFAULT =>
                {
                    Some(qr_common::ThreadId(record.result))
                }
                _ => None,
            };
            raw.push((
                event.ts().0,
                PoEvent {
                    tid: event.tid(),
                    footprint: footprints.get(event.ts()),
                    is_input: true,
                    spawns,
                },
            ));
        }
        raw.sort_by_key(|&(ts, _)| ts);
        if let Some(pair) = raw.windows(2).find(|pair| pair[0].0 == pair[1].0) {
            return Err(QrError::LogDecode(format!(
                "duplicate timeline timestamp {} — ordering is ambiguous",
                pair[0].0
            )));
        }
        let events: Vec<PoEvent> = raw.into_iter().map(|(_, ev)| ev).collect();
        po::derive(&events)
    }

    /// Serializes the recording into its per-file byte images — the
    /// exact bytes [`Recording::save`] would write to disk. Storage
    /// backends (the `qr-store` repository, the `quickrecd` wire
    /// protocol) consume these without touching the filesystem.
    pub fn to_parts(&self, encoding: quickrec_core::Encoding) -> RecordingParts {
        let outcome = RecordingOutcomeFields {
            cycles: self.cycles,
            instructions: self.instructions,
            exit_code: self.exit_code,
            fingerprint: self.fingerprint,
            console: self.console.clone(),
        };
        let mut manifest =
            crate::format::FormatManifest::current(encoding, self.footprints.is_some());
        if self.order.is_some() {
            manifest = manifest.with_order();
        }
        RecordingParts {
            meta: self.meta.to_bytes(&outcome),
            chunks: self.chunks.to_bytes(encoding),
            inputs: self.inputs.to_bytes(),
            footprints: self.footprints.as_ref().map(|f| f.to_bytes()),
            format: Some(manifest.to_bytes()),
            checkpoints: None,
            order: self.order.as_ref().map(|o| o.to_bytes()),
        }
    }

    /// Reconstructs a recording from per-file byte images (the inverse
    /// of [`Recording::to_parts`], and what [`Recording::load`] does
    /// after reading the files).
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Corrupt`] with byte-offset context for
    /// malformed or version-mismatched images, [`QrError::LogDecode`]
    /// for internally inconsistent ones.
    pub fn from_parts(parts: &RecordingParts) -> Result<Recording> {
        // A present format manifest must decode and agree with the chunk
        // log's actual encoding; its absence is legal (v1/v2 layouts).
        if let Some(buf) = &parts.format {
            let manifest = crate::format::FormatManifest::from_bytes(buf)?;
            if let Some(actual) = quickrec_core::Encoding::sniff_container(&parts.chunks) {
                if actual != manifest.encoding {
                    return Err(QrError::LogDecode(format!(
                        "format manifest claims {} encoding but the chunk log is {}",
                        manifest.encoding.name(),
                        actual.name()
                    )));
                }
            }
            // The manifest's payload list and the actual file set must
            // agree about the ordering sidecar in both directions.
            let claims_order = manifest.payloads.contains(&PayloadKind::OrderLog);
            if claims_order != parts.order.is_some() {
                return Err(QrError::LogDecode(if claims_order {
                    "format manifest lists an order log but order.qrp is missing".into()
                } else {
                    "order.qrp present but the format manifest does not list it".into()
                }));
            }
        }
        let (meta, outcome) = RecordingMeta::from_bytes(&parts.meta)?;
        let chunks = ChunkLog::from_bytes(&parts.chunks)?;
        let inputs = InputLog::from_bytes(&parts.inputs)?;
        let footprints = match &parts.footprints {
            Some(buf) => Some(FootprintLog::from_bytes(buf)?),
            None => None,
        };
        let order = match &parts.order {
            Some(buf) => Some(OrderLog::from_bytes(buf)?),
            None => None,
        };
        let recording = Recording {
            chunks,
            inputs,
            footprints,
            meta,
            cycles: outcome.cycles,
            instructions: outcome.instructions,
            console: outcome.console,
            exit_code: outcome.exit_code,
            fingerprint: outcome.fingerprint,
            recorder_stats: RecorderStats::default(),
            overhead: crate::overhead::OverheadBreakdown::default(),
            order,
        };
        recording.check_consistency()?;
        Ok(recording)
    }

    /// Persists the recording into `dir` (created if missing) as three
    /// files — metadata, the chunk log (in the encoding of `encoding`)
    /// and the input log — plus the footprint sidecar when present.
    ///
    /// Recorder statistics and the overhead breakdown are measurement
    /// artifacts and are not persisted; [`Recording::load`] returns them
    /// zeroed.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Execution`] wrapping any I/O failure.
    pub fn save(&self, dir: &std::path::Path, encoding: quickrec_core::Encoding) -> Result<()> {
        self.to_parts(encoding).save(dir)
    }

    /// Loads a recording previously written by [`Recording::save`].
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Execution`] naming the file for I/O failures
    /// (a missing `chunks.qrl` and a missing `meta.qrm` are distinct
    /// errors) and [`QrError::Corrupt`] with byte-offset context for
    /// malformed or version-mismatched files.
    pub fn load(dir: &std::path::Path) -> Result<Recording> {
        Self::from_parts(&RecordingParts::read(dir)?)
    }

    /// Loads as much of a torn or corrupted recording as survives its
    /// checksums: the metadata must decode strictly (it anchors replay),
    /// but the chunk and input logs are salvaged to their longest
    /// complete, checksum-valid prefixes.
    ///
    /// Consistency checks that assume a complete log (instruction-count
    /// coverage) are deliberately skipped; the [`RecoveryInfo`] reports
    /// what was lost.
    ///
    /// # Errors
    ///
    /// Returns an error only when the metadata file is unreadable — a
    /// recording without its platform metadata cannot anchor a replay.
    pub fn load_salvaged(dir: &std::path::Path) -> Result<(Recording, RecoveryInfo)> {
        Self::salvage_from_parts(&RecordingParts::read(dir)?)
    }

    /// [`Recording::load_salvaged`] over in-memory file images: the
    /// metadata must decode strictly, the logs salvage to their longest
    /// valid prefixes. Storage backends route torn entries through this
    /// so damage degrades instead of failing hard.
    ///
    /// # Errors
    ///
    /// Returns an error only when the metadata image is undecodable.
    pub fn salvage_from_parts(parts: &RecordingParts) -> Result<(Recording, RecoveryInfo)> {
        let (meta, outcome) = RecordingMeta::from_bytes(&parts.meta)?;
        let (chunks, chunk_salvage) = ChunkLog::salvage_from_bytes(&parts.chunks);
        let (inputs, input_salvage) = InputLog::salvage_from_bytes(&parts.inputs);
        // A torn footprint sidecar salvages to a (possibly partial)
        // prefix; parallel replay checks coverage before relying on it.
        let footprints =
            parts.footprints.as_ref().map(|buf| FootprintLog::salvage_from_bytes(buf));
        // A torn ordering sidecar degrades to its longest clean edge
        // prefix — replay still honours every edge that survived.
        let (order, order_salvage) = match &parts.order {
            Some(buf) => {
                let (log, salvage) = OrderLog::salvage_from_bytes(buf);
                (Some(log), Some(salvage))
            }
            None => (None, None),
        };
        let recording = Recording {
            chunks,
            inputs,
            footprints,
            meta,
            cycles: outcome.cycles,
            instructions: outcome.instructions,
            console: outcome.console,
            exit_code: outcome.exit_code,
            fingerprint: outcome.fingerprint,
            recorder_stats: RecorderStats::default(),
            overhead: crate::overhead::OverheadBreakdown::default(),
            order,
        };
        Ok((
            recording,
            RecoveryInfo { chunks: chunk_salvage, inputs: input_salvage, order: order_salvage },
        ))
    }

    /// Integrity-checks every file of a saved recording without building
    /// one: full strict decode of metadata, chunk log and input log,
    /// reporting per-file size, format and the first fault (if any).
    pub fn verify_dir(dir: &std::path::Path) -> VerifyReport {
        let mut files = Vec::new();
        files.push(FileCheck::run(dir, Self::META_FILE, |buf| {
            RecordingMeta::from_bytes(buf).map(|_| ())
        }));
        files.push(FileCheck::run(dir, Self::CHUNKS_FILE, |buf| {
            ChunkLog::from_bytes(buf).map(|_| ())
        }));
        files.push(FileCheck::run(dir, Self::INPUTS_FILE, |buf| {
            InputLog::from_bytes(buf).map(|_| ())
        }));
        // The footprint sidecar is optional: legacy recordings without
        // one still verify clean, but a present-and-corrupt one fails.
        if dir.join(Self::FOOTPRINTS_FILE).exists() {
            files.push(FileCheck::run(dir, Self::FOOTPRINTS_FILE, |buf| {
                FootprintLog::from_bytes(buf).map(|_| ())
            }));
        }
        // Same contract for the format manifest (v1/v2 layouts lack it).
        if dir.join(Self::FORMAT_FILE).exists() {
            files.push(FileCheck::run(dir, Self::FORMAT_FILE, |buf| {
                crate::format::FormatManifest::from_bytes(buf).map(|_| ())
            }));
        }
        // The checkpoint index is a replay cache: optional, and checked
        // here at the container level only (the replayer owns its inner
        // layout and regenerates it when absent).
        if dir.join(Self::CHECKPOINTS_FILE).exists() {
            files.push(FileCheck::run(dir, Self::CHECKPOINTS_FILE, |buf| {
                frame::read(buf, PayloadKind::CheckpointIndex, "checkpoint index").map(|_| ())
            }));
        }
        // The ordering sidecar only exists for partial-order recordings;
        // when present it must decode strictly end to end.
        if dir.join(Self::ORDER_FILE).exists() {
            files.push(FileCheck::run(dir, Self::ORDER_FILE, |buf| {
                OrderLog::from_bytes(buf).map(|_| ())
            }));
        }
        VerifyReport { files }
    }

    /// Validates internal consistency (chunk instruction counts vs. the
    /// retired total; monotonic timestamps).
    ///
    /// # Errors
    ///
    /// Returns [`QrError::LogDecode`] describing the inconsistency.
    pub fn check_consistency(&self) -> Result<()> {
        self.chunks.replay_schedule()?;
        let chunk_instructions = self.chunks.total_instructions();
        if chunk_instructions > self.instructions {
            return Err(QrError::LogDecode(format!(
                "chunks cover {chunk_instructions} instructions but only {} retired",
                self.instructions
            )));
        }
        Ok(())
    }
}

/// Reads one recording file, naming it in the error on failure.
fn read_file(dir: &std::path::Path, name: &str) -> Result<Vec<u8>> {
    std::fs::read(dir.join(name))
        .map_err(|e| QrError::Execution { detail: format!("reading {name}: {e}") })
}

/// The per-file byte images of a saved recording — `meta.qrm`,
/// `chunks.qrl`, `inputs.qrl`, the optional `footprints.qrl` sidecar,
/// the optional `format.qrv` manifest and the optional
/// `checkpoints.qrc` index, exactly as they appear on disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordingParts {
    /// `meta.qrm` image.
    pub meta: Vec<u8>,
    /// `chunks.qrl` image.
    pub chunks: Vec<u8>,
    /// `inputs.qrl` image.
    pub inputs: Vec<u8>,
    /// `footprints.qrl` image (`None` for legacy recordings).
    pub footprints: Option<Vec<u8>>,
    /// `format.qrv` image (`None` for v1/v2 recordings; see
    /// [`crate::format`]).
    pub format: Option<Vec<u8>>,
    /// `checkpoints.qrc` image (`None` until a checkpoint index is
    /// attached; always optional and regenerable).
    pub checkpoints: Option<Vec<u8>>,
    /// `order.qrp` image (`None` for total-order recordings).
    pub order: Option<Vec<u8>>,
}

impl RecordingParts {
    /// `(file name, bytes)` view over the present parts, in the layout
    /// order [`Recording::save`] writes them.
    pub fn files(&self) -> Vec<(&'static str, &[u8])> {
        let mut out = vec![
            (Recording::META_FILE, self.meta.as_slice()),
            (Recording::CHUNKS_FILE, self.chunks.as_slice()),
            (Recording::INPUTS_FILE, self.inputs.as_slice()),
        ];
        if let Some(fp) = &self.footprints {
            out.push((Recording::FOOTPRINTS_FILE, fp.as_slice()));
        }
        if let Some(fm) = &self.format {
            out.push((Recording::FORMAT_FILE, fm.as_slice()));
        }
        if let Some(cp) = &self.checkpoints {
            out.push((Recording::CHECKPOINTS_FILE, cp.as_slice()));
        }
        if let Some(ord) = &self.order {
            out.push((Recording::ORDER_FILE, ord.as_slice()));
        }
        out
    }

    /// Attaches a serialized checkpoint index and, when a format
    /// manifest is present, rewrites it so the manifest's payload list
    /// keeps describing exactly what the recording directory holds.
    ///
    /// # Errors
    ///
    /// Returns the manifest's decode error when the existing
    /// `format.qrv` is unreadable (the index is not attached then).
    pub fn attach_checkpoints(&mut self, bytes: Vec<u8>) -> Result<()> {
        if let Some(buf) = &self.format {
            let mut manifest = crate::format::FormatManifest::from_bytes(buf)?;
            if !manifest.payloads.contains(&PayloadKind::CheckpointIndex) {
                manifest.payloads.push(PayloadKind::CheckpointIndex);
                manifest.payloads.sort_by_key(|k| k.code());
            }
            self.format = Some(manifest.to_bytes());
        }
        self.checkpoints = Some(bytes);
        Ok(())
    }

    /// Assembles parts from `(file name, bytes)` pairs (the inverse of
    /// [`RecordingParts::files`]; unknown names are rejected).
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Corrupt`] when a required file is missing or a
    /// name is not part of the recording layout.
    pub fn from_files<S: AsRef<str>>(files: &[(S, Vec<u8>)]) -> Result<RecordingParts> {
        let mut meta = None;
        let mut chunks = None;
        let mut inputs = None;
        let mut footprints = None;
        let mut format = None;
        let mut checkpoints = None;
        let mut order = None;
        for (name, bytes) in files {
            match name.as_ref() {
                n if n == Recording::META_FILE => meta = Some(bytes.clone()),
                n if n == Recording::CHUNKS_FILE => chunks = Some(bytes.clone()),
                n if n == Recording::INPUTS_FILE => inputs = Some(bytes.clone()),
                n if n == Recording::FOOTPRINTS_FILE => footprints = Some(bytes.clone()),
                n if n == Recording::FORMAT_FILE => format = Some(bytes.clone()),
                n if n == Recording::CHECKPOINTS_FILE => checkpoints = Some(bytes.clone()),
                n if n == Recording::ORDER_FILE => order = Some(bytes.clone()),
                other => {
                    return Err(QrError::Corrupt {
                        what: "recording file set".into(),
                        offset: 0,
                        detail: format!("unexpected file `{other}`"),
                    })
                }
            }
        }
        let require = |part: Option<Vec<u8>>, name: &str| {
            part.ok_or_else(|| QrError::Corrupt {
                what: "recording file set".into(),
                offset: 0,
                detail: format!("missing `{name}`"),
            })
        };
        Ok(RecordingParts {
            meta: require(meta, Recording::META_FILE)?,
            chunks: require(chunks, Recording::CHUNKS_FILE)?,
            inputs: require(inputs, Recording::INPUTS_FILE)?,
            footprints,
            format,
            checkpoints,
            order,
        })
    }

    /// Writes the parts into `dir` (created if missing).
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Execution`] wrapping any I/O failure.
    pub fn save(&self, dir: &std::path::Path) -> Result<()> {
        let io = |e: std::io::Error| QrError::Execution { detail: format!("saving recording: {e}") };
        std::fs::create_dir_all(dir).map_err(io)?;
        for (name, bytes) in self.files() {
            std::fs::write(dir.join(name), bytes).map_err(io)?;
        }
        Ok(())
    }

    /// Reads the parts of a recording saved in `dir` (a missing
    /// footprint sidecar is legal; the three core files are not).
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Execution`] naming the first unreadable
    /// required file.
    pub fn read(dir: &std::path::Path) -> Result<RecordingParts> {
        Ok(RecordingParts {
            meta: read_file(dir, Recording::META_FILE)?,
            chunks: read_file(dir, Recording::CHUNKS_FILE)?,
            inputs: read_file(dir, Recording::INPUTS_FILE)?,
            footprints: std::fs::read(dir.join(Recording::FOOTPRINTS_FILE)).ok(),
            format: std::fs::read(dir.join(Recording::FORMAT_FILE)).ok(),
            checkpoints: std::fs::read(dir.join(Recording::CHECKPOINTS_FILE)).ok(),
            order: std::fs::read(dir.join(Recording::ORDER_FILE)).ok(),
        })
    }
}

/// What [`Recording::load_salvaged`] recovered (and lost) per log file.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryInfo {
    /// Chunk-log salvage outcome.
    pub chunks: SalvagedPackets,
    /// Input-log salvage outcome.
    pub inputs: InputSalvage,
    /// Ordering-sidecar salvage outcome (`None` for total-order
    /// recordings, which have no `order.qrp`).
    pub order: Option<OrderSalvage>,
}

impl RecoveryInfo {
    /// Whether every log decoded completely (no corruption anywhere).
    pub fn is_clean(&self) -> bool {
        self.chunks.corruption.is_none()
            && self.inputs.corruption.is_none()
            && self.order.as_ref().is_none_or(|o| o.corruption.is_none())
    }
}

/// Per-directory integrity report produced by [`Recording::verify_dir`].
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// One entry per expected recording file.
    pub files: Vec<FileCheck>,
}

impl VerifyReport {
    /// Whether every file decoded cleanly.
    pub fn all_ok(&self) -> bool {
        self.files.iter().all(|f| f.error.is_none())
    }
}

/// Integrity status of one recording file.
#[derive(Debug, Clone)]
pub struct FileCheck {
    /// File name within the recording directory.
    pub name: String,
    /// File size in bytes (`None` when unreadable).
    pub bytes: Option<u64>,
    /// Container format version (`None` for legacy unframed files or
    /// unreadable ones).
    pub version: Option<u8>,
    /// CRC-32-protected records in the framed container.
    pub records: usize,
    /// Whether the file is in the legacy (unframed, checksum-free)
    /// layout.
    pub legacy: bool,
    /// The first fault found, if any.
    pub error: Option<QrError>,
}

impl FileCheck {
    /// Reads `name` in `dir` and runs the strict decoder over it.
    fn run(
        dir: &std::path::Path,
        name: &str,
        decode: impl FnOnce(&[u8]) -> Result<()>,
    ) -> FileCheck {
        let mut check = FileCheck {
            name: name.to_string(),
            bytes: None,
            version: None,
            records: 0,
            legacy: false,
            error: None,
        };
        let buf = match read_file(dir, name) {
            Ok(buf) => buf,
            Err(e) => {
                check.error = Some(e);
                return check;
            }
        };
        check.bytes = Some(buf.len() as u64);
        if frame::is_framed(&buf) {
            check.version = buf.get(4).copied();
            check.records = frame::scan(&buf).records.len();
        } else {
            check.legacy = true;
        }
        check.error = decode(&buf).err();
        check
    }

    /// One-line human-readable status for reports.
    pub fn describe(&self) -> String {
        let size = match self.bytes {
            Some(b) => format!("{b} bytes"),
            None => "unreadable".to_string(),
        };
        let format = if self.legacy {
            "legacy".to_string()
        } else if let Some(v) = self.version {
            format!("framed v{v}, {} records", self.records)
        } else {
            "unknown format".to_string()
        };
        match &self.error {
            Some(e) => format!("{}: {size}, {format} — FAIL: {e}", self.name),
            None => format!("{}: {size}, {format} — ok", self.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        RecordingConfig::default().validate().unwrap();
        assert_eq!(RecordingConfig::with_cores(2).cpu.num_cores, 2);
    }

    #[test]
    fn invalid_component_is_caught() {
        let mut cfg = RecordingConfig::default();
        cfg.mrr.cbuf_entries = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = RecordingConfig::default();
        cfg.os.quantum_cycles = 0;
        assert!(cfg.validate().is_err());
    }
}
