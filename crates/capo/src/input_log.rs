//! The input log: every nondeterministic input of a recorded execution.
//!
//! Capo3 logs what the kernel hands the program — syscall results and
//! the data it copies into user memory — plus signal delivery points and
//! nondeterministic instruction results. Events whose *global position*
//! matters (syscalls with memory effects, signals) carry a timestamp
//! from the same clock that stamps chunks, so the replayer can merge
//! them into one timeline; per-thread-local values (`rdtsc`, `rdrand`)
//! are plain FIFO queues.

use qr_common::frame::{self, PayloadKind};
use qr_common::{varint, Cycle, QrError, Result, ThreadId, VirtAddr};
use qr_cpu::NondetKind;
use qr_os::SyscallRecord;
use std::collections::BTreeMap;

/// Events per framed record: the salvage granularity of a torn input log.
pub const EVENT_GROUP: usize = 64;

/// Framed-record kind byte: a group of timestamped events.
const REC_EVENTS: u8 = 0;
/// Framed-record kind byte: one thread's nondet-value section.
const REC_NONDET: u8 = 1;

/// A timestamped input event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InputEvent {
    /// A completed syscall (result + kernel writes to user memory).
    Syscall {
        /// Global position.
        ts: Cycle,
        /// What to inject at replay.
        record: SyscallRecord,
    },
    /// A SIGUSR delivery to `tid` (immediately after that thread's chunk
    /// with the same boundary).
    Signal {
        /// Global position.
        ts: Cycle,
        /// Target thread.
        tid: ThreadId,
    },
}

impl InputEvent {
    /// The event's global timestamp.
    pub fn ts(&self) -> Cycle {
        match self {
            InputEvent::Syscall { ts, .. } | InputEvent::Signal { ts, .. } => *ts,
        }
    }

    /// The thread the event belongs to.
    pub fn tid(&self) -> ThreadId {
        match self {
            InputEvent::Syscall { record, .. } => record.tid,
            InputEvent::Signal { tid, .. } => *tid,
        }
    }
}

/// All recorded inputs of one execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InputLog {
    events: Vec<InputEvent>,
    nondet: BTreeMap<ThreadId, Vec<(NondetKind, u32)>>,
}

impl InputLog {
    /// Creates an empty log.
    pub fn new() -> InputLog {
        InputLog::default()
    }

    /// Appends a timestamped event. Events must arrive in nondecreasing
    /// timestamp order (the recorder produces them that way).
    pub fn push_event(&mut self, event: InputEvent) {
        debug_assert!(
            self.events.last().is_none_or(|last| last.ts() <= event.ts()),
            "input events must be appended in timestamp order"
        );
        self.events.push(event);
    }

    /// Appends a nondeterministic-instruction value for `tid`.
    pub fn push_nondet(&mut self, tid: ThreadId, kind: NondetKind, value: u32) {
        self.nondet.entry(tid).or_default().push((kind, value));
    }

    /// Timestamped events in order.
    pub fn events(&self) -> &[InputEvent] {
        &self.events
    }

    /// Per-thread nondeterministic values in program order.
    pub fn nondet_for(&self, tid: ThreadId) -> &[(NondetKind, u32)] {
        self.nondet.get(&tid).map_or(&[], Vec::as_slice)
    }

    /// Total count of nondeterministic values.
    pub fn nondet_count(&self) -> usize {
        self.nondet.values().map(Vec::len).sum()
    }

    /// Serialized size in bytes (the "input log size" metric).
    pub fn byte_size(&self) -> usize {
        self.to_bytes().len()
    }

    /// Serializes the log in the crash-consistent framed container
    /// format (see [`qr_common::frame`]): record 0 commits the event and
    /// nondet-thread counts, then one record per [`EVENT_GROUP`]-event
    /// group and one record per thread's nondet section, each CRC-32
    /// protected and independently decodable.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = frame::Writer::new(PayloadKind::InputLog);
        let mut header = Vec::new();
        varint::write_u64(&mut header, self.events.len() as u64);
        varint::write_u64(&mut header, self.nondet.len() as u64);
        w.record(&header);
        for group in self.events.chunks(EVENT_GROUP) {
            let mut payload = vec![REC_EVENTS];
            for ev in group {
                Self::encode_event(ev, &mut payload);
            }
            w.record(&payload);
        }
        for (tid, values) in &self.nondet {
            let mut payload = vec![REC_NONDET];
            varint::write_u64(&mut payload, tid.0 as u64);
            varint::write_u64(&mut payload, values.len() as u64);
            for (kind, value) in values {
                payload.push(match kind {
                    NondetKind::Rdtsc => 0,
                    NondetKind::Rdrand => 1,
                });
                varint::write_u64(&mut payload, *value as u64);
            }
            w.record(&payload);
        }
        w.finish()
    }

    /// Serializes the log in the **legacy** (unframed, checksum-free)
    /// layout written by pre-framing recorders. Kept so the legacy read
    /// path stays testable.
    pub fn to_legacy_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        varint::write_u64(&mut out, self.events.len() as u64);
        for ev in &self.events {
            Self::encode_event(ev, &mut out);
        }
        varint::write_u64(&mut out, self.nondet.len() as u64);
        for (tid, values) in &self.nondet {
            varint::write_u64(&mut out, tid.0 as u64);
            varint::write_u64(&mut out, values.len() as u64);
            for (kind, value) in values {
                out.push(match kind {
                    NondetKind::Rdtsc => 0,
                    NondetKind::Rdrand => 1,
                });
                varint::write_u64(&mut out, *value as u64);
            }
        }
        out
    }

    fn encode_event(ev: &InputEvent, out: &mut Vec<u8>) {
        match ev {
            InputEvent::Syscall { ts, record } => {
                out.push(0);
                varint::write_u64(out, ts.0);
                varint::write_u64(out, record.tid.0 as u64);
                varint::write_u64(out, record.number as u64);
                varint::write_u64(out, record.result as u64);
                varint::write_u64(out, record.writes.len() as u64);
                for (addr, data) in &record.writes {
                    varint::write_u64(out, addr.0 as u64);
                    varint::write_u64(out, data.len() as u64);
                    out.extend_from_slice(data);
                }
            }
            InputEvent::Signal { ts, tid } => {
                out.push(1);
                varint::write_u64(out, ts.0);
                varint::write_u64(out, tid.0 as u64);
            }
        }
    }

    /// Deserializes a log produced by [`InputLog::to_bytes`] (framed) or
    /// by a pre-framing recorder (legacy unframed). A valid legacy log
    /// can never start with the framed magic — its second byte would
    /// have to be `b'R'`, which is not a legal event tag — so routing on
    /// the magic is unambiguous.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Corrupt`] with byte-offset context on
    /// malformed input.
    pub fn from_bytes(buf: &[u8]) -> Result<InputLog> {
        if !frame::is_framed(buf) {
            return InputLog::from_legacy_bytes(buf);
        }
        let (log, salvage) = InputLog::salvage_from_bytes(buf);
        match salvage.corruption {
            Some(err) => Err(err),
            None => Ok(log),
        }
    }

    /// Deserializes a **legacy** (unframed) log. Explicit compatibility
    /// path for logs written before the framed container existed.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Corrupt`] on malformed input.
    pub fn from_legacy_bytes(buf: &[u8]) -> Result<InputLog> {
        let corrupt = |off: usize, detail: String| QrError::Corrupt {
            what: "legacy input log".into(),
            offset: off as u64,
            detail,
        };
        let mut off = 0usize;
        let mut log = InputLog::new();
        let num_events = read_u64_at(buf, &mut off, "input log")?;
        for _ in 0..num_events {
            let ev = decode_event(buf, &mut off, 0)?;
            log.events.push(ev);
        }
        let num_threads = read_u64_at(buf, &mut off, "input log")?;
        // Each nondet section needs at least 2 bytes (tid + count).
        if num_threads > (buf.len() - off.min(buf.len())) as u64 {
            return Err(corrupt(off, format!("implausible nondet thread count {num_threads}")));
        }
        for _ in 0..num_threads {
            let (tid, values) = decode_nondet_section(buf, &mut off, 0)?;
            log.nondet.insert(tid, values);
        }
        if off != buf.len() {
            return Err(corrupt(off, format!("{} trailing bytes", buf.len() - off)));
        }
        Ok(log)
    }

    /// Tolerantly deserializes a framed log, recovering the longest
    /// complete, checksum-valid prefix of a torn or corrupted file.
    /// Never fails: corruption is *described* in the returned
    /// [`InputSalvage`], not fatal.
    pub fn salvage_from_bytes(buf: &[u8]) -> (InputLog, InputSalvage) {
        let what = "input log";
        let mut log = InputLog::new();
        let gone = |err: QrError| InputSalvage {
            expected_events: None,
            expected_threads: None,
            bytes_dropped: buf.len(),
            corruption: Some(err),
        };
        let scanned = frame::scan(buf);
        match scanned.kind {
            Some(PayloadKind::InputLog) => {}
            Some(other) => {
                return (
                    log,
                    gone(QrError::Corrupt {
                        what: what.into(),
                        offset: 5,
                        detail: format!(
                            "container holds a {}, expected an input log",
                            other.name()
                        ),
                    }),
                )
            }
            None => {
                let fault = scanned.fault.expect("scan without kind always faults");
                return (log, gone(fault.to_error(what)));
            }
        }
        let Some((header, rest)) = scanned.records.split_first() else {
            let err = match scanned.fault {
                Some(fault) => fault.to_error(what),
                None => QrError::Corrupt {
                    what: what.into(),
                    offset: frame::HEADER_LEN as u64,
                    detail: "missing input-log header record".into(),
                },
            };
            return (log, gone(err));
        };
        // Parse the header record: committed event + nondet-thread counts.
        let header_base = frame::HEADER_LEN + 4;
        let parse_header = |h: &[u8]| -> std::result::Result<(u64, u64), String> {
            let mut hoff = 0usize;
            let (events, n) = varint::read_u64(h).map_err(|e| e.to_string())?;
            hoff += n;
            let (threads, n) = varint::read_u64(&h[hoff..]).map_err(|e| e.to_string())?;
            hoff += n;
            if hoff != h.len() {
                return Err(format!("{} trailing bytes in header record", h.len() - hoff));
            }
            Ok((events, threads))
        };
        let (expected_events, expected_threads) = match parse_header(header) {
            Ok(pair) => pair,
            Err(detail) => {
                return (
                    log,
                    gone(QrError::Corrupt {
                        what: what.into(),
                        offset: header_base as u64,
                        detail,
                    }),
                )
            }
        };
        let mut corruption = None;
        let mut payload_base = header_base + header.len() + 4 + 4;
        let mut consumed = frame::HEADER_LEN + header.len() + frame::RECORD_OVERHEAD;
        for payload in rest {
            if let Err(err) = decode_record(&mut log, payload, payload_base) {
                corruption = Some(err);
                break;
            }
            consumed += payload.len() + frame::RECORD_OVERHEAD;
            payload_base += payload.len() + frame::RECORD_OVERHEAD;
        }
        if corruption.is_none() {
            if let Some(fault) = scanned.fault {
                corruption = Some(fault.to_error(what));
            } else if log.events.len() as u64 != expected_events
                || log.nondet.len() as u64 != expected_threads
            {
                corruption = Some(QrError::Corrupt {
                    what: what.into(),
                    offset: buf.len() as u64,
                    detail: format!(
                        "header commits {expected_events} events / {expected_threads} nondet \
                         threads but records hold {} / {}",
                        log.events.len(),
                        log.nondet.len()
                    ),
                });
            }
        }
        let salvage = InputSalvage {
            expected_events: Some(expected_events),
            expected_threads: Some(expected_threads),
            bytes_dropped: buf.len().saturating_sub(consumed.min(buf.len())),
            corruption,
        };
        (log, salvage)
    }
}

/// What [`InputLog::salvage_from_bytes`] recovered from a framed input
/// log (the log itself is returned alongside).
#[derive(Debug, Clone, PartialEq)]
pub struct InputSalvage {
    /// Event count the header committed to, if the header survived.
    pub expected_events: Option<u64>,
    /// Nondet-thread count the header committed to, if it survived.
    pub expected_threads: Option<u64>,
    /// Container bytes not covered by salvaged records.
    pub bytes_dropped: usize,
    /// What stopped the salvage (`None` for a fully intact log).
    pub corruption: Option<QrError>,
}

/// Reads one varint at `*off`, advancing it, with byte-offset error
/// context.
fn read_u64_at(buf: &[u8], off: &mut usize, what: &str) -> Result<u64> {
    let (v, n) = varint::read_u64(buf.get(*off..).unwrap_or(&[])).map_err(|e| QrError::Corrupt {
        what: what.into(),
        offset: *off as u64,
        detail: e.to_string(),
    })?;
    *off += n;
    Ok(v)
}

/// Decodes one framed record payload into `log`. `base` is the payload's
/// byte offset within the container, for error context.
fn decode_record(log: &mut InputLog, payload: &[u8], base: usize) -> Result<()> {
    let corrupt = |off: usize, detail: String| QrError::Corrupt {
        what: "input log record".into(),
        offset: (base + off) as u64,
        detail,
    };
    let Some(&kind) = payload.first() else {
        return Err(corrupt(0, "empty record".into()));
    };
    let mut off = 1usize;
    match kind {
        REC_EVENTS => {
            while off < payload.len() {
                let ev = decode_event(payload, &mut off, base)?;
                log.events.push(ev);
            }
        }
        REC_NONDET => {
            let (tid, values) = decode_nondet_section(payload, &mut off, base)?;
            if off != payload.len() {
                return Err(corrupt(off, format!("{} trailing bytes", payload.len() - off)));
            }
            if log.nondet.insert(tid, values).is_some() {
                return Err(corrupt(1, format!("duplicate nondet section for {tid}")));
            }
        }
        other => return Err(corrupt(0, format!("unknown record kind {other}"))),
    }
    Ok(())
}

/// Decodes one timestamped event at `*off`, advancing it. `base` offsets
/// error positions into the surrounding container.
fn decode_event(buf: &[u8], off: &mut usize, base: usize) -> Result<InputEvent> {
    let corrupt = |off: usize, detail: String| QrError::Corrupt {
        what: "input event".into(),
        offset: (base + off) as u64,
        detail,
    };
    let tag = *buf.get(*off).ok_or_else(|| corrupt(*off, "truncated event".into()))?;
    *off += 1;
    match tag {
        0 => {
            let ts = Cycle(read_u64_at(buf, off, "input event")?);
            let tid = ThreadId(read_u64_at(buf, off, "input event")? as u32);
            let number = read_u64_at(buf, off, "input event")? as u32;
            let result = read_u64_at(buf, off, "input event")? as u32;
            let num_writes = read_u64_at(buf, off, "input event")?;
            // Each write needs at least 2 bytes (addr + len varints), so
            // an implausible count is rejected before it can size an
            // allocation.
            let remaining = buf.len().saturating_sub(*off) as u64;
            if num_writes > remaining {
                return Err(corrupt(*off, format!("implausible write count {num_writes}")));
            }
            let mut writes = Vec::with_capacity(num_writes as usize);
            for _ in 0..num_writes {
                let addr = VirtAddr(read_u64_at(buf, off, "input event")? as u32);
                let len = read_u64_at(buf, off, "input event")? as usize;
                let end = off
                    .checked_add(len)
                    .filter(|&e| e <= buf.len())
                    .ok_or_else(|| corrupt(*off, "truncated write payload".into()))?;
                writes.push((addr, buf[*off..end].to_vec()));
                *off = end;
            }
            Ok(InputEvent::Syscall { ts, record: SyscallRecord { tid, number, result, writes } })
        }
        1 => {
            let ts = Cycle(read_u64_at(buf, off, "input event")?);
            let tid = ThreadId(read_u64_at(buf, off, "input event")? as u32);
            Ok(InputEvent::Signal { ts, tid })
        }
        other => Err(corrupt(*off - 1, format!("unknown input event tag {other}"))),
    }
}

/// Decodes one thread's nondet section (tid, count, values) at `*off`.
fn decode_nondet_section(
    buf: &[u8],
    off: &mut usize,
    base: usize,
) -> Result<(ThreadId, Vec<(NondetKind, u32)>)> {
    let corrupt = |off: usize, detail: String| QrError::Corrupt {
        what: "nondet section".into(),
        offset: (base + off) as u64,
        detail,
    };
    let tid = ThreadId(read_u64_at(buf, off, "nondet section")? as u32);
    let count = read_u64_at(buf, off, "nondet section")?;
    // Each value needs at least 2 bytes (kind tag + value varint).
    let remaining = buf.len().saturating_sub(*off) as u64;
    if count > remaining {
        return Err(corrupt(*off, format!("implausible nondet count {count}")));
    }
    let mut values = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let tag = *buf.get(*off).ok_or_else(|| corrupt(*off, "truncated nondet".into()))?;
        *off += 1;
        let kind = match tag {
            0 => NondetKind::Rdtsc,
            1 => NondetKind::Rdrand,
            other => return Err(corrupt(*off - 1, format!("unknown nondet tag {other}"))),
        };
        values.push((kind, read_u64_at(buf, off, "nondet section")? as u32));
    }
    Ok((tid, values))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InputLog {
        let mut log = InputLog::new();
        log.push_event(InputEvent::Syscall {
            ts: Cycle(10),
            record: SyscallRecord {
                tid: ThreadId(0),
                number: 11,
                result: 16,
                writes: vec![(VirtAddr(0x1000), vec![1, 2, 3])],
            },
        });
        log.push_event(InputEvent::Signal { ts: Cycle(20), tid: ThreadId(1) });
        log.push_event(InputEvent::Syscall {
            ts: Cycle(30),
            record: SyscallRecord { tid: ThreadId(1), number: 8, result: 99, writes: vec![] },
        });
        log.push_nondet(ThreadId(0), NondetKind::Rdtsc, 77);
        log.push_nondet(ThreadId(0), NondetKind::Rdrand, 88);
        log.push_nondet(ThreadId(2), NondetKind::Rdrand, 5);
        log
    }

    #[test]
    fn round_trips_through_bytes() {
        let log = sample();
        let bytes = log.to_bytes();
        assert!(frame::is_framed(&bytes));
        assert_eq!(InputLog::from_bytes(&bytes).unwrap(), log);
        assert_eq!(log.byte_size(), bytes.len());
    }

    #[test]
    fn legacy_layout_round_trips() {
        let log = sample();
        let legacy = log.to_legacy_bytes();
        assert!(!frame::is_framed(&legacy));
        assert_eq!(InputLog::from_legacy_bytes(&legacy).unwrap(), log);
        // The auto-detecting path routes legacy bytes correctly too.
        assert_eq!(InputLog::from_bytes(&legacy).unwrap(), log);
    }

    #[test]
    fn truncation_is_detected_at_every_offset() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            let err = InputLog::from_bytes(&bytes[..cut])
                .expect_err(&format!("cut {cut} must error"));
            assert!(matches!(err, QrError::Corrupt { .. }), "cut {cut}: {err}");
        }
    }

    #[test]
    fn single_bit_flip_at_every_byte_is_rejected() {
        let bytes = sample().to_bytes();
        for pos in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[pos] ^= 1 << bit;
                assert!(
                    InputLog::from_bytes(&bad).is_err(),
                    "flip at byte {pos} bit {bit} must be rejected"
                );
            }
        }
    }

    #[test]
    fn salvage_recovers_event_prefix_of_torn_log() {
        let log = sample();
        let bytes = log.to_bytes();
        let (whole, report) = InputLog::salvage_from_bytes(&bytes);
        assert_eq!(whole, log);
        assert!(report.corruption.is_none());
        assert_eq!(report.expected_events, Some(log.events().len() as u64));
        // Tear off the tail: the event prefix must survive exactly.
        for cut in 0..bytes.len() {
            let (torn, report) = InputLog::salvage_from_bytes(&bytes[..cut]);
            assert!(report.corruption.is_some(), "cut {cut}");
            assert_eq!(
                torn.events(),
                &log.events()[..torn.events().len()],
                "cut {cut} salvaged a non-prefix"
            );
        }
    }

    #[test]
    fn decode_never_panics_on_garbage() {
        let mut rng = qr_common::SplitMix64::new(0xfeed_0001);
        for _ in 0..4096 {
            let len = rng.below(256) as usize;
            let mut bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            let _ = InputLog::from_bytes(&bytes);
            let _ = InputLog::salvage_from_bytes(&bytes);
            if bytes.len() >= 4 {
                bytes[..4].copy_from_slice(&frame::MAGIC);
                let _ = InputLog::from_bytes(&bytes);
                let _ = InputLog::salvage_from_bytes(&bytes);
            }
        }
    }

    #[test]
    fn implausible_counts_error_instead_of_allocating() {
        // A legacy log claiming u64::MAX nondet threads must be rejected
        // cheaply, not drive a huge allocation.
        let mut bytes = Vec::new();
        varint::write_u64(&mut bytes, 0); // events
        varint::write_u64(&mut bytes, u64::MAX); // nondet threads
        assert!(InputLog::from_legacy_bytes(&bytes).is_err());
        // Same for a syscall event claiming an absurd write count.
        let mut ev = Vec::new();
        varint::write_u64(&mut ev, 1); // one event
        ev.push(0); // syscall
        for _ in 0..4 {
            varint::write_u64(&mut ev, 1); // ts, tid, number, result
        }
        varint::write_u64(&mut ev, u64::MAX); // writes
        assert!(InputLog::from_legacy_bytes(&ev).is_err());
    }

    #[test]
    fn nondet_queues_are_per_thread_fifo() {
        let log = sample();
        assert_eq!(
            log.nondet_for(ThreadId(0)),
            &[(NondetKind::Rdtsc, 77), (NondetKind::Rdrand, 88)]
        );
        assert_eq!(log.nondet_for(ThreadId(1)), &[]);
        assert_eq!(log.nondet_count(), 3);
    }

    #[test]
    fn event_accessors() {
        let log = sample();
        assert_eq!(log.events()[0].ts(), Cycle(10));
        assert_eq!(log.events()[0].tid(), ThreadId(0));
        assert_eq!(log.events()[1].tid(), ThreadId(1));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "timestamp order")]
    fn out_of_order_events_are_rejected_in_debug() {
        let mut log = InputLog::new();
        log.push_event(InputEvent::Signal { ts: Cycle(10), tid: ThreadId(0) });
        log.push_event(InputEvent::Signal { ts: Cycle(5), tid: ThreadId(0) });
    }

    #[test]
    fn empty_log_round_trips() {
        let log = InputLog::new();
        assert_eq!(InputLog::from_bytes(&log.to_bytes()).unwrap(), log);
    }
}
