//! The input log: every nondeterministic input of a recorded execution.
//!
//! Capo3 logs what the kernel hands the program — syscall results and
//! the data it copies into user memory — plus signal delivery points and
//! nondeterministic instruction results. Events whose *global position*
//! matters (syscalls with memory effects, signals) carry a timestamp
//! from the same clock that stamps chunks, so the replayer can merge
//! them into one timeline; per-thread-local values (`rdtsc`, `rdrand`)
//! are plain FIFO queues.

use qr_common::{varint, Cycle, QrError, Result, ThreadId, VirtAddr};
use qr_cpu::NondetKind;
use qr_os::SyscallRecord;
use std::collections::BTreeMap;

/// A timestamped input event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InputEvent {
    /// A completed syscall (result + kernel writes to user memory).
    Syscall {
        /// Global position.
        ts: Cycle,
        /// What to inject at replay.
        record: SyscallRecord,
    },
    /// A SIGUSR delivery to `tid` (immediately after that thread's chunk
    /// with the same boundary).
    Signal {
        /// Global position.
        ts: Cycle,
        /// Target thread.
        tid: ThreadId,
    },
}

impl InputEvent {
    /// The event's global timestamp.
    pub fn ts(&self) -> Cycle {
        match self {
            InputEvent::Syscall { ts, .. } | InputEvent::Signal { ts, .. } => *ts,
        }
    }

    /// The thread the event belongs to.
    pub fn tid(&self) -> ThreadId {
        match self {
            InputEvent::Syscall { record, .. } => record.tid,
            InputEvent::Signal { tid, .. } => *tid,
        }
    }
}

/// All recorded inputs of one execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InputLog {
    events: Vec<InputEvent>,
    nondet: BTreeMap<ThreadId, Vec<(NondetKind, u32)>>,
}

impl InputLog {
    /// Creates an empty log.
    pub fn new() -> InputLog {
        InputLog::default()
    }

    /// Appends a timestamped event. Events must arrive in nondecreasing
    /// timestamp order (the recorder produces them that way).
    pub fn push_event(&mut self, event: InputEvent) {
        debug_assert!(
            self.events.last().is_none_or(|last| last.ts() <= event.ts()),
            "input events must be appended in timestamp order"
        );
        self.events.push(event);
    }

    /// Appends a nondeterministic-instruction value for `tid`.
    pub fn push_nondet(&mut self, tid: ThreadId, kind: NondetKind, value: u32) {
        self.nondet.entry(tid).or_default().push((kind, value));
    }

    /// Timestamped events in order.
    pub fn events(&self) -> &[InputEvent] {
        &self.events
    }

    /// Per-thread nondeterministic values in program order.
    pub fn nondet_for(&self, tid: ThreadId) -> &[(NondetKind, u32)] {
        self.nondet.get(&tid).map_or(&[], Vec::as_slice)
    }

    /// Total count of nondeterministic values.
    pub fn nondet_count(&self) -> usize {
        self.nondet.values().map(Vec::len).sum()
    }

    /// Serialized size in bytes (the "input log size" metric).
    pub fn byte_size(&self) -> usize {
        self.to_bytes().len()
    }

    /// Serializes the log.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        varint::write_u64(&mut out, self.events.len() as u64);
        for ev in &self.events {
            match ev {
                InputEvent::Syscall { ts, record } => {
                    out.push(0);
                    varint::write_u64(&mut out, ts.0);
                    varint::write_u64(&mut out, record.tid.0 as u64);
                    varint::write_u64(&mut out, record.number as u64);
                    varint::write_u64(&mut out, record.result as u64);
                    varint::write_u64(&mut out, record.writes.len() as u64);
                    for (addr, data) in &record.writes {
                        varint::write_u64(&mut out, addr.0 as u64);
                        varint::write_u64(&mut out, data.len() as u64);
                        out.extend_from_slice(data);
                    }
                }
                InputEvent::Signal { ts, tid } => {
                    out.push(1);
                    varint::write_u64(&mut out, ts.0);
                    varint::write_u64(&mut out, tid.0 as u64);
                }
            }
        }
        varint::write_u64(&mut out, self.nondet.len() as u64);
        for (tid, values) in &self.nondet {
            varint::write_u64(&mut out, tid.0 as u64);
            varint::write_u64(&mut out, values.len() as u64);
            for (kind, value) in values {
                out.push(match kind {
                    NondetKind::Rdtsc => 0,
                    NondetKind::Rdrand => 1,
                });
                varint::write_u64(&mut out, *value as u64);
            }
        }
        out
    }

    /// Deserializes a log produced by [`InputLog::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`QrError::LogDecode`] on malformed input.
    pub fn from_bytes(buf: &[u8]) -> Result<InputLog> {
        let mut off = 0usize;
        let next_u64 = |buf: &[u8], off: &mut usize| -> Result<u64> {
            let (v, n) = varint::read_u64(&buf[*off..])?;
            *off += n;
            Ok(v)
        };
        let mut log = InputLog::new();
        let num_events = next_u64(buf, &mut off)?;
        for _ in 0..num_events {
            let tag = *buf.get(off).ok_or_else(|| QrError::LogDecode("truncated event".into()))?;
            off += 1;
            match tag {
                0 => {
                    let ts = Cycle(next_u64(buf, &mut off)?);
                    let tid = ThreadId(next_u64(buf, &mut off)? as u32);
                    let number = next_u64(buf, &mut off)? as u32;
                    let result = next_u64(buf, &mut off)? as u32;
                    let num_writes = next_u64(buf, &mut off)?;
                    let mut writes = Vec::with_capacity(num_writes as usize);
                    for _ in 0..num_writes {
                        let addr = VirtAddr(next_u64(buf, &mut off)? as u32);
                        let len = next_u64(buf, &mut off)? as usize;
                        let end = off
                            .checked_add(len)
                            .filter(|&e| e <= buf.len())
                            .ok_or_else(|| QrError::LogDecode("truncated write payload".into()))?;
                        writes.push((addr, buf[off..end].to_vec()));
                        off = end;
                    }
                    log.events.push(InputEvent::Syscall {
                        ts,
                        record: SyscallRecord { tid, number, result, writes },
                    });
                }
                1 => {
                    let ts = Cycle(next_u64(buf, &mut off)?);
                    let tid = ThreadId(next_u64(buf, &mut off)? as u32);
                    log.events.push(InputEvent::Signal { ts, tid });
                }
                other => {
                    return Err(QrError::LogDecode(format!("unknown input event tag {other}")))
                }
            }
        }
        let num_threads = next_u64(buf, &mut off)?;
        for _ in 0..num_threads {
            let tid = ThreadId(next_u64(buf, &mut off)? as u32);
            let count = next_u64(buf, &mut off)?;
            let mut values = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let tag =
                    *buf.get(off).ok_or_else(|| QrError::LogDecode("truncated nondet".into()))?;
                off += 1;
                let kind = match tag {
                    0 => NondetKind::Rdtsc,
                    1 => NondetKind::Rdrand,
                    other => {
                        return Err(QrError::LogDecode(format!("unknown nondet tag {other}")))
                    }
                };
                values.push((kind, next_u64(buf, &mut off)? as u32));
            }
            log.nondet.insert(tid, values);
        }
        Ok(log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InputLog {
        let mut log = InputLog::new();
        log.push_event(InputEvent::Syscall {
            ts: Cycle(10),
            record: SyscallRecord {
                tid: ThreadId(0),
                number: 11,
                result: 16,
                writes: vec![(VirtAddr(0x1000), vec![1, 2, 3])],
            },
        });
        log.push_event(InputEvent::Signal { ts: Cycle(20), tid: ThreadId(1) });
        log.push_event(InputEvent::Syscall {
            ts: Cycle(30),
            record: SyscallRecord { tid: ThreadId(1), number: 8, result: 99, writes: vec![] },
        });
        log.push_nondet(ThreadId(0), NondetKind::Rdtsc, 77);
        log.push_nondet(ThreadId(0), NondetKind::Rdrand, 88);
        log.push_nondet(ThreadId(2), NondetKind::Rdrand, 5);
        log
    }

    #[test]
    fn round_trips_through_bytes() {
        let log = sample();
        let bytes = log.to_bytes();
        assert_eq!(InputLog::from_bytes(&bytes).unwrap(), log);
        assert_eq!(log.byte_size(), bytes.len());
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = sample().to_bytes();
        for cut in [1usize, 5, bytes.len() / 2, bytes.len() - 1] {
            assert!(InputLog::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn nondet_queues_are_per_thread_fifo() {
        let log = sample();
        assert_eq!(
            log.nondet_for(ThreadId(0)),
            &[(NondetKind::Rdtsc, 77), (NondetKind::Rdrand, 88)]
        );
        assert_eq!(log.nondet_for(ThreadId(1)), &[]);
        assert_eq!(log.nondet_count(), 3);
    }

    #[test]
    fn event_accessors() {
        let log = sample();
        assert_eq!(log.events()[0].ts(), Cycle(10));
        assert_eq!(log.events()[0].tid(), ThreadId(0));
        assert_eq!(log.events()[1].tid(), ThreadId(1));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "timestamp order")]
    fn out_of_order_events_are_rejected_in_debug() {
        let mut log = InputLog::new();
        log.push_event(InputEvent::Signal { ts: Cycle(10), tid: ThreadId(0) });
        log.push_event(InputEvent::Signal { ts: Cycle(5), tid: ThreadId(0) });
    }

    #[test]
    fn empty_log_round_trips() {
        let log = InputLog::new();
        assert_eq!(InputLog::from_bytes(&log.to_bytes()).unwrap(), log);
    }
}
