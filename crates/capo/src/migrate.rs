//! In-place upgrade of saved recordings to the current format.
//!
//! `quickrec migrate <dir>` brings a v1 (legacy unframed) or v2 (framed,
//! no manifest) recording up to the current v3 layout. The upgrade is
//! **crash-consistent**, using the same staging-dir + atomic-rename
//! commit protocol as the `qr-store` repository: the upgraded recording
//! is fully written into a hidden sibling staging directory, then swapped
//! in with two renames (original → backup, staging → original), and the
//! backup is removed last. A crash at any point leaves either the old or
//! the new recording intact — never a torn directory — and
//! [`recover`] (run automatically at the start of every migrate) rolls
//! the directory forward or back to a consistent state.
//!
//! Migration is **idempotent at the byte level**: migrating a v3
//! recording verifies it and changes nothing on disk.

use crate::format::{FormatManifest, RecordingVersion};
use crate::recording::{Recording, RecordingParts};
use qr_common::{QrError, Result};
use quickrec_core::Encoding;
use std::path::{Path, PathBuf};

/// Prefix of the staging directory a migrate writes the upgraded
/// recording into (sibling of the target).
pub const STAGING_PREFIX: &str = ".qr-migrate-new-";
/// Prefix of the backup directory holding the original recording during
/// the swap (sibling of the target).
pub const BACKUP_PREFIX: &str = ".qr-migrate-old-";

/// What one migrate run did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrateReport {
    /// Format generation found on disk.
    pub from: RecordingVersion,
    /// Format generation after the run (always the current one).
    pub to: RecordingVersion,
    /// Whether any bytes changed on disk (`false` for an already-current
    /// recording — the byte-level no-op).
    pub changed: bool,
    /// Chunk encoding of the (upgraded) recording.
    pub encoding: Encoding,
    /// The recording's architectural-outcome fingerprint, preserved
    /// across the upgrade.
    pub fingerprint: u64,
}

impl MigrateReport {
    /// One-line human-readable summary for CLI output.
    pub fn describe(&self) -> String {
        if self.changed {
            format!(
                "migrated {} -> {} ({} encoding, fingerprint {:#018x})",
                self.from, self.to, self.encoding.name(), self.fingerprint
            )
        } else {
            format!(
                "already {} ({} encoding, fingerprint {:#018x}); nothing to do",
                self.to, self.encoding.name(), self.fingerprint
            )
        }
    }
}

/// Injectable crash points for fault-injection tests: the migrate stops
/// dead (returning an error) *after* the named step has reached disk,
/// simulating a power cut at the worst moments of the commit protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// After the staging directory is fully written, before any rename.
    AfterStage,
    /// After the original was renamed to the backup, before the staging
    /// dir was renamed into place (the recording is momentarily absent).
    AfterBackup,
    /// After the staging dir was renamed into place, before the backup
    /// was removed.
    AfterSwap,
}

fn io_err(context: &str, e: std::io::Error) -> QrError {
    QrError::Execution { detail: format!("{context}: {e}") }
}

/// The staging/backup sibling paths for a migrate target.
fn protocol_paths(dir: &Path) -> Result<(PathBuf, PathBuf)> {
    let name = dir
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| QrError::Execution {
            detail: format!("migrate target `{}` has no usable directory name", dir.display()),
        })?;
    let parent = dir.parent().filter(|p| !p.as_os_str().is_empty());
    let parent = parent.map(Path::to_path_buf).unwrap_or_else(|| PathBuf::from("."));
    Ok((
        parent.join(format!("{STAGING_PREFIX}{name}")),
        parent.join(format!("{BACKUP_PREFIX}{name}")),
    ))
}

/// Rolls a migrate target forward or back to a consistent state after a
/// crash, using the protocol's on-disk markers. Returns `true` when any
/// leftover state was cleaned up. Safe (and a no-op) on a healthy
/// directory; [`migrate`] runs this first.
///
/// Recovery rules, in order:
///
/// - backup present, target present: the swap committed (or never
///   started tearing anything down) — the backup and any staging dir
///   are leftovers; remove them.
/// - backup present, target missing: crashed between the two renames —
///   restore the backup as the target, remove any staging dir (roll
///   *back*; the next migrate redoes the work).
/// - staging present only: crashed before the swap — remove it.
///
/// # Errors
///
/// Returns [`QrError::Execution`] wrapping any I/O failure.
pub fn recover(dir: &Path) -> Result<bool> {
    let (staging, backup) = protocol_paths(dir)?;
    let mut cleaned = false;
    if backup.exists() {
        if dir.exists() {
            std::fs::remove_dir_all(&backup)
                .map_err(|e| io_err("removing migrate backup", e))?;
        } else {
            std::fs::rename(&backup, dir)
                .map_err(|e| io_err("restoring migrate backup", e))?;
        }
        cleaned = true;
    }
    if staging.exists() {
        std::fs::remove_dir_all(&staging)
            .map_err(|e| io_err("removing migrate staging dir", e))?;
        cleaned = true;
    }
    Ok(cleaned)
}

/// Upgrades the recording in `dir` to the current format, in place.
///
/// Already-current recordings are verified and left byte-for-byte
/// untouched. See the module docs for the commit protocol.
///
/// # Errors
///
/// Returns [`QrError::Execution`] for I/O failures and whatever
/// structured error strict decoding of the source recording produces —
/// a recording that cannot be fully decoded is not migrated (salvage it
/// first).
pub fn migrate(dir: &Path) -> Result<MigrateReport> {
    migrate_with_crash(dir, None)
}

/// [`migrate`] with an injectable crash point — the fault-injection
/// entry the conformance suite uses to prove the commit protocol never
/// leaves a torn directory. Production callers pass `None` via
/// [`migrate`].
///
/// # Errors
///
/// As [`migrate`]; additionally returns [`QrError::Execution`] with an
/// "injected crash" detail when the requested crash point is reached.
pub fn migrate_with_crash(dir: &Path, crash: Option<CrashPoint>) -> Result<MigrateReport> {
    recover(dir)?;
    let parts = RecordingParts::read(dir)?;
    let from = RecordingVersion::detect(&parts);
    // Strict decode: migration refuses recordings it cannot fully and
    // faithfully re-encode.
    let recording = Recording::from_parts(&parts)?;
    if matches!(from, RecordingVersion::V3 | RecordingVersion::V4) {
        // Both current generations (v4 is v3 plus the partial-order
        // sidecar) verify in place without touching a byte.
        let manifest = FormatManifest::from_bytes(
            parts.format.as_deref().ok_or_else(|| QrError::Corrupt {
                what: "recording file set".into(),
                offset: 0,
                detail: format!("{from} recording is missing format.qrv"),
            })?,
        )?;
        return Ok(MigrateReport {
            from,
            to: from,
            changed: false,
            encoding: manifest.encoding,
            fingerprint: recording.fingerprint,
        });
    }
    // Preserve the source's chunk encoding across the upgrade.
    let encoding = Encoding::sniff_container(&parts.chunks).ok_or_else(|| QrError::Corrupt {
        what: "chunk log".into(),
        offset: 0,
        detail: "cannot identify chunk encoding".into(),
    })?;
    let upgraded = recording.to_parts(encoding);
    // Prove the upgrade decodes to the same execution before committing.
    let reread = Recording::from_parts(&upgraded)?;
    if reread.fingerprint != recording.fingerprint {
        return Err(QrError::ReplayDivergence(format!(
            "migrated recording fingerprint {:#x} differs from source {:#x}",
            reread.fingerprint, recording.fingerprint
        )));
    }
    // Commit protocol: stage fully, swap with two renames, drop backup.
    let (staging, backup) = protocol_paths(dir)?;
    upgraded.save(&staging)?;
    let crashed = |point: CrashPoint| {
        Err(QrError::Execution { detail: format!("injected crash at {point:?}") })
    };
    if crash == Some(CrashPoint::AfterStage) {
        return crashed(CrashPoint::AfterStage);
    }
    std::fs::rename(dir, &backup).map_err(|e| io_err("parking original recording", e))?;
    if crash == Some(CrashPoint::AfterBackup) {
        return crashed(CrashPoint::AfterBackup);
    }
    std::fs::rename(&staging, dir).map_err(|e| io_err("committing migrated recording", e))?;
    if crash == Some(CrashPoint::AfterSwap) {
        return crashed(CrashPoint::AfterSwap);
    }
    std::fs::remove_dir_all(&backup).map_err(|e| io_err("removing migrate backup", e))?;
    Ok(MigrateReport {
        from,
        to: RecordingVersion::V3,
        changed: true,
        encoding,
        fingerprint: recording.fingerprint,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input_log::InputLog;
    use crate::recording::RecordingMeta;
    use qr_common::frame::{self, PayloadKind};
    use qr_mem::TsoMode;
    use quickrec_core::{ChunkLog, ChunkPacket, TerminationReason};
    use qr_common::{CoreId, Cycle, ThreadId};
    use std::path::PathBuf;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("qr-migrate-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(
            dir.with_file_name(format!("{STAGING_PREFIX}{}", dir.file_name().unwrap().to_str().unwrap())),
        );
        let _ = std::fs::remove_dir_all(
            dir.with_file_name(format!("{BACKUP_PREFIX}{}", dir.file_name().unwrap().to_str().unwrap())),
        );
        dir
    }

    /// A small synthetic (but fully consistent) recording.
    fn sample() -> Recording {
        let mut chunks = ChunkLog::new();
        chunks.extend((0..10u32).map(|i| ChunkPacket {
            tid: ThreadId(i % 2),
            core: CoreId((i % 2) as u8),
            icount: 40 + i as u64,
            timestamp: Cycle(10 + 7 * i as u64),
            rsw: 0,
            reason: TerminationReason::Syscall,
        }));
        let instructions = chunks.total_instructions();
        Recording {
            chunks,
            inputs: InputLog::new(),
            footprints: None,
            meta: RecordingMeta {
                program_fingerprint: 0x1234,
                tso_mode: TsoMode::DrainAtChunk,
                cpu: Default::default(),
                os: Default::default(),
            },
            cycles: 500,
            instructions,
            console: b"hi\n".to_vec(),
            exit_code: 0,
            fingerprint: 0xfeed_beef,
            recorder_stats: Default::default(),
            overhead: Default::default(),
            order: None,
        }
    }

    /// Derives the v1 (legacy unframed) file images of a recording from
    /// its modern parts: bare `QRM1` meta blob, tag-prefixed logs.
    fn legacy_parts(rec: &Recording, encoding: Encoding) -> RecordingParts {
        let modern = rec.to_parts(encoding);
        let meta_records =
            frame::read(&modern.meta, PayloadKind::Meta, "recording meta").unwrap();
        RecordingParts {
            meta: meta_records[0].to_vec(),
            chunks: encoding.encode_stream(rec.chunks.packets()),
            inputs: rec.inputs.to_legacy_bytes(),
            footprints: None,
            format: None,
            checkpoints: None,
            order: None,
        }
    }

    /// The v2 shape: modern parts minus the format manifest.
    fn v2_parts(rec: &Recording, encoding: Encoding) -> RecordingParts {
        RecordingParts { format: None, ..rec.to_parts(encoding) }
    }

    fn read_all_files(dir: &Path) -> Vec<(String, Vec<u8>)> {
        let mut out: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
            .unwrap()
            .map(|e| {
                let e = e.unwrap();
                (e.file_name().to_str().unwrap().to_string(), std::fs::read(e.path()).unwrap())
            })
            .collect();
        out.sort();
        out
    }

    #[test]
    fn v1_and_v2_upgrade_to_v3_preserving_fingerprint() {
        let rec = sample();
        for encoding in Encoding::ALL {
            for (label, parts) in [
                ("v1", legacy_parts(&rec, encoding)),
                ("v2", v2_parts(&rec, encoding)),
            ] {
                let dir = scratch(&format!("up-{label}-{}", encoding.name()));
                parts.save(&dir).unwrap();
                let report = migrate(&dir).unwrap();
                assert!(report.changed, "{label} {encoding:?}");
                assert_eq!(report.to, RecordingVersion::V3);
                assert_eq!(report.encoding, encoding);
                assert_eq!(report.fingerprint, rec.fingerprint);
                let loaded = Recording::load(&dir).unwrap();
                assert_eq!(loaded.fingerprint, rec.fingerprint);
                assert_eq!(loaded.chunks, rec.chunks);
                assert!(dir.join(Recording::FORMAT_FILE).exists());
                std::fs::remove_dir_all(&dir).unwrap();
            }
        }
    }

    #[test]
    fn v2_upgrade_only_adds_the_manifest_byte_identically() {
        let rec = sample();
        let encoding = Encoding::Delta;
        let dir = scratch("v2-bytes");
        let v2 = v2_parts(&rec, encoding);
        v2.save(&dir).unwrap();
        migrate(&dir).unwrap();
        let after = RecordingParts::read(&dir).unwrap();
        // The three core files are already canonical in v2; the upgrade
        // must not disturb a single byte of them.
        assert_eq!(after.meta, v2.meta);
        assert_eq!(after.chunks, v2.chunks);
        assert_eq!(after.inputs, v2.inputs);
        assert!(after.format.is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn migrate_twice_is_a_byte_level_no_op() {
        let rec = sample();
        let dir = scratch("idempotent");
        legacy_parts(&rec, Encoding::Packed).save(&dir).unwrap();
        migrate(&dir).unwrap();
        let first = read_all_files(&dir);
        let report = migrate(&dir).unwrap();
        assert!(!report.changed);
        assert_eq!(report.from, RecordingVersion::V3);
        assert_eq!(read_all_files(&dir), first);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_crash_point_recovers_to_a_consistent_recording() {
        let rec = sample();
        for crash in [CrashPoint::AfterStage, CrashPoint::AfterBackup, CrashPoint::AfterSwap] {
            let dir = scratch(&format!("crash-{crash:?}"));
            legacy_parts(&rec, Encoding::Delta).save(&dir).unwrap();
            let err = migrate_with_crash(&dir, Some(crash)).unwrap_err();
            assert!(err.to_string().contains("injected crash"), "{crash:?}: {err}");
            // Re-running migrate must recover and complete the upgrade.
            let report = migrate(&dir).unwrap();
            assert_eq!(report.to, RecordingVersion::V3);
            assert_eq!(report.fingerprint, rec.fingerprint);
            let loaded = Recording::load(&dir).unwrap();
            assert_eq!(loaded.fingerprint, rec.fingerprint);
            // No protocol litter survives.
            let (staging, backup) = protocol_paths(&dir).unwrap();
            assert!(!staging.exists(), "{crash:?} left staging");
            assert!(!backup.exists(), "{crash:?} left backup");
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn crash_after_swap_already_committed_the_upgrade() {
        // AfterSwap is special: the new recording is already in place, so
        // recovery just removes the backup and the second migrate is a
        // no-op.
        let rec = sample();
        let dir = scratch("crash-swap-committed");
        legacy_parts(&rec, Encoding::Raw).save(&dir).unwrap();
        migrate_with_crash(&dir, Some(CrashPoint::AfterSwap)).unwrap_err();
        let loaded = Recording::load(&dir).unwrap();
        assert_eq!(loaded.fingerprint, rec.fingerprint);
        let report = migrate(&dir).unwrap();
        assert!(!report.changed);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_source_is_refused_without_touching_the_directory() {
        let rec = sample();
        let dir = scratch("corrupt-source");
        let mut parts = legacy_parts(&rec, Encoding::Delta);
        parts.chunks.truncate(parts.chunks.len() - 3);
        parts.save(&dir).unwrap();
        let before = read_all_files(&dir);
        assert!(migrate(&dir).is_err());
        assert_eq!(read_all_files(&dir), before, "failed migrate modified the source");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_is_a_structured_error() {
        let dir = scratch("missing");
        let err = migrate(&dir).unwrap_err();
        assert!(matches!(err, QrError::Execution { .. }), "{err}");
    }
}
