#![warn(missing_docs)]

//! Capo3 — the software stack that manages the recording hardware.
//!
//! The QuickRec paper's central finding is that the *hardware* records
//! multithreaded executions nearly for free, while the *software stack*
//! (Capo3, built into a modified Linux kernel) costs about 13% on
//! average. This crate is that stack for the simulated platform:
//!
//! - [`sphere::ReplaySphere`] groups the threads being recorded,
//! - [`session::RecordingSession`] runs a program under the kernel while
//!   driving the recorder bank: it terminates chunks at syscalls, traps,
//!   context switches and conflicts; virtualizes the per-core recorder
//!   units as threads migrate; services the CMEM drain interrupt; and
//!   assembles the chunk log,
//! - [`input_log::InputLog`] captures every nondeterministic input —
//!   syscall results, copy_to_user payloads, signal delivery points,
//!   `rdtsc`/`rdrand` values — with global timestamps where ordering
//!   matters,
//! - [`overhead::OverheadModel`] charges the RSM's costs (interception,
//!   log copying, drain interrupts, recorder save/restore) to the cores
//!   that incur them, producing the overhead breakdown the paper reports.
//!
//! The output is a [`recording::Recording`]: logs + metadata sufficient
//! for `qr-replay` to reproduce the execution exactly.

pub mod format;
pub mod input_log;
pub mod migrate;
pub mod overhead;
pub mod recording;
pub mod session;
pub mod sphere;

pub use format::{FormatManifest, RecordingVersion, PARTIAL_ORDER_FORMAT_VERSION, RECORDING_FORMAT_VERSION};
pub use input_log::{InputEvent, InputLog, InputSalvage};
pub use migrate::{migrate, CrashPoint, MigrateReport};
pub use overhead::{OverheadBreakdown, OverheadModel};
pub use recording::{
    FileCheck, Recording, RecordingConfig, RecordingMode, RecordingParts, RecoveryInfo,
    VerifyReport,
};
pub use session::{record, RecordingSession};
pub use sphere::ReplaySphere;
