//! The RSM cost model and overhead accounting.
//!
//! Recording overhead has two origins in QuickRec:
//!
//! 1. **Hardware**: the core stalls only when the CBUF is full — measured
//!    directly by `quickrec-core` and reported as negligible.
//! 2. **Software** (the dominant part, ~13% mean in the paper): the
//!    replay-sphere manager intercepting every syscall, copying input-log
//!    payloads, servicing CMEM drain interrupts, and saving/restoring the
//!    recorder on context switches.
//!
//! The per-event costs below are *calibrated* so the workload-suite mean
//! lands near the paper's reported overhead; the per-workload variation
//! is then emergent from each workload's event rates (see DESIGN.md).

/// Cycles the replay-sphere manager charges per event class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverheadModel {
    /// Extra cycles per intercepted syscall (entry + bookkeeping + exit).
    pub syscall_intercept_cycles: u64,
    /// Extra cycles per byte appended to the input log.
    pub input_copy_cycles_per_byte: u64,
    /// Fixed cycles per CMEM drain interrupt.
    pub drain_base_cycles: u64,
    /// Cycles per byte copied out of CMEM.
    pub drain_cycles_per_byte: u64,
    /// Cycles to save/restore recorder state at a context switch.
    pub mrr_switch_cycles: u64,
    /// Cycles per signal delivery interception.
    pub signal_intercept_cycles: u64,
}

impl Default for OverheadModel {
    fn default() -> Self {
        // Calibrated (see DESIGN.md and experiment E5) so the reference
        // workload suite lands near the paper's ~13% mean software
        // overhead; the per-workload spread is then emergent from each
        // workload's syscall, context-switch and log-drain rates.
        OverheadModel {
            syscall_intercept_cycles: 680,
            input_copy_cycles_per_byte: 2,
            drain_base_cycles: 2_500,
            drain_cycles_per_byte: 1,
            mrr_switch_cycles: 500,
            signal_intercept_cycles: 500,
        }
    }
}

/// Where recording time went, in cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverheadBreakdown {
    /// Syscall interception.
    pub syscall_cycles: u64,
    /// Input-log copying.
    pub copy_cycles: u64,
    /// CMEM drain interrupts.
    pub drain_cycles: u64,
    /// Recorder save/restore at context switches.
    pub switch_cycles: u64,
    /// Signal interception.
    pub signal_cycles: u64,
    /// Hardware CBUF stalls (the only non-software source).
    pub hw_stall_cycles: u64,
}

impl OverheadBreakdown {
    /// Total software-stack cycles.
    pub fn software_total(&self) -> u64 {
        self.syscall_cycles
            + self.copy_cycles
            + self.drain_cycles
            + self.switch_cycles
            + self.signal_cycles
    }

    /// Total cycles including hardware stalls.
    pub fn total(&self) -> u64 {
        self.software_total() + self.hw_stall_cycles
    }

    /// `(label, cycles)` rows for experiment output, largest first.
    pub fn rows(&self) -> Vec<(&'static str, u64)> {
        let mut rows = vec![
            ("syscall-intercept", self.syscall_cycles),
            ("input-log-copy", self.copy_cycles),
            ("cmem-drain", self.drain_cycles),
            ("mrr-switch", self.switch_cycles),
            ("signal-intercept", self.signal_cycles),
            ("hw-cbuf-stall", self.hw_stall_cycles),
        ];
        rows.sort_by_key(|&(_, v)| std::cmp::Reverse(v));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let b = OverheadBreakdown {
            syscall_cycles: 10,
            copy_cycles: 20,
            drain_cycles: 30,
            switch_cycles: 40,
            signal_cycles: 5,
            hw_stall_cycles: 7,
        };
        assert_eq!(b.software_total(), 105);
        assert_eq!(b.total(), 112);
    }

    #[test]
    fn rows_are_sorted_descending() {
        let b = OverheadBreakdown { drain_cycles: 100, syscall_cycles: 50, ..Default::default() };
        let rows = b.rows();
        assert_eq!(rows[0], ("cmem-drain", 100));
        assert_eq!(rows[1], ("syscall-intercept", 50));
        assert!(rows.windows(2).all(|w| w[0].1 >= w[1].1));
    }
}
