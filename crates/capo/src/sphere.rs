//! Replay spheres.
//!
//! Capo3 organizes recorded execution into *replay spheres*: the set of
//! threads recorded (and later replayed) together, isolated from the
//! rest of the system. This reproduction runs one program per machine,
//! so a sphere covers every thread of that program; the type still
//! exists to carry sphere identity and lifecycle through the logs and
//! the API, as in Capo3.

use qr_common::ThreadId;

/// Lifecycle of a sphere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SphereState {
    /// Recording in progress.
    Recording,
    /// Recording finished; logs are complete.
    Closed,
}

/// One replay sphere: the recorded thread group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplaySphere {
    id: u32,
    state: SphereState,
    threads: Vec<ThreadId>,
}

impl ReplaySphere {
    /// Opens a sphere.
    pub fn new(id: u32) -> ReplaySphere {
        ReplaySphere { id, state: SphereState::Recording, threads: Vec::new() }
    }

    /// Sphere identifier.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Current state.
    pub fn state(&self) -> SphereState {
        self.state
    }

    /// Adds a thread to the sphere (spawn inside the sphere).
    pub fn add_thread(&mut self, tid: ThreadId) {
        if !self.threads.contains(&tid) {
            self.threads.push(tid);
        }
    }

    /// Threads recorded in this sphere, in creation order.
    pub fn threads(&self) -> &[ThreadId] {
        &self.threads
    }

    /// Whether the sphere records `tid`.
    pub fn contains(&self, tid: ThreadId) -> bool {
        self.threads.contains(&tid)
    }

    /// Closes the sphere (teardown).
    pub fn close(&mut self) {
        self.state = SphereState::Closed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_and_membership() {
        let mut s = ReplaySphere::new(1);
        assert_eq!(s.state(), SphereState::Recording);
        s.add_thread(ThreadId(0));
        s.add_thread(ThreadId(1));
        s.add_thread(ThreadId(0)); // duplicate ignored
        assert_eq!(s.threads(), &[ThreadId(0), ThreadId(1)]);
        assert!(s.contains(ThreadId(1)));
        assert!(!s.contains(ThreadId(9)));
        s.close();
        assert_eq!(s.state(), SphereState::Closed);
        assert_eq!(s.id(), 1);
    }
}
