//! The recording-level format manifest (`format.qrv`).
//!
//! Individual log files are self-describing at the *container* level
//! (the `QRCF` frame header names a payload kind and container version),
//! but nothing used to describe the recording *as a whole*: which
//! recording-format generation wrote it, which chunk encoding it uses,
//! and which payload kinds are present. The format manifest closes that
//! gap so tools can reason about a recording without decoding its logs,
//! and so `quickrec migrate` can state precisely what it upgraded from
//! and to.
//!
//! Four recording-format generations exist (see `docs/TRACE_FORMAT.md`):
//!
//! | Version | Shape |
//! |---|---|
//! | v1 | legacy: bare `QRM1` meta blob, unframed tag-prefixed logs, no footprints |
//! | v2 | all files framed (`QRCF`), optional footprint sidecar, no `format.qrv` |
//! | v3 | v2 plus this manifest (the default generation) |
//! | v4 | v3 plus the `order.qrp` partial-order sidecar (`--order partial` only) |
//!
//! The manifest itself is one CRC-32-protected record in a framed
//! container of kind [`PayloadKind::FormatManifest`]:
//!
//! ```text
//! record 0: version varint | container u8 | encoding-tag u8
//!           | payload-count varint | payload-kind-code u8 ...
//! ```

use qr_common::frame::{self, PayloadKind};
use qr_common::{varint, QrError, Result};
use quickrec_core::Encoding;

/// The recording-format generation current code writes by default.
/// Total-order recordings stay at this generation so their bytes are
/// unchanged by the existence of partial-order recording.
pub const RECORDING_FORMAT_VERSION: u64 = 3;

/// The generation written for partial-order recordings: v3 plus the
/// `order.qrp` sidecar listed in the manifest's payload set.
pub const PARTIAL_ORDER_FORMAT_VERSION: u64 = 4;

/// The shape of a saved recording, as detected from its file set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordingVersion {
    /// Pre-framing layout: bare `QRM1` meta, unframed logs.
    V1Legacy,
    /// Framed layout without a format manifest.
    V2Framed,
    /// Default current layout: framed files plus `format.qrv`.
    V3,
    /// Partial-order layout: v3 plus the `order.qrp` sidecar.
    V4,
}

impl RecordingVersion {
    /// Detects the format generation of a saved recording from the shape
    /// of its file set: an `order.qrp` means v4, a `format.qrv` alone
    /// means v3, all-framed core files mean v2, anything unframed means
    /// v1. Detection is structural only — it does not validate the
    /// files' contents.
    pub fn detect(parts: &crate::recording::RecordingParts) -> RecordingVersion {
        if parts.order.is_some() {
            RecordingVersion::V4
        } else if parts.format.is_some() {
            RecordingVersion::V3
        } else if frame::is_framed(&parts.meta)
            && frame::is_framed(&parts.chunks)
            && frame::is_framed(&parts.inputs)
        {
            RecordingVersion::V2Framed
        } else {
            RecordingVersion::V1Legacy
        }
    }

    /// The numeric format generation.
    pub fn number(self) -> u64 {
        match self {
            RecordingVersion::V1Legacy => 1,
            RecordingVersion::V2Framed => 2,
            RecordingVersion::V3 => 3,
            RecordingVersion::V4 => 4,
        }
    }
}

impl std::fmt::Display for RecordingVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.number())
    }
}

/// The decoded contents of `format.qrv`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormatManifest {
    /// Recording-format generation ([`RECORDING_FORMAT_VERSION`] when
    /// written by current code).
    pub version: u64,
    /// Frame-container version every framed file in the recording uses
    /// ([`frame::VERSION`]).
    pub container: u8,
    /// Chunk-packet encoding of `chunks.qrl`.
    pub encoding: Encoding,
    /// Payload kinds present in the recording directory, in kind-code
    /// order.
    pub payloads: Vec<PayloadKind>,
}

impl FormatManifest {
    /// The manifest current code writes for a recording saved with
    /// `encoding`, with (`with_footprints`) or without a footprint
    /// sidecar.
    pub fn current(encoding: Encoding, with_footprints: bool) -> FormatManifest {
        let mut payloads = vec![PayloadKind::ChunkLog, PayloadKind::InputLog, PayloadKind::Meta];
        if with_footprints {
            payloads.push(PayloadKind::FootprintLog);
        }
        payloads.push(PayloadKind::FormatManifest);
        payloads.sort_by_key(|k| k.code());
        FormatManifest {
            version: RECORDING_FORMAT_VERSION,
            container: frame::VERSION,
            encoding,
            payloads,
        }
    }

    /// Upgrades the manifest to the partial-order generation: the
    /// `order.qrp` sidecar joins the payload list and the version becomes
    /// [`PARTIAL_ORDER_FORMAT_VERSION`].
    pub fn with_order(mut self) -> FormatManifest {
        if !self.payloads.contains(&PayloadKind::OrderLog) {
            self.payloads.push(PayloadKind::OrderLog);
            self.payloads.sort_by_key(|k| k.code());
        }
        self.version = PARTIAL_ORDER_FORMAT_VERSION;
        self
    }

    /// Serializes the manifest as a framed single-record container.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(8 + self.payloads.len());
        varint::write_u64(&mut payload, self.version);
        payload.push(self.container);
        payload.push(self.encoding.tag());
        varint::write_u64(&mut payload, self.payloads.len() as u64);
        for kind in &self.payloads {
            payload.push(kind.code());
        }
        let mut w = frame::Writer::new(PayloadKind::FormatManifest);
        w.record(&payload);
        w.finish()
    }

    /// Deserializes a manifest written by [`FormatManifest::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Unsupported`] for a manifest from a *newer*
    /// format generation than this code understands (naming both
    /// versions), and [`QrError::Corrupt`] with byte-offset context for
    /// anything structurally malformed.
    pub fn from_bytes(buf: &[u8]) -> Result<FormatManifest> {
        let what = "format manifest";
        let records = frame::read(buf, PayloadKind::FormatManifest, what)?;
        let [payload] = records[..] else {
            return Err(QrError::Corrupt {
                what: what.into(),
                offset: frame::HEADER_LEN as u64,
                detail: format!("expected exactly 1 record, found {}", records.len()),
            });
        };
        let base = frame::HEADER_LEN + 4;
        let corrupt = |off: usize, detail: String| QrError::Corrupt {
            what: what.into(),
            offset: (base + off) as u64,
            detail,
        };
        let mut off = 0usize;
        let (version, n) =
            varint::read_u64(payload).map_err(|e| corrupt(off, e.to_string()))?;
        off += n;
        if version > PARTIAL_ORDER_FORMAT_VERSION {
            return Err(QrError::Unsupported(format!(
                "recording format version {version} (newest supported {PARTIAL_ORDER_FORMAT_VERSION})"
            )));
        }
        if version < RECORDING_FORMAT_VERSION {
            // v1/v2 recordings have no format.qrv at all, so a manifest
            // claiming an older generation is self-contradictory.
            return Err(corrupt(0, format!("implausible format version {version}")));
        }
        let &container = payload.get(off).ok_or_else(|| corrupt(off, "truncated manifest".into()))?;
        if container != frame::VERSION {
            return Err(corrupt(
                off,
                format!("container version {container} does not match frame v{}", frame::VERSION),
            ));
        }
        off += 1;
        let &tag = payload.get(off).ok_or_else(|| corrupt(off, "truncated manifest".into()))?;
        let encoding = Encoding::ALL
            .into_iter()
            .find(|e| e.tag() == tag)
            .ok_or_else(|| corrupt(off, format!("unknown encoding tag {tag}")))?;
        off += 1;
        let (count, n) =
            varint::read_u64(&payload[off..]).map_err(|e| corrupt(off, e.to_string()))?;
        off += n;
        if count as usize > PayloadKind::ALL.len() {
            return Err(corrupt(off, format!("implausible payload count {count}")));
        }
        let mut payloads = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let &code =
                payload.get(off).ok_or_else(|| corrupt(off, "truncated payload list".into()))?;
            let kind = PayloadKind::from_code(code)
                .ok_or_else(|| corrupt(off, format!("unknown payload kind {code}")))?;
            if payloads.contains(&kind) {
                return Err(corrupt(off, format!("duplicate payload kind {}", kind.name())));
            }
            payloads.push(kind);
            off += 1;
        }
        if off != payload.len() {
            return Err(corrupt(off, format!("{} trailing bytes", payload.len() - off)));
        }
        // The version and the payload list must agree: v4 is *defined*
        // by the presence of the ordering sidecar.
        let has_order = payloads.contains(&PayloadKind::OrderLog);
        if (version == PARTIAL_ORDER_FORMAT_VERSION) != has_order {
            return Err(corrupt(
                0,
                format!(
                    "format version {version} contradicts its payload list ({} order log)",
                    if has_order { "has" } else { "no" }
                ),
            ));
        }
        Ok(FormatManifest { version, container, encoding, payloads })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn current_manifest_round_trips_for_every_encoding() {
        for encoding in Encoding::ALL {
            for with_footprints in [false, true] {
                let m = FormatManifest::current(encoding, with_footprints);
                assert_eq!(m.version, RECORDING_FORMAT_VERSION);
                let back = FormatManifest::from_bytes(&m.to_bytes()).unwrap();
                assert_eq!(back, m);
                assert_eq!(
                    back.payloads.contains(&PayloadKind::FootprintLog),
                    with_footprints
                );
            }
        }
    }

    #[test]
    fn newer_format_version_is_refused_with_both_versions_named() {
        let mut m = FormatManifest::current(Encoding::Delta, true);
        m.version = 99;
        let err = FormatManifest::from_bytes(&m.to_bytes()).unwrap_err();
        let QrError::Unsupported(msg) = &err else {
            panic!("expected Unsupported, got {err}");
        };
        assert!(msg.contains("version 99"), "{msg}");
        assert!(msg.contains("newest supported 4"), "{msg}");
    }

    #[test]
    fn with_order_bumps_to_v4_and_round_trips() {
        for encoding in Encoding::ALL {
            let m = FormatManifest::current(encoding, true).with_order();
            assert_eq!(m.version, PARTIAL_ORDER_FORMAT_VERSION);
            assert!(m.payloads.contains(&PayloadKind::OrderLog));
            let codes: Vec<u8> = m.payloads.iter().map(|k| k.code()).collect();
            assert!(codes.windows(2).all(|w| w[0] < w[1]), "payloads sorted: {codes:?}");
            assert_eq!(FormatManifest::from_bytes(&m.to_bytes()).unwrap(), m);
            // Idempotent.
            assert_eq!(m.clone().with_order(), m);
        }
    }

    #[test]
    fn version_payload_contradictions_are_corrupt() {
        // v4 without the order payload.
        let mut m = FormatManifest::current(Encoding::Delta, true);
        m.version = PARTIAL_ORDER_FORMAT_VERSION;
        let err = FormatManifest::from_bytes(&m.to_bytes()).unwrap_err();
        assert!(matches!(err, QrError::Corrupt { .. }), "{err}");
        // v3 claiming the order payload.
        let mut m = FormatManifest::current(Encoding::Delta, true).with_order();
        m.version = RECORDING_FORMAT_VERSION;
        let err = FormatManifest::from_bytes(&m.to_bytes()).unwrap_err();
        assert!(matches!(err, QrError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn older_format_version_in_a_manifest_is_contradictory() {
        let mut m = FormatManifest::current(Encoding::Delta, false);
        m.version = 2;
        assert!(FormatManifest::from_bytes(&m.to_bytes()).is_err());
    }

    #[test]
    fn structural_faults_are_corrupt_errors() {
        let good = FormatManifest::current(Encoding::Raw, true).to_bytes();
        // Truncations.
        for cut in 0..good.len() {
            let err = FormatManifest::from_bytes(&good[..cut]).unwrap_err();
            assert!(
                matches!(err, QrError::Corrupt { .. }),
                "cut {cut}: {err}"
            );
        }
        // Wrong payload kind.
        let mut w = frame::Writer::new(PayloadKind::Meta);
        w.record(&[3, frame::VERSION, 0, 0]);
        assert!(FormatManifest::from_bytes(&w.finish()).is_err());
        // Every single-bit flip is caught by the CRC or a field check.
        for pos in 0..good.len() {
            for bit in 0..8 {
                let mut bad = good.clone();
                bad[pos] ^= 1 << bit;
                assert!(FormatManifest::from_bytes(&bad).is_err(), "flip {pos}.{bit}");
            }
        }
    }

    #[test]
    fn version_display_and_numbers() {
        assert_eq!(RecordingVersion::V1Legacy.to_string(), "v1");
        assert_eq!(RecordingVersion::V2Framed.number(), 2);
        assert_eq!(RecordingVersion::V3.number(), RECORDING_FORMAT_VERSION);
        assert_eq!(RecordingVersion::V4.number(), PARTIAL_ORDER_FORMAT_VERSION);
    }
}
