//! Recording-session failure paths: bad configurations, runaway guests
//! and deadlocks must surface as typed errors, never as hangs or panics.

use qr_capo::{record, RecordingConfig};
use qr_common::QrError;
use qr_isa::{abi, Asm, Reg};

#[test]
fn invalid_configuration_is_rejected_before_running() {
    let mut a = Asm::new();
    a.halt();
    let program = a.finish().unwrap();
    let mut cfg = RecordingConfig::with_cores(0);
    assert!(matches!(record(program.clone(), cfg.clone()), Err(QrError::InvalidConfig(_))));
    cfg = RecordingConfig::with_cores(2);
    cfg.mrr.read_sig_bits = 48;
    assert!(matches!(record(program, cfg), Err(QrError::InvalidConfig(_))));
}

#[test]
fn runaway_guest_hits_the_instruction_budget() {
    let mut a = Asm::new();
    a.label("spin");
    a.jmp("spin");
    let mut cfg = RecordingConfig::with_cores(1);
    cfg.os.max_instructions = 5_000;
    match record(a.finish().unwrap(), cfg) {
        Err(QrError::BudgetExceeded { executed }) => assert!(executed > 5_000),
        other => panic!("expected budget error, got {other:?}"),
    }
}

#[test]
fn recorded_deadlock_is_reported() {
    let mut a = Asm::new();
    a.data_word("never", &[0]);
    a.movi_u(Reg::R0, abi::SYS_FUTEX_WAIT);
    a.movi_sym(Reg::R1, "never");
    a.movi(Reg::R2, 0);
    a.syscall();
    a.halt();
    match record(a.finish().unwrap(), RecordingConfig::with_cores(2)) {
        Err(QrError::Execution { detail }) => assert!(detail.contains("deadlock")),
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn guest_faults_are_recorded_not_fatal() {
    // A crashing guest still yields a complete, replayable recording.
    let mut a = Asm::new();
    a.movi_u(Reg::R1, 0x9000_0000);
    a.ld(Reg::R2, Reg::R1, 0); // unmapped -> fault -> thread killed
    a.halt();
    let program = a.finish().unwrap();
    let recording = record(program.clone(), RecordingConfig::with_cores(1)).unwrap();
    assert_eq!(recording.exit_code, 0xdead_0000);
    qr_replay::replay_and_verify(&program, &recording).unwrap();
}

#[test]
fn overhead_accounting_is_internally_consistent() {
    let spec = qr_workloads::suite::find("water").unwrap();
    let program = (spec.build)(3, qr_workloads::Scale::Test).unwrap();
    let recording = record(program, RecordingConfig::with_cores(2)).unwrap();
    let o = &recording.overhead;
    assert_eq!(
        o.software_total(),
        o.syscall_cycles + o.copy_cycles + o.drain_cycles + o.switch_cycles + o.signal_cycles
    );
    assert!(o.total() >= o.software_total());
    assert!(o.total() < recording.cycles, "overhead is a fraction of the run");
}

#[test]
fn hardware_only_and_full_mode_share_logs_shape() {
    // The two modes record the same program; their logs may differ in
    // detail (timing-dependent interleaving) but both must replay.
    let spec = qr_workloads::suite::find("fft").unwrap();
    let program = (spec.build)(2, qr_workloads::Scale::Test).unwrap();
    for mode in [qr_capo::RecordingMode::Full, qr_capo::RecordingMode::HardwareOnly] {
        let cfg = RecordingConfig { mode, ..RecordingConfig::with_cores(2) };
        let recording = record(program.clone(), cfg).unwrap();
        qr_replay::replay_and_verify(&program, &recording)
            .unwrap_or_else(|e| panic!("{mode:?}: {e}"));
    }
}
