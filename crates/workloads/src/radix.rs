//! `radix` — parallel LSD radix sort.
//!
//! Reproduces SPLASH-2 radix's three-phase structure per digit: private
//! histograms over contiguous key segments, a serial global prefix (the
//! key-exchange offsets), and a stable permutation into the destination
//! buffer. The permutation writes scatter across the whole destination
//! array, which makes radix the heaviest producer of cross-thread
//! coherence traffic in the suite — exactly its role in the paper.
//!
//! Because placement order equals input order (contiguous segments,
//! in-segment scans), the parallel sort is *stable* and its output is
//! identical to a sequential stable sort, independent of thread count.

use crate::runtime::{self, BARRIER, CHECKSUM};
use crate::suite::{init_value, Scale};
use qr_common::Result;
use qr_isa::{Asm, Program, Reg};

const SEED: u64 = 0x4adf_0004;
const PASSES: usize = 4;
const BUCKETS: usize = 256;

fn size(scale: Scale) -> usize {
    match scale {
        Scale::Test => 96,
        Scale::Small => 384,
        Scale::Reference => 2048,
    }
}

fn initial(n: usize) -> Vec<u32> {
    (0..n).map(|i| init_value(SEED, i)).collect()
}

fn mirror(scale: Scale) -> Vec<u32> {
    let mut keys = initial(size(scale));
    keys.sort_unstable();
    keys
}

/// The checksum the program exits with (the sorted array's).
pub fn expected_checksum(_threads: usize, scale: Scale) -> u32 {
    runtime::checksum(&mirror(scale))
}

/// Builds the workload.
///
/// # Errors
///
/// Propagates assembler errors.
pub fn build(threads: usize, scale: Scale) -> Result<Program> {
    let n = size(scale);
    let mut a = Asm::with_name(format!("radix-{}x{}", threads, n));
    a.align_data_line();
    a.data_word("keys_a", &initial(n));
    a.align_data_line();
    a.data_word("keys_b", &vec![0u32; n]);
    a.align_data_line();
    a.data_word("hist", &vec![0u32; threads * BUCKETS]);
    runtime::emit_barrier_block(&mut a, "bar0", threads as u32);

    // PASSES is even, so the sorted data ends up back in keys_a.
    runtime::emit_main_skeleton(&mut a, threads, "rx_work", |a| {
        a.movi_sym(Reg::R1, "keys_a");
        a.movi(Reg::R2, n as i32);
        a.call(CHECKSUM);
        a.mov(Reg::R1, Reg::R0);
    });

    // Helper fragment: compute segment bounds lo -> R8, hi -> R9.
    let seg_bounds = |a: &mut Asm| {
        a.movi(Reg::R2, n as i32);
        a.mul(Reg::R8, Reg::R6, Reg::R2);
        a.movi(Reg::R3, threads as i32);
        a.divu(Reg::R8, Reg::R8, Reg::R3);
        a.addi(Reg::R4, Reg::R6, 1);
        a.mul(Reg::R9, Reg::R4, Reg::R2);
        a.divu(Reg::R9, Reg::R9, Reg::R3);
    };

    // rx_work(R1 = tid)
    a.label("rx_work");
    a.mov(Reg::R6, Reg::R1);
    // r13 = &hist[tid][0]
    a.movi(Reg::R2, (BUCKETS * 4) as i32);
    a.mul(Reg::R13, Reg::R6, Reg::R2);
    a.movi_sym(Reg::R3, "hist");
    a.add(Reg::R13, Reg::R13, Reg::R3);
    a.movi_sym(Reg::R10, "keys_a"); // src
    a.movi_sym(Reg::R11, "keys_b"); // dst
    a.movi(Reg::R7, 0); // pass
    a.label("rx_pass");
    // clear my histogram row
    a.movi(Reg::R8, 0);
    a.label("rx_clear");
    a.shli(Reg::R2, Reg::R8, 2);
    a.add(Reg::R3, Reg::R13, Reg::R2);
    a.movi(Reg::R4, 0);
    a.st(Reg::R3, 0, Reg::R4);
    a.addi(Reg::R8, Reg::R8, 1);
    a.movi(Reg::R2, BUCKETS as i32);
    a.bltu(Reg::R8, Reg::R2, "rx_clear");
    // shift for this pass
    a.shli(Reg::R12, Reg::R7, 3);
    // histogram my segment
    seg_bounds(&mut a);
    a.label("rx_hist");
    a.bgeu(Reg::R8, Reg::R9, "rx_hist_done");
    a.shli(Reg::R2, Reg::R8, 2);
    a.add(Reg::R3, Reg::R10, Reg::R2);
    a.ld(Reg::R4, Reg::R3, 0);
    a.shr(Reg::R5, Reg::R4, Reg::R12);
    a.andi(Reg::R5, Reg::R5, 255);
    a.shli(Reg::R5, Reg::R5, 2);
    a.add(Reg::R5, Reg::R13, Reg::R5);
    a.ld(Reg::R2, Reg::R5, 0);
    a.addi(Reg::R2, Reg::R2, 1);
    a.st(Reg::R5, 0, Reg::R2);
    a.addi(Reg::R8, Reg::R8, 1);
    a.jmp("rx_hist");
    a.label("rx_hist_done");
    a.movi_sym(Reg::R1, "bar0");
    a.call(BARRIER);
    // thread 0: global exclusive prefix over (digit, thread)
    a.bnez(Reg::R6, "rx_after_prefix");
    a.movi(Reg::R8, 0); // digit
    a.movi(Reg::R9, 0); // running
    a.label("rx_pfx_d");
    a.movi(Reg::R2, BUCKETS as i32);
    a.bgeu(Reg::R8, Reg::R2, "rx_after_prefix");
    a.movi(Reg::R10, 0); // t (src pointer is recomputed below)
    a.label("rx_pfx_t");
    a.movi(Reg::R2, threads as i32);
    a.bgeu(Reg::R10, Reg::R2, "rx_pfx_t_done");
    a.movi(Reg::R2, (BUCKETS * 4) as i32);
    a.mul(Reg::R3, Reg::R10, Reg::R2);
    a.shli(Reg::R5, Reg::R8, 2);
    a.add(Reg::R3, Reg::R3, Reg::R5);
    a.movi_sym(Reg::R2, "hist");
    a.add(Reg::R3, Reg::R3, Reg::R2);
    a.ld(Reg::R5, Reg::R3, 0);
    a.st(Reg::R3, 0, Reg::R9);
    a.add(Reg::R9, Reg::R9, Reg::R5);
    a.addi(Reg::R10, Reg::R10, 1);
    a.jmp("rx_pfx_t");
    a.label("rx_pfx_t_done");
    a.addi(Reg::R8, Reg::R8, 1);
    a.jmp("rx_pfx_d");
    a.label("rx_after_prefix");
    // Restore src/dst pointers (thread 0 clobbered r10).
    a.movi_sym(Reg::R10, "keys_a");
    a.movi_sym(Reg::R11, "keys_b");
    a.andi(Reg::R2, Reg::R7, 1);
    a.beqz(Reg::R2, "rx_ptrs_ok");
    a.movi_sym(Reg::R10, "keys_b");
    a.movi_sym(Reg::R11, "keys_a");
    a.label("rx_ptrs_ok");
    a.movi_sym(Reg::R1, "bar0");
    a.call(BARRIER);
    // place my segment
    seg_bounds(&mut a);
    a.label("rx_place");
    a.bgeu(Reg::R8, Reg::R9, "rx_place_done");
    a.shli(Reg::R2, Reg::R8, 2);
    a.add(Reg::R3, Reg::R10, Reg::R2);
    a.ld(Reg::R4, Reg::R3, 0); // key
    a.shr(Reg::R5, Reg::R4, Reg::R12);
    a.andi(Reg::R5, Reg::R5, 255);
    a.shli(Reg::R5, Reg::R5, 2);
    a.add(Reg::R5, Reg::R13, Reg::R5);
    a.ld(Reg::R2, Reg::R5, 0); // pos
    a.addi(Reg::R3, Reg::R2, 1);
    a.st(Reg::R5, 0, Reg::R3);
    a.shli(Reg::R2, Reg::R2, 2);
    a.add(Reg::R2, Reg::R11, Reg::R2);
    a.st(Reg::R2, 0, Reg::R4); // dst[pos] = key
    a.addi(Reg::R8, Reg::R8, 1);
    a.jmp("rx_place");
    a.label("rx_place_done");
    a.movi_sym(Reg::R1, "bar0");
    a.call(BARRIER);
    // swap buffers
    a.mov(Reg::R2, Reg::R10);
    a.mov(Reg::R10, Reg::R11);
    a.mov(Reg::R11, Reg::R2);
    a.addi(Reg::R7, Reg::R7, 1);
    a.movi(Reg::R2, PASSES as i32);
    a.bltu(Reg::R7, Reg::R2, "rx_pass");
    a.ret();

    runtime::emit_runtime(&mut a);
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirror_is_sorted_permutation() {
        let sorted = mirror(Scale::Test);
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        let mut orig = initial(size(Scale::Test));
        orig.sort_unstable();
        assert_eq!(orig, sorted);
    }

    #[test]
    fn native_run_matches_mirror() {
        for t in [1, 2, 3] {
            let program = build(t, Scale::Test).unwrap();
            let mut m = qr_cpu::Machine::new(
                program,
                qr_cpu::CpuConfig { num_cores: 2, ..qr_cpu::CpuConfig::default() },
            )
            .unwrap();
            let out = qr_os::run_native(&mut m, qr_os::OsConfig::default()).unwrap();
            assert_eq!(out.exit_code, expected_checksum(t, Scale::Test), "threads={t}");
        }
    }
}
