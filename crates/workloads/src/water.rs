//! `water` — windowed pairwise interactions with ordered locks.
//!
//! SPLASH-2 water-nsquared updates pairs of molecules under per-molecule
//! locks across multiple timesteps. This kernel reproduces that idiom:
//! each step, every thread processes interactions `(i, j)` for the
//! molecules it owns and a window of neighbours, acquiring the two
//! molecule locks in index order (deadlock-free) and accumulating
//! equal-and-opposite wrapping deltas; a barrier separates accumulation
//! from integration.

use crate::runtime::{self, BARRIER, CHECKSUM, MUTEX_LOCK, MUTEX_UNLOCK};
use crate::suite::{init_value, Scale};
use qr_common::Result;
use qr_isa::{Asm, Program, Reg};

const SEED: u64 = 0x3a7e_0006;
const WINDOW: usize = 3;
const LOCK_STRIDE_WORDS: usize = 16;
const MIX: u32 = 2654435761;

fn dims(scale: Scale) -> (usize, usize) {
    // (molecules, steps)
    match scale {
        Scale::Test => (24, 2),
        Scale::Small => (64, 3),
        Scale::Reference => (256, 5),
    }
}

fn initial(n: usize) -> Vec<u32> {
    (0..n).map(|i| init_value(SEED, i)).collect()
}

fn mirror(scale: Scale) -> Vec<u32> {
    let (n, steps) = dims(scale);
    let mut pos = initial(n);
    let mut acc = vec![0u32; n];
    for _ in 0..steps {
        for i in 0..n {
            for d in 1..=WINDOW {
                let j = (i + d) % n;
                let delta = (pos[i] ^ pos[j]).wrapping_mul(MIX);
                acc[i] = acc[i].wrapping_add(delta);
                acc[j] = acc[j].wrapping_sub(delta);
            }
        }
        for i in 0..n {
            pos[i] = pos[i].wrapping_add(acc[i]);
            acc[i] = 0;
        }
    }
    pos
}

/// The checksum the program exits with.
pub fn expected_checksum(_threads: usize, scale: Scale) -> u32 {
    runtime::checksum(&mirror(scale))
}

/// Builds the workload.
///
/// # Errors
///
/// Propagates assembler errors.
pub fn build(threads: usize, scale: Scale) -> Result<Program> {
    let (n, steps) = dims(scale);
    let mut a = Asm::with_name(format!("water-{}x{}", threads, n));
    a.align_data_line();
    a.data_word("pos", &initial(n));
    a.align_data_line();
    a.data_word("acc", &vec![0u32; n]);
    a.align_data_line();
    a.data_word("mol_locks", &vec![0u32; n * LOCK_STRIDE_WORDS]);
    runtime::emit_barrier_block(&mut a, "bar0", threads as u32);

    runtime::emit_main_skeleton(&mut a, threads, "wa_work", |a| {
        a.movi_sym(Reg::R1, "pos");
        a.movi(Reg::R2, n as i32);
        a.call(CHECKSUM);
        a.mov(Reg::R1, Reg::R0);
    });

    let seg_bounds = |a: &mut Asm| {
        a.movi(Reg::R2, n as i32);
        a.mul(Reg::R8, Reg::R6, Reg::R2);
        a.movi(Reg::R3, threads as i32);
        a.divu(Reg::R8, Reg::R8, Reg::R3);
        a.addi(Reg::R4, Reg::R6, 1);
        a.mul(Reg::R9, Reg::R4, Reg::R2);
        a.divu(Reg::R9, Reg::R9, Reg::R3);
    };

    // wa_work(R1 = tid)
    a.label("wa_work");
    a.mov(Reg::R6, Reg::R1);
    a.movi(Reg::R7, steps as i32);
    a.label("wa_step");
    a.movi_sym(Reg::R1, "bar0");
    a.call(BARRIER);
    seg_bounds(&mut a);
    a.label("wa_i");
    a.bgeu(Reg::R8, Reg::R9, "wa_integrate");
    a.movi(Reg::R10, 1); // d
    a.label("wa_d");
    // j = (i + d) % n
    a.add(Reg::R11, Reg::R8, Reg::R10);
    a.movi(Reg::R2, n as i32);
    a.remu(Reg::R11, Reg::R11, Reg::R2);
    // lock min(i,j) then max(i,j)
    a.sltu(Reg::R2, Reg::R8, Reg::R11);
    a.bnez(Reg::R2, "wa_order_ij");
    a.mov(Reg::R12, Reg::R11); // first = j
    a.mov(Reg::R13, Reg::R8); // second = i
    a.jmp("wa_lock");
    a.label("wa_order_ij");
    a.mov(Reg::R12, Reg::R8);
    a.mov(Reg::R13, Reg::R11);
    a.label("wa_lock");
    a.muli(Reg::R1, Reg::R12, (LOCK_STRIDE_WORDS * 4) as i32);
    a.movi_sym(Reg::R2, "mol_locks");
    a.add(Reg::R1, Reg::R1, Reg::R2);
    a.call(MUTEX_LOCK);
    a.muli(Reg::R1, Reg::R13, (LOCK_STRIDE_WORDS * 4) as i32);
    a.movi_sym(Reg::R2, "mol_locks");
    a.add(Reg::R1, Reg::R1, Reg::R2);
    a.call(MUTEX_LOCK);
    // delta = (pos[i] ^ pos[j]) * MIX
    a.movi_sym(Reg::R2, "pos");
    a.shli(Reg::R3, Reg::R8, 2);
    a.add(Reg::R3, Reg::R2, Reg::R3);
    a.ld(Reg::R4, Reg::R3, 0);
    a.shli(Reg::R3, Reg::R11, 2);
    a.add(Reg::R3, Reg::R2, Reg::R3);
    a.ld(Reg::R5, Reg::R3, 0);
    a.xor(Reg::R4, Reg::R4, Reg::R5);
    a.movi_u(Reg::R2, MIX);
    a.mul(Reg::R4, Reg::R4, Reg::R2);
    // acc[i] += delta; acc[j] -= delta
    a.movi_sym(Reg::R2, "acc");
    a.shli(Reg::R3, Reg::R8, 2);
    a.add(Reg::R3, Reg::R2, Reg::R3);
    a.ld(Reg::R5, Reg::R3, 0);
    a.add(Reg::R5, Reg::R5, Reg::R4);
    a.st(Reg::R3, 0, Reg::R5);
    a.shli(Reg::R3, Reg::R11, 2);
    a.add(Reg::R3, Reg::R2, Reg::R3);
    a.ld(Reg::R5, Reg::R3, 0);
    a.sub(Reg::R5, Reg::R5, Reg::R4);
    a.st(Reg::R3, 0, Reg::R5);
    // unlock second then first
    a.muli(Reg::R1, Reg::R13, (LOCK_STRIDE_WORDS * 4) as i32);
    a.movi_sym(Reg::R2, "mol_locks");
    a.add(Reg::R1, Reg::R1, Reg::R2);
    a.call(MUTEX_UNLOCK);
    a.muli(Reg::R1, Reg::R12, (LOCK_STRIDE_WORDS * 4) as i32);
    a.movi_sym(Reg::R2, "mol_locks");
    a.add(Reg::R1, Reg::R1, Reg::R2);
    a.call(MUTEX_UNLOCK);
    a.addi(Reg::R10, Reg::R10, 1);
    a.movi(Reg::R2, (WINDOW + 1) as i32);
    a.bltu(Reg::R10, Reg::R2, "wa_d");
    a.addi(Reg::R8, Reg::R8, 1);
    a.jmp("wa_i");
    // integration: barrier, then pos[i] += acc[i], acc[i] = 0
    a.label("wa_integrate");
    a.movi_sym(Reg::R1, "bar0");
    a.call(BARRIER);
    seg_bounds(&mut a);
    a.label("wa_int_i");
    a.bgeu(Reg::R8, Reg::R9, "wa_step_done");
    a.movi_sym(Reg::R2, "acc");
    a.shli(Reg::R3, Reg::R8, 2);
    a.add(Reg::R4, Reg::R2, Reg::R3);
    a.ld(Reg::R5, Reg::R4, 0);
    a.movi(Reg::R2, 0);
    a.st(Reg::R4, 0, Reg::R2);
    a.movi_sym(Reg::R2, "pos");
    a.add(Reg::R4, Reg::R2, Reg::R3);
    a.ld(Reg::R2, Reg::R4, 0);
    a.add(Reg::R2, Reg::R2, Reg::R5);
    a.st(Reg::R4, 0, Reg::R2);
    a.addi(Reg::R8, Reg::R8, 1);
    a.jmp("wa_int_i");
    a.label("wa_step_done");
    a.addi(Reg::R7, Reg::R7, -1);
    a.bnez(Reg::R7, "wa_step");
    a.movi_sym(Reg::R1, "bar0");
    a.call(BARRIER);
    a.ret();

    runtime::emit_runtime(&mut a);
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirror_moves_molecules() {
        let (n, _) = dims(Scale::Test);
        assert_ne!(mirror(Scale::Test), initial(n));
    }

    #[test]
    fn native_run_matches_mirror() {
        for t in [1, 2] {
            let program = build(t, Scale::Test).unwrap();
            let mut m = qr_cpu::Machine::new(
                program,
                qr_cpu::CpuConfig { num_cores: 2, ..qr_cpu::CpuConfig::default() },
            )
            .unwrap();
            let out = qr_os::run_native(&mut m, qr_os::OsConfig::default()).unwrap();
            assert_eq!(out.exit_code, expected_checksum(t, Scale::Test), "threads={t}");
        }
    }
}
