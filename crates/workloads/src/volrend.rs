//! `volrend` — ray casting through a read-shared volume hierarchy.
//!
//! SPLASH-2 volrend renders a volume by casting rays through a
//! precomputed octree-like hierarchy; almost all shared data is
//! *read-only* during rendering, so the workload produces very little
//! coherence conflict traffic — the low-log-rate contrast point of the
//! suite. This kernel keeps that shape: a MIP pyramid built at program
//! construction time, tiles of rays distributed by `fetch-add`, each ray
//! marching through the pyramid with an early-out test and accumulating
//! into a private image cell.

use crate::runtime::{self, CHECKSUM};
use crate::suite::{init_value, Scale};
use qr_common::Result;
use qr_isa::{Asm, Program, Reg};

const SEED: u64 = 0x701_000a;
const TILE: usize = 8;
/// Rays march this many steps through the volume.
const STEPS: u32 = 12;
/// Early-out threshold: marching stops when opacity saturates.
const OPAQUE: u32 = 0xf000_0000;

fn side(scale: Scale) -> usize {
    // image side; the volume is side*side voxels (2-D "volume" keeps the
    // integer math simple while preserving the access pattern).
    match scale {
        Scale::Test => 16,
        Scale::Small => 32,
        Scale::Reference => 80,
    }
}

/// The base volume plus one coarser MIP level (the "hierarchy").
fn volume(n: usize) -> (Vec<u32>, Vec<u32>) {
    let base: Vec<u32> = (0..n * n).map(|i| init_value(SEED, i)).collect();
    let half = n / 2;
    let mut mip = vec![0u32; half * half];
    for y in 0..half {
        for x in 0..half {
            let sum = base[(2 * y) * n + 2 * x]
                .wrapping_add(base[(2 * y) * n + 2 * x + 1])
                .wrapping_add(base[(2 * y + 1) * n + 2 * x])
                .wrapping_add(base[(2 * y + 1) * n + 2 * x + 1]);
            mip[y * half + x] = sum >> 2;
        }
    }
    (base, mip)
}

fn cast_ray(n: usize, base: &[u32], mip: &[u32], px: u32, py: u32) -> u32 {
    let half = (n / 2) as u32;
    let nn = n as u32;
    let mut acc = 0u32;
    let mut x = px;
    let mut y = py;
    for step in 0..STEPS {
        // Coarse test in the MIP level: skip "empty" regions.
        let mx = (x / 2) % half;
        let my = (y / 2) % half;
        let coarse = mip[(my * half + mx) as usize];
        if coarse & 0xff00_0000 != 0 {
            let voxel = base[((y % nn) * nn + (x % nn)) as usize];
            acc = acc.wrapping_add(voxel.rotate_left(step % 31));
            if acc >= OPAQUE {
                break; // early out: ray saturated
            }
        }
        // March diagonally with a deterministic wobble.
        x = x.wrapping_add(1 + (acc & 1));
        y = y.wrapping_add(1);
    }
    acc
}

fn mirror(scale: Scale) -> Vec<u32> {
    let n = side(scale);
    let (base, mip) = volume(n);
    let mut img = vec![0u32; n * n];
    for py in 0..n {
        for px in 0..n {
            img[py * n + px] = cast_ray(n, &base, &mip, px as u32, py as u32);
        }
    }
    img
}

/// The checksum the program exits with.
pub fn expected_checksum(_threads: usize, scale: Scale) -> u32 {
    runtime::checksum(&mirror(scale))
}

/// Builds the workload.
///
/// # Errors
///
/// Propagates assembler errors.
pub fn build(threads: usize, scale: Scale) -> Result<Program> {
    let n = side(scale);
    assert_eq!(n % TILE, 0, "side must be a multiple of the tile size");
    let (base, mip) = volume(n);
    let half = n / 2;
    let tiles_per_row = n / TILE;
    let num_tiles = tiles_per_row * tiles_per_row;
    let mut a = Asm::with_name(format!("volrend-{}x{}", threads, n));
    a.align_data_line();
    a.data_word("vol", &base);
    a.align_data_line();
    a.data_word("mip", &mip);
    a.align_data_line();
    a.data_word("image", &vec![0u32; n * n]);
    a.align_data_line();
    a.data_word("next_tile", &[0]);

    runtime::emit_main_skeleton(&mut a, threads, "vr_work", |a| {
        a.movi_sym(Reg::R1, "image");
        a.movi(Reg::R2, (n * n) as i32);
        a.call(CHECKSUM);
        a.mov(Reg::R1, Reg::R0);
    });

    // vr_work(R1 = tid)
    a.label("vr_work");
    a.label("vr_next");
    a.movi_sym(Reg::R2, "next_tile");
    a.movi(Reg::R3, 1);
    a.fetch_add(Reg::R6, Reg::R2, Reg::R3);
    a.movi(Reg::R2, num_tiles as i32);
    a.bgeu(Reg::R6, Reg::R2, "vr_done");
    // tile origin
    a.movi(Reg::R2, tiles_per_row as i32);
    a.remu(Reg::R7, Reg::R6, Reg::R2);
    a.muli(Reg::R7, Reg::R7, TILE as i32); // tx
    a.divu(Reg::R8, Reg::R6, Reg::R2);
    a.muli(Reg::R8, Reg::R8, TILE as i32); // ty
    a.movi(Reg::R9, 0); // dy
    a.label("vr_dy");
    a.movi(Reg::R10, 0); // dx
    a.label("vr_dx");
    // ray state: x r11, y r12, acc r13, step counter on the stack
    a.add(Reg::R11, Reg::R7, Reg::R10);
    a.add(Reg::R12, Reg::R8, Reg::R9);
    a.movi(Reg::R13, 0);
    a.movi(Reg::R2, 0); // step
    a.label("vr_step");
    a.push(Reg::R2); // keep the step index across the body
    // coarse = mip[((y/2) % half) * half + ((x/2) % half)]
    a.shri(Reg::R3, Reg::R11, 1);
    a.movi(Reg::R4, half as i32);
    a.remu(Reg::R3, Reg::R3, Reg::R4); // mx
    a.shri(Reg::R5, Reg::R12, 1);
    a.remu(Reg::R5, Reg::R5, Reg::R4); // my
    a.mul(Reg::R5, Reg::R5, Reg::R4);
    a.add(Reg::R3, Reg::R3, Reg::R5);
    a.shli(Reg::R3, Reg::R3, 2);
    a.movi_sym(Reg::R4, "mip");
    a.add(Reg::R3, Reg::R3, Reg::R4);
    a.ld(Reg::R3, Reg::R3, 0); // coarse
    a.movi_u(Reg::R4, 0xff00_0000);
    a.and(Reg::R3, Reg::R3, Reg::R4);
    a.beqz(Reg::R3, "vr_march");
    // voxel = vol[(y % n) * n + (x % n)]
    a.movi(Reg::R4, n as i32);
    a.remu(Reg::R3, Reg::R12, Reg::R4);
    a.mul(Reg::R3, Reg::R3, Reg::R4);
    a.remu(Reg::R5, Reg::R11, Reg::R4);
    a.add(Reg::R3, Reg::R3, Reg::R5);
    a.shli(Reg::R3, Reg::R3, 2);
    a.movi_sym(Reg::R4, "vol");
    a.add(Reg::R3, Reg::R3, Reg::R4);
    a.ld(Reg::R3, Reg::R3, 0); // voxel
    // acc += rotl(voxel, step % 31)
    a.pop(Reg::R2);
    a.push(Reg::R2);
    a.movi(Reg::R4, 31);
    a.remu(Reg::R4, Reg::R2, Reg::R4);
    a.shl(Reg::R5, Reg::R3, Reg::R4);
    a.movi(Reg::R2, 32);
    a.sub(Reg::R2, Reg::R2, Reg::R4);
    a.andi(Reg::R2, Reg::R2, 31);
    a.shr(Reg::R3, Reg::R3, Reg::R2);
    a.or(Reg::R3, Reg::R5, Reg::R3);
    a.add(Reg::R13, Reg::R13, Reg::R3);
    // early out if acc >= OPAQUE
    a.movi_u(Reg::R4, OPAQUE);
    a.bgeu(Reg::R13, Reg::R4, "vr_ray_done");
    a.label("vr_march");
    // x += 1 + (acc & 1); y += 1
    a.andi(Reg::R3, Reg::R13, 1);
    a.addi(Reg::R3, Reg::R3, 1);
    a.add(Reg::R11, Reg::R11, Reg::R3);
    a.addi(Reg::R12, Reg::R12, 1);
    a.pop(Reg::R2);
    a.addi(Reg::R2, Reg::R2, 1);
    a.movi(Reg::R3, STEPS as i32);
    a.bltu(Reg::R2, Reg::R3, "vr_step");
    a.push(Reg::R2); // balance the pop below
    a.label("vr_ray_done");
    a.pop(Reg::R2); // discard the step counter
    // image[(ty+dy)*n + (tx+dx)] = acc
    a.add(Reg::R2, Reg::R8, Reg::R9);
    a.movi(Reg::R3, n as i32);
    a.mul(Reg::R2, Reg::R2, Reg::R3);
    a.add(Reg::R3, Reg::R7, Reg::R10);
    a.add(Reg::R2, Reg::R2, Reg::R3);
    a.shli(Reg::R2, Reg::R2, 2);
    a.movi_sym(Reg::R3, "image");
    a.add(Reg::R2, Reg::R3, Reg::R2);
    a.st(Reg::R2, 0, Reg::R13);
    a.addi(Reg::R10, Reg::R10, 1);
    a.movi(Reg::R2, TILE as i32);
    a.bltu(Reg::R10, Reg::R2, "vr_dx");
    a.addi(Reg::R9, Reg::R9, 1);
    a.movi(Reg::R2, TILE as i32);
    a.bltu(Reg::R9, Reg::R2, "vr_dy");
    a.jmp("vr_next");
    a.label("vr_done");
    a.fence();
    a.ret();

    runtime::emit_runtime(&mut a);
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rays_saturate_or_accumulate() {
        let img = mirror(Scale::Test);
        assert!(img.iter().any(|&v| v != 0), "some rays hit the volume");
    }

    #[test]
    fn native_run_matches_mirror() {
        for t in [1, 3] {
            let program = build(t, Scale::Test).unwrap();
            let mut m = qr_cpu::Machine::new(
                program,
                qr_cpu::CpuConfig { num_cores: 2, ..qr_cpu::CpuConfig::default() },
            )
            .unwrap();
            let out = qr_os::run_native(&mut m, qr_os::OsConfig::default()).unwrap();
            assert_eq!(out.exit_code, expected_checksum(t, Scale::Test), "threads={t}");
        }
    }
}
