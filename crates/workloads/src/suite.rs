//! The workload suite: the reproduction's "SPLASH-2 table".

use qr_common::Result;
use qr_isa::Program;

/// Problem-size scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// Tiny inputs for unit tests (tens of thousands of instructions).
    Test,
    /// Small inputs for quick experiments.
    #[default]
    Small,
    /// Reference inputs for the experiment harness (roughly a million
    /// instructions per workload).
    Reference,
}

impl Scale {
    /// Short name for experiment output.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Test => "test",
            Scale::Small => "small",
            Scale::Reference => "reference",
        }
    }
}

/// One workload in the suite.
///
/// Specs are plain `Copy` data (static strings and function pointers), so
/// experiment jobs can capture them by value and run on worker threads.
#[derive(Clone, Copy)]
pub struct WorkloadSpec {
    /// Short name (matches the SPLASH-2 analog).
    pub name: &'static str,
    /// What the kernel does and which synchronization it exercises.
    pub description: &'static str,
    /// Builds the program.
    pub build: fn(threads: usize, scale: Scale) -> Result<Program>,
    /// The checksum the program must exit with.
    pub expected: fn(threads: usize, scale: Scale) -> u32,
}

impl std::fmt::Debug for WorkloadSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkloadSpec").field("name", &self.name).finish()
    }
}

/// The eleven-workload suite, in canonical order.
pub fn suite() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec {
            name: "fft",
            description: "staged butterfly network (Walsh-Hadamard), barriers per stage",
            build: crate::fft::build,
            expected: crate::fft::expected_checksum,
        },
        WorkloadSpec {
            name: "lu",
            description: "dense elimination, row-cyclic partitioning, barrier per pivot",
            build: crate::lu::build,
            expected: crate::lu::expected_checksum,
        },
        WorkloadSpec {
            name: "radix",
            description: "radix sort: private histograms, prefix, stable permute",
            build: crate::radix::build,
            expected: crate::radix::expected_checksum,
        },
        WorkloadSpec {
            name: "ocean",
            description: "banded Jacobi stencil, barrier per sweep",
            build: crate::ocean::build,
            expected: crate::ocean::expected_checksum,
        },
        WorkloadSpec {
            name: "barnes",
            description: "all-pairs forces + mutex-protected cell accumulation",
            build: crate::barnes::build,
            expected: crate::barnes::expected_checksum,
        },
        WorkloadSpec {
            name: "water",
            description: "windowed pairwise updates with ordered per-molecule locks",
            build: crate::water::build,
            expected: crate::water::expected_checksum,
        },
        WorkloadSpec {
            name: "fmm",
            description: "tree reduction up-sweep + down-sweep, barrier per level",
            build: crate::fmm::build,
            expected: crate::fmm::expected_checksum,
        },
        WorkloadSpec {
            name: "raytrace",
            description: "dynamic tile queue via fetch-add, per-pixel iteration",
            build: crate::raytrace::build,
            expected: crate::raytrace::expected_checksum,
        },
        WorkloadSpec {
            name: "cholesky",
            description: "dependency-driven column elimination via a ready pool",
            build: crate::cholesky::build,
            expected: crate::cholesky::expected_checksum,
        },
        WorkloadSpec {
            name: "volrend",
            description: "ray casting over a read-only MIP hierarchy, fetch-add tiles",
            build: crate::volrend::build,
            expected: crate::volrend::expected_checksum,
        },
        WorkloadSpec {
            name: "radiosity",
            description: "mutex-protected task queue with dynamic task spawning",
            build: crate::radiosity::build,
            expected: crate::radiosity::expected_checksum,
        },
    ]
}

/// Finds a workload by name.
pub fn find(name: &str) -> Option<WorkloadSpec> {
    suite().into_iter().find(|w| w.name == name)
}

/// Deterministic data initializer shared by the workloads and their
/// Rust mirrors.
pub fn init_value(seed: u64, i: usize) -> u32 {
    let mut rng = qr_common::SplitMix64::new(seed ^ (i as u64).wrapping_mul(0x9e37_79b9));
    rng.next_u32()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_eleven_unique_workloads() {
        let s = suite();
        assert_eq!(s.len(), 11);
        let mut names: Vec<_> = s.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 11);
    }

    #[test]
    fn find_locates_workloads() {
        assert!(find("fft").is_some());
        assert!(find("nope").is_none());
    }

    #[test]
    fn init_value_is_deterministic_and_spread() {
        assert_eq!(init_value(1, 5), init_value(1, 5));
        assert_ne!(init_value(1, 5), init_value(1, 6));
        assert_ne!(init_value(1, 5), init_value(2, 5));
    }
}
