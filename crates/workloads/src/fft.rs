//! `fft` — staged butterfly network (Walsh–Hadamard transform).
//!
//! The SPLASH-2 FFT's defining behaviour for the recorder is its
//! all-to-all butterfly data movement punctuated by barriers. This
//! kernel reproduces it with the integer Walsh–Hadamard butterfly
//! `(a, b) → (a + b, a − b)` (wrapping), applied in `log2 N` stages,
//! twice (WHT is an involution up to the factor `N`, which wrapping
//! arithmetic keeps exact). Pairs within a stage are disjoint, so the
//! per-thread interleaving cannot change the result.

use crate::runtime::{self, BARRIER, CHECKSUM};
use crate::suite::{init_value, Scale};
use qr_common::Result;
use qr_isa::{Asm, Program, Reg};

const SEED: u64 = 0xff7_0001;

fn size(scale: Scale) -> usize {
    match scale {
        Scale::Test => 64,
        Scale::Small => 256,
        Scale::Reference => 4096,
    }
}

/// Initial data shared by the program and the mirror.
fn initial(n: usize) -> Vec<u32> {
    (0..n).map(|i| init_value(SEED, i)).collect()
}

/// Sequential mirror of the kernel.
fn mirror(n: usize) -> Vec<u32> {
    let mut x = initial(n);
    let stages = n.trailing_zeros();
    for _pass in 0..2 {
        for stage in 0..stages {
            let stride = 1usize << stage;
            for p in 0..n / 2 {
                let i = ((p >> stage) << (stage + 1)) | (p & (stride - 1));
                let j = i + stride;
                let (a, b) = (x[i], x[j]);
                x[i] = a.wrapping_add(b);
                x[j] = a.wrapping_sub(b);
            }
        }
    }
    x
}

/// The checksum the program exits with.
pub fn expected_checksum(_threads: usize, scale: Scale) -> u32 {
    runtime::checksum(&mirror(size(scale)))
}

/// Builds the workload for `threads` threads at `scale`.
///
/// # Errors
///
/// Propagates assembler errors (none for valid parameters).
pub fn build(threads: usize, scale: Scale) -> Result<Program> {
    let n = size(scale);
    let log2n = n.trailing_zeros() as i32;
    let mut a = Asm::with_name(format!("fft-{}x{}", threads, n));
    a.align_data_line();
    a.data_word("data", &initial(n));
    runtime::emit_barrier_block(&mut a, "bar0", threads as u32);

    runtime::emit_main_skeleton(&mut a, threads, "fft_work", |a| {
        a.movi_sym(Reg::R1, "data");
        a.movi(Reg::R2, n as i32);
        a.call(CHECKSUM);
        a.mov(Reg::R1, Reg::R0);
    });

    // fft_work(R1 = tid)
    //
    // Pairs are split into contiguous per-thread ranges (as SPLASH-2 FFT
    // partitions its data), so within a stage threads touch disjoint
    // line ranges except at block boundaries — interleaved assignment
    // would shred every chunk on false sharing.
    a.label("fft_work");
    a.mov(Reg::R6, Reg::R1); // tid
    a.movi(Reg::R12, 2); // passes
    a.label("fft_pass");
    a.movi(Reg::R7, 0); // stage
    a.label("fft_stage");
    a.movi_sym(Reg::R1, "bar0");
    a.call(BARRIER);
    a.movi(Reg::R8, 1);
    a.shl(Reg::R8, Reg::R8, Reg::R7); // stride = 1 << stage
    // p range: [tid * (n/2) / T, (tid + 1) * (n/2) / T)
    a.movi(Reg::R2, (n / 2) as i32);
    a.mul(Reg::R9, Reg::R6, Reg::R2);
    a.movi(Reg::R3, threads as i32);
    a.divu(Reg::R9, Reg::R9, Reg::R3);
    a.addi(Reg::R4, Reg::R6, 1);
    a.mul(Reg::R13, Reg::R4, Reg::R2);
    a.divu(Reg::R13, Reg::R13, Reg::R3);
    a.label("fft_pair");
    a.bgeu(Reg::R9, Reg::R13, "fft_pair_done");
    // i = ((p >> stage) << (stage + 1)) | (p & (stride - 1))
    a.shr(Reg::R3, Reg::R9, Reg::R7);
    a.addi(Reg::R4, Reg::R7, 1);
    a.shl(Reg::R3, Reg::R3, Reg::R4);
    a.addi(Reg::R5, Reg::R8, -1);
    a.and(Reg::R5, Reg::R9, Reg::R5);
    a.or(Reg::R3, Reg::R3, Reg::R5);
    // &x[i], &x[j]
    a.shli(Reg::R4, Reg::R3, 2);
    a.movi_sym(Reg::R2, "data");
    a.add(Reg::R4, Reg::R2, Reg::R4);
    a.shli(Reg::R5, Reg::R8, 2);
    a.add(Reg::R5, Reg::R4, Reg::R5);
    // butterfly
    a.ld(Reg::R2, Reg::R4, 0);
    a.ld(Reg::R3, Reg::R5, 0);
    a.add(Reg::R10, Reg::R2, Reg::R3);
    a.sub(Reg::R11, Reg::R2, Reg::R3);
    a.st(Reg::R4, 0, Reg::R10);
    a.st(Reg::R5, 0, Reg::R11);
    a.addi(Reg::R9, Reg::R9, 1);
    a.jmp("fft_pair");
    a.label("fft_pair_done");
    a.addi(Reg::R7, Reg::R7, 1);
    a.movi(Reg::R2, log2n);
    a.bltu(Reg::R7, Reg::R2, "fft_stage");
    a.addi(Reg::R12, Reg::R12, -1);
    a.bnez(Reg::R12, "fft_pass");
    // Settle before main reads the data.
    a.movi_sym(Reg::R1, "bar0");
    a.call(BARRIER);
    a.ret();

    runtime::emit_runtime(&mut a);
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wht_twice_scales_by_n() {
        let n = 64;
        let x0 = initial(n);
        let x2 = mirror(n);
        for i in 0..n {
            assert_eq!(x2[i], x0[i].wrapping_mul(n as u32), "index {i}");
        }
    }

    #[test]
    fn builds_for_various_thread_counts() {
        for t in [1, 2, 4] {
            let p = build(t, Scale::Test).unwrap();
            assert!(p.len() > 40);
        }
    }

    #[test]
    fn native_run_matches_mirror() {
        for t in [1, 3] {
            let program = build(t, Scale::Test).unwrap();
            let mut m = qr_cpu::Machine::new(
                program,
                qr_cpu::CpuConfig { num_cores: 2, ..qr_cpu::CpuConfig::default() },
            )
            .unwrap();
            let out = qr_os::run_native(&mut m, qr_os::OsConfig::default()).unwrap();
            assert_eq!(out.exit_code, expected_checksum(t, Scale::Test), "threads={t}");
        }
    }
}
