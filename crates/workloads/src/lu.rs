//! `lu` — dense elimination with row-cyclic partitioning.
//!
//! The SPLASH-2 LU kernel's recorder-relevant behaviour is the pivot-row
//! broadcast: after each step `k`, every thread reads row `k` (written
//! by its owner) while updating its own rows — a producer/consumer
//! sharing pattern with one barrier per pivot. This kernel reproduces it
//! with wrapping-integer elimination (`A[i][j] -= A[i][k] * A[k][j]`),
//! rows assigned round-robin to threads.

use crate::runtime::{self, BARRIER, CHECKSUM};
use crate::suite::{init_value, Scale};
use qr_common::Result;
use qr_isa::{Asm, Program, Reg};

const SEED: u64 = 0x10_0002;

fn size(scale: Scale) -> usize {
    match scale {
        Scale::Test => 14,
        Scale::Small => 28,
        Scale::Reference => 64,
    }
}

fn initial(n: usize) -> Vec<u32> {
    (0..n * n).map(|i| init_value(SEED, i)).collect()
}

fn mirror(n: usize) -> Vec<u32> {
    let mut m = initial(n);
    for k in 0..n - 1 {
        for i in k + 1..n {
            let mult = m[i * n + k];
            for j in k..n {
                let sub = mult.wrapping_mul(m[k * n + j]);
                m[i * n + j] = m[i * n + j].wrapping_sub(sub);
            }
        }
    }
    m
}

/// The checksum the program exits with.
pub fn expected_checksum(_threads: usize, scale: Scale) -> u32 {
    runtime::checksum(&mirror(size(scale)))
}

/// Builds the workload.
///
/// # Errors
///
/// Propagates assembler errors.
pub fn build(threads: usize, scale: Scale) -> Result<Program> {
    let n = size(scale);
    let mut a = Asm::with_name(format!("lu-{}x{}", threads, n));
    a.align_data_line();
    a.data_word("mat", &initial(n));
    runtime::emit_barrier_block(&mut a, "bar0", threads as u32);

    runtime::emit_main_skeleton(&mut a, threads, "lu_work", |a| {
        a.movi_sym(Reg::R1, "mat");
        a.movi(Reg::R2, (n * n) as i32);
        a.call(CHECKSUM);
        a.mov(Reg::R1, Reg::R0);
    });

    // lu_work(R1 = tid)
    a.label("lu_work");
    a.mov(Reg::R6, Reg::R1);
    a.movi(Reg::R7, 0); // k
    a.label("lu_k");
    a.movi_sym(Reg::R1, "bar0");
    a.call(BARRIER);
    a.addi(Reg::R8, Reg::R7, 1); // i = k + 1
    a.label("lu_i");
    a.movi(Reg::R2, n as i32);
    a.bgeu(Reg::R8, Reg::R2, "lu_i_done");
    // Row owner: i % threads == tid
    a.movi(Reg::R2, threads as i32);
    a.remu(Reg::R3, Reg::R8, Reg::R2);
    a.bne(Reg::R3, Reg::R6, "lu_next_i");
    // r9 = &A[i][0], r10 = &A[k][0]
    a.movi(Reg::R2, (n * 4) as i32);
    a.mul(Reg::R9, Reg::R8, Reg::R2);
    a.movi_sym(Reg::R3, "mat");
    a.add(Reg::R9, Reg::R9, Reg::R3);
    a.mul(Reg::R10, Reg::R7, Reg::R2);
    a.add(Reg::R10, Reg::R10, Reg::R3);
    // r11 = mult = A[i][k]
    a.shli(Reg::R4, Reg::R7, 2);
    a.add(Reg::R5, Reg::R9, Reg::R4);
    a.ld(Reg::R11, Reg::R5, 0);
    // j loop from k
    a.mov(Reg::R12, Reg::R7);
    a.label("lu_j");
    a.movi(Reg::R2, n as i32);
    a.bgeu(Reg::R12, Reg::R2, "lu_next_i");
    a.shli(Reg::R2, Reg::R12, 2);
    a.add(Reg::R3, Reg::R10, Reg::R2);
    a.ld(Reg::R4, Reg::R3, 0); // A[k][j]
    a.mul(Reg::R4, Reg::R4, Reg::R11);
    a.add(Reg::R5, Reg::R9, Reg::R2);
    a.ld(Reg::R2, Reg::R5, 0); // A[i][j]
    a.sub(Reg::R2, Reg::R2, Reg::R4);
    a.st(Reg::R5, 0, Reg::R2);
    a.addi(Reg::R12, Reg::R12, 1);
    a.jmp("lu_j");
    a.label("lu_next_i");
    a.addi(Reg::R8, Reg::R8, 1);
    a.jmp("lu_i");
    a.label("lu_i_done");
    a.addi(Reg::R7, Reg::R7, 1);
    a.movi(Reg::R2, (n - 1) as i32);
    a.bltu(Reg::R7, Reg::R2, "lu_k");
    a.movi_sym(Reg::R1, "bar0");
    a.call(BARRIER);
    a.ret();

    runtime::emit_runtime(&mut a);
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirror_changes_the_matrix() {
        let n = size(Scale::Test);
        assert_ne!(mirror(n), initial(n));
    }

    #[test]
    fn native_run_matches_mirror() {
        for t in [1, 2] {
            let program = build(t, Scale::Test).unwrap();
            let mut m = qr_cpu::Machine::new(
                program,
                qr_cpu::CpuConfig { num_cores: 2, ..qr_cpu::CpuConfig::default() },
            )
            .unwrap();
            let out = qr_os::run_native(&mut m, qr_os::OsConfig::default()).unwrap();
            assert_eq!(out.exit_code, expected_checksum(t, Scale::Test), "threads={t}");
        }
    }
}
