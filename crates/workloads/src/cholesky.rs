//! `cholesky` — dependency-driven column elimination.
//!
//! SPLASH-2 cholesky is the suite's task-DAG member: a column can be
//! eliminated only after every earlier column has updated it, and ready
//! columns are distributed through a shared pool. This kernel keeps
//! that structure with wrapping-integer arithmetic:
//!
//! - a mutex-protected ready queue seeded with column 0,
//! - per-column atomic dependency counters (column `j` waits for `j`
//!   updates),
//! - per-column mutexes protecting the update `A[*][j] -= A[*][k] *
//!   A[j][k]` (updates use only *finalized* source columns, so they
//!   commute and the result is schedule-independent).

use crate::runtime::{self, CHECKSUM, MUTEX_LOCK, MUTEX_UNLOCK};
use crate::suite::{init_value, Scale};
use qr_common::Result;
use qr_isa::{abi, Asm, Program, Reg};

const SEED: u64 = 0xc401_0009;
const LOCK_STRIDE_WORDS: usize = 16;

fn size(scale: Scale) -> usize {
    match scale {
        Scale::Test => 10,
        Scale::Small => 20,
        Scale::Reference => 64,
    }
}

fn initial(n: usize) -> Vec<u32> {
    (0..n * n).map(|i| init_value(SEED, i)).collect()
}

fn finalize_column(m: &mut [u32], n: usize, k: usize) {
    // "Divide by the pivot": an integer stand-in that keeps the column
    // finalization step observable.
    let pivot = m[k * n + k] | 1;
    for i in 0..n {
        m[i * n + k] = m[i * n + k].wrapping_mul(pivot).rotate_left(1);
    }
}

fn update_column(m: &mut [u32], n: usize, k: usize, j: usize) {
    let mult = m[j * n + k];
    for i in 0..n {
        let sub = m[i * n + k].wrapping_mul(mult);
        m[i * n + j] = m[i * n + j].wrapping_sub(sub);
    }
}

fn mirror(scale: Scale) -> Vec<u32> {
    let n = size(scale);
    let mut m = initial(n);
    for k in 0..n {
        finalize_column(&mut m, n, k);
        for j in k + 1..n {
            update_column(&mut m, n, k, j);
        }
    }
    m
}

/// The checksum the program exits with.
pub fn expected_checksum(_threads: usize, scale: Scale) -> u32 {
    runtime::checksum(&mirror(scale))
}

/// Builds the workload.
///
/// # Errors
///
/// Propagates assembler errors.
pub fn build(threads: usize, scale: Scale) -> Result<Program> {
    let n = size(scale);
    let mut a = Asm::with_name(format!("cholesky-{}x{}", threads, n));
    a.align_data_line();
    a.data_word("mat", &initial(n));
    a.align_data_line();
    // ready queue: column indices; meta: head, tail, done-count
    a.data_word("queue", &{
        let mut q = vec![0u32; n];
        q[0] = 0; // column 0 seeded
        q
    });
    a.align_data_line();
    a.data_word("qmeta", &[0, 1, 0]); // head, tail, columns completed
    a.align_data_line();
    a.data_word("qlock", &[0]);
    a.align_data_line();
    // deps[j] = j updates outstanding before column j is ready
    a.data_word("deps", &(0..n as u32).collect::<Vec<u32>>());
    a.align_data_line();
    a.data_word("col_locks", &vec![0u32; n * LOCK_STRIDE_WORDS]);

    runtime::emit_main_skeleton(&mut a, threads, "ch_work", |a| {
        a.movi_sym(Reg::R1, "mat");
        a.movi(Reg::R2, (n * n) as i32);
        a.call(CHECKSUM);
        a.mov(Reg::R1, Reg::R0);
    });

    // ch_work(R1 = tid): take ready columns until all are done.
    a.label("ch_work");
    a.label("ch_take");
    a.movi_sym(Reg::R1, "qlock");
    a.call(MUTEX_LOCK);
    a.movi_sym(Reg::R2, "qmeta");
    a.ld(Reg::R3, Reg::R2, 0); // head
    a.ld(Reg::R4, Reg::R2, 4); // tail
    a.bgeu(Reg::R3, Reg::R4, "ch_empty");
    a.movi_sym(Reg::R5, "queue");
    a.shli(Reg::R4, Reg::R3, 2);
    a.add(Reg::R4, Reg::R5, Reg::R4);
    a.ld(Reg::R6, Reg::R4, 0); // k = queue[head]
    a.addi(Reg::R3, Reg::R3, 1);
    a.st(Reg::R2, 0, Reg::R3);
    a.movi_sym(Reg::R1, "qlock");
    a.call(MUTEX_UNLOCK);
    a.jmp("ch_process");
    a.label("ch_empty");
    a.ld(Reg::R5, Reg::R2, 8); // completed
    a.movi_sym(Reg::R1, "qlock");
    a.call(MUTEX_UNLOCK);
    a.movi(Reg::R2, n as i32);
    a.bltu(Reg::R5, Reg::R2, "ch_retry");
    a.ret(); // all columns completed
    a.label("ch_retry");
    a.movi_u(Reg::R0, abi::SYS_YIELD);
    a.syscall();
    a.jmp("ch_take");

    // process column k (in r6)
    a.label("ch_process");
    // finalize: pivot = mat[k][k] | 1; col[i] = (col[i]*pivot) rotl 1
    a.movi(Reg::R2, (n * 4) as i32);
    a.mul(Reg::R7, Reg::R6, Reg::R2); // k * row stride -> row k offset
    a.movi_sym(Reg::R3, "mat");
    a.add(Reg::R7, Reg::R7, Reg::R3); // &mat[k][0]
    a.shli(Reg::R4, Reg::R6, 2);
    a.add(Reg::R5, Reg::R7, Reg::R4);
    a.ld(Reg::R8, Reg::R5, 0); // mat[k][k]
    a.ori(Reg::R8, Reg::R8, 1); // pivot
    // walk column k: element addr = mat + (i*n + k)*4
    a.movi(Reg::R9, 0); // i
    a.label("ch_fin");
    a.movi(Reg::R2, n as i32);
    a.bgeu(Reg::R9, Reg::R2, "ch_fin_done");
    a.movi(Reg::R2, (n * 4) as i32);
    a.mul(Reg::R3, Reg::R9, Reg::R2);
    a.movi_sym(Reg::R4, "mat");
    a.add(Reg::R3, Reg::R3, Reg::R4);
    a.shli(Reg::R4, Reg::R6, 2);
    a.add(Reg::R3, Reg::R3, Reg::R4); // &mat[i][k]
    a.ld(Reg::R5, Reg::R3, 0);
    a.mul(Reg::R5, Reg::R5, Reg::R8);
    // rotate left 1
    a.shli(Reg::R2, Reg::R5, 1);
    a.shri(Reg::R5, Reg::R5, 31);
    a.or(Reg::R5, Reg::R2, Reg::R5);
    a.st(Reg::R3, 0, Reg::R5);
    a.addi(Reg::R9, Reg::R9, 1);
    a.jmp("ch_fin");
    a.label("ch_fin_done");
    a.fence();
    // update columns j = k+1 .. n
    a.addi(Reg::R7, Reg::R6, 1); // j
    a.label("ch_j");
    a.movi(Reg::R2, n as i32);
    a.bgeu(Reg::R7, Reg::R2, "ch_done_col");
    // lock col j
    a.muli(Reg::R1, Reg::R7, (LOCK_STRIDE_WORDS * 4) as i32);
    a.movi_sym(Reg::R2, "col_locks");
    a.add(Reg::R1, Reg::R1, Reg::R2);
    a.call(MUTEX_LOCK);
    // mult = mat[j][k]
    a.movi(Reg::R2, (n * 4) as i32);
    a.mul(Reg::R8, Reg::R7, Reg::R2);
    a.movi_sym(Reg::R3, "mat");
    a.add(Reg::R8, Reg::R8, Reg::R3);
    a.shli(Reg::R4, Reg::R6, 2);
    a.add(Reg::R5, Reg::R8, Reg::R4);
    a.ld(Reg::R8, Reg::R5, 0); // mult
    // for i: mat[i][j] -= mat[i][k] * mult
    a.movi(Reg::R9, 0);
    a.label("ch_upd");
    a.movi(Reg::R2, n as i32);
    a.bgeu(Reg::R9, Reg::R2, "ch_upd_done");
    a.movi(Reg::R2, (n * 4) as i32);
    a.mul(Reg::R3, Reg::R9, Reg::R2);
    a.movi_sym(Reg::R4, "mat");
    a.add(Reg::R3, Reg::R3, Reg::R4); // &mat[i][0]
    a.shli(Reg::R4, Reg::R6, 2);
    a.add(Reg::R4, Reg::R3, Reg::R4);
    a.ld(Reg::R5, Reg::R4, 0); // mat[i][k]
    a.mul(Reg::R5, Reg::R5, Reg::R8);
    a.shli(Reg::R4, Reg::R7, 2);
    a.add(Reg::R4, Reg::R3, Reg::R4);
    a.ld(Reg::R2, Reg::R4, 0); // mat[i][j]
    a.sub(Reg::R2, Reg::R2, Reg::R5);
    a.st(Reg::R4, 0, Reg::R2);
    a.addi(Reg::R9, Reg::R9, 1);
    a.jmp("ch_upd");
    a.label("ch_upd_done");
    // unlock col j
    a.muli(Reg::R1, Reg::R7, (LOCK_STRIDE_WORDS * 4) as i32);
    a.movi_sym(Reg::R2, "col_locks");
    a.add(Reg::R1, Reg::R1, Reg::R2);
    a.call(MUTEX_UNLOCK);
    // deps[j] -= 1 (atomic); if now 0 -> enqueue j
    a.movi_sym(Reg::R2, "deps");
    a.shli(Reg::R3, Reg::R7, 2);
    a.add(Reg::R2, Reg::R2, Reg::R3);
    a.movi(Reg::R3, -1);
    a.fetch_add(Reg::R4, Reg::R2, Reg::R3); // old value
    a.movi(Reg::R2, 1);
    a.bne(Reg::R4, Reg::R2, "ch_next_j");
    // enqueue j
    a.movi_sym(Reg::R1, "qlock");
    a.call(MUTEX_LOCK);
    a.movi_sym(Reg::R2, "qmeta");
    a.ld(Reg::R3, Reg::R2, 4); // tail
    a.movi_sym(Reg::R4, "queue");
    a.shli(Reg::R5, Reg::R3, 2);
    a.add(Reg::R4, Reg::R4, Reg::R5);
    a.st(Reg::R4, 0, Reg::R7);
    a.addi(Reg::R3, Reg::R3, 1);
    a.st(Reg::R2, 4, Reg::R3);
    a.movi_sym(Reg::R1, "qlock");
    a.call(MUTEX_UNLOCK);
    a.label("ch_next_j");
    a.addi(Reg::R7, Reg::R7, 1);
    a.jmp("ch_j");
    // column k fully processed: completed += 1
    a.label("ch_done_col");
    a.movi_sym(Reg::R1, "qlock");
    a.call(MUTEX_LOCK);
    a.movi_sym(Reg::R2, "qmeta");
    a.ld(Reg::R3, Reg::R2, 8);
    a.addi(Reg::R3, Reg::R3, 1);
    a.st(Reg::R2, 8, Reg::R3);
    a.movi_sym(Reg::R1, "qlock");
    a.call(MUTEX_UNLOCK);
    a.jmp("ch_take");

    runtime::emit_runtime(&mut a);
    // The worker entry label from the skeleton calls "ch_work": alias it
    // to the take loop.
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirror_transforms_the_matrix() {
        let n = size(Scale::Test);
        assert_ne!(mirror(Scale::Test), initial(n));
    }

    #[test]
    fn native_run_matches_mirror() {
        for t in [1, 2, 4] {
            let program = build(t, Scale::Test).unwrap();
            let mut m = qr_cpu::Machine::new(
                program,
                qr_cpu::CpuConfig { num_cores: 2, ..qr_cpu::CpuConfig::default() },
            )
            .unwrap();
            let out = qr_os::run_native(&mut m, qr_os::OsConfig::default()).unwrap();
            assert_eq!(out.exit_code, expected_checksum(t, Scale::Test), "threads={t}");
        }
    }
}
