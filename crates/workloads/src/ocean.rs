//! `ocean` — banded Jacobi stencil.
//!
//! SPLASH-2 ocean is dominated by nearest-neighbour grid sharing: each
//! thread owns a band of rows and exchanges boundary rows with its
//! neighbours every sweep, separated by barriers. This kernel runs a
//! five-point wrapping-integer Jacobi update over a double-buffered
//! grid; only band-boundary rows produce cross-thread traffic, which is
//! exactly the light-sharing profile the paper's ocean exhibits.

use crate::runtime::{self, BARRIER, CHECKSUM};
use crate::suite::{init_value, Scale};
use qr_common::Result;
use qr_isa::{Asm, Program, Reg};

const SEED: u64 = 0x0cea_0003;

fn dims(scale: Scale) -> (usize, usize) {
    // (grid side, sweeps)
    match scale {
        Scale::Test => (16, 4),
        Scale::Small => (30, 6),
        Scale::Reference => (64, 12),
    }
}

fn initial(g: usize) -> Vec<u32> {
    (0..g * g).map(|i| init_value(SEED, i)).collect()
}

fn step(g: usize, src: &[u32], dst: &mut [u32]) {
    for i in 1..g - 1 {
        for j in 1..g - 1 {
            let sum = src[i * g + j]
                .wrapping_add(src[(i - 1) * g + j])
                .wrapping_add(src[(i + 1) * g + j])
                .wrapping_add(src[i * g + j - 1])
                .wrapping_add(src[i * g + j + 1]);
            dst[i * g + j] = sum >> 2;
        }
    }
    // Borders copy through.
    for j in 0..g {
        dst[j] = src[j];
        dst[(g - 1) * g + j] = src[(g - 1) * g + j];
    }
    for i in 0..g {
        dst[i * g] = src[i * g];
        dst[i * g + g - 1] = src[i * g + g - 1];
    }
}

fn mirror(scale: Scale) -> Vec<u32> {
    let (g, sweeps) = dims(scale);
    let mut a = initial(g);
    let mut b = vec![0u32; g * g];
    for _ in 0..sweeps {
        step(g, &a, &mut b);
        std::mem::swap(&mut a, &mut b);
    }
    a
}

/// The checksum the program exits with (the grid after an even number of
/// sweeps lives in buffer A iff `sweeps` is even — the builder checksums
/// the correct buffer).
pub fn expected_checksum(_threads: usize, scale: Scale) -> u32 {
    runtime::checksum(&mirror(scale))
}

/// Builds the workload.
///
/// # Errors
///
/// Propagates assembler errors.
pub fn build(threads: usize, scale: Scale) -> Result<Program> {
    let (g, sweeps) = dims(scale);
    let mut a = Asm::with_name(format!("ocean-{}x{}", threads, g));
    a.align_data_line();
    a.data_word("grid_a", &initial(g));
    a.align_data_line();
    a.data_word("grid_b", &vec![0u32; g * g]);
    runtime::emit_barrier_block(&mut a, "bar0", threads as u32);

    let final_buf = if sweeps % 2 == 0 { "grid_a" } else { "grid_b" };
    runtime::emit_main_skeleton(&mut a, threads, "ocean_work", |a| {
        a.movi_sym(Reg::R1, final_buf);
        a.movi(Reg::R2, (g * g) as i32);
        a.call(CHECKSUM);
        a.mov(Reg::R1, Reg::R0);
    });

    // Interior rows 1..g-1 split into contiguous bands per thread.
    let interior = g - 2;

    // ocean_work(R1 = tid)
    a.label("ocean_work");
    a.mov(Reg::R6, Reg::R1);
    a.movi(Reg::R13, sweeps as i32);
    a.movi_sym(Reg::R10, "grid_a"); // src
    a.movi_sym(Reg::R11, "grid_b"); // dst
    a.label("ocean_sweep");
    a.movi_sym(Reg::R1, "bar0");
    a.call(BARRIER);
    // Compute my band bounds from tid with a jump table-free formula:
    // lo = 1 + tid*interior/threads; emitted per-thread via comparisons
    // is awkward in asm, so compute numerically: r7 = lo, r12 = hi.
    a.movi(Reg::R2, interior as i32);
    a.mul(Reg::R7, Reg::R6, Reg::R2);
    a.movi(Reg::R3, threads as i32);
    a.divu(Reg::R7, Reg::R7, Reg::R3);
    a.addi(Reg::R7, Reg::R7, 1);
    a.addi(Reg::R4, Reg::R6, 1);
    a.mul(Reg::R12, Reg::R4, Reg::R2);
    a.divu(Reg::R12, Reg::R12, Reg::R3);
    a.addi(Reg::R12, Reg::R12, 1);
    a.label("ocean_row");
    a.bgeu(Reg::R7, Reg::R12, "ocean_rows_done");
    // r8 = j = 1
    a.movi(Reg::R8, 1);
    a.label("ocean_col");
    a.movi(Reg::R2, (g - 1) as i32);
    a.bgeu(Reg::R8, Reg::R2, "ocean_cols_done");
    // r9 = byte offset of (i, j)
    a.movi(Reg::R2, g as i32);
    a.mul(Reg::R9, Reg::R7, Reg::R2);
    a.add(Reg::R9, Reg::R9, Reg::R8);
    a.shli(Reg::R9, Reg::R9, 2);
    // sum = src[i][j] + up + down + left + right
    a.add(Reg::R3, Reg::R10, Reg::R9);
    a.ld(Reg::R4, Reg::R3, 0);
    a.ld(Reg::R5, Reg::R3, -((g * 4) as i32));
    a.add(Reg::R4, Reg::R4, Reg::R5);
    a.ld(Reg::R5, Reg::R3, (g * 4) as i32);
    a.add(Reg::R4, Reg::R4, Reg::R5);
    a.ld(Reg::R5, Reg::R3, -4);
    a.add(Reg::R4, Reg::R4, Reg::R5);
    a.ld(Reg::R5, Reg::R3, 4);
    a.add(Reg::R4, Reg::R4, Reg::R5);
    a.shri(Reg::R4, Reg::R4, 2);
    a.add(Reg::R3, Reg::R11, Reg::R9);
    a.st(Reg::R3, 0, Reg::R4);
    a.addi(Reg::R8, Reg::R8, 1);
    a.jmp("ocean_col");
    a.label("ocean_cols_done");
    a.addi(Reg::R7, Reg::R7, 1);
    a.jmp("ocean_row");
    a.label("ocean_rows_done");
    // Thread 0 copies the borders through.
    a.bnez(Reg::R6, "ocean_swap");
    a.movi(Reg::R7, 0);
    a.label("ocean_border");
    a.movi(Reg::R2, g as i32);
    a.bgeu(Reg::R7, Reg::R2, "ocean_swap");
    // top row j=r7 and bottom row
    a.shli(Reg::R3, Reg::R7, 2);
    a.add(Reg::R4, Reg::R10, Reg::R3);
    a.ld(Reg::R5, Reg::R4, 0);
    a.add(Reg::R4, Reg::R11, Reg::R3);
    a.st(Reg::R4, 0, Reg::R5);
    a.movi(Reg::R2, ((g - 1) * g * 4) as i32);
    a.add(Reg::R3, Reg::R3, Reg::R2);
    a.add(Reg::R4, Reg::R10, Reg::R3);
    a.ld(Reg::R5, Reg::R4, 0);
    a.add(Reg::R4, Reg::R11, Reg::R3);
    a.st(Reg::R4, 0, Reg::R5);
    // left column i=r7 and right column
    a.movi(Reg::R2, (g * 4) as i32);
    a.mul(Reg::R3, Reg::R7, Reg::R2);
    a.add(Reg::R4, Reg::R10, Reg::R3);
    a.ld(Reg::R5, Reg::R4, 0);
    a.add(Reg::R4, Reg::R11, Reg::R3);
    a.st(Reg::R4, 0, Reg::R5);
    a.addi(Reg::R3, Reg::R3, ((g - 1) * 4) as i32);
    a.add(Reg::R4, Reg::R10, Reg::R3);
    a.ld(Reg::R5, Reg::R4, 0);
    a.add(Reg::R4, Reg::R11, Reg::R3);
    a.st(Reg::R4, 0, Reg::R5);
    a.addi(Reg::R7, Reg::R7, 1);
    a.jmp("ocean_border");
    a.label("ocean_swap");
    // swap src/dst
    a.mov(Reg::R2, Reg::R10);
    a.mov(Reg::R10, Reg::R11);
    a.mov(Reg::R11, Reg::R2);
    a.addi(Reg::R13, Reg::R13, -1);
    a.bnez(Reg::R13, "ocean_sweep");
    a.movi_sym(Reg::R1, "bar0");
    a.call(BARRIER);
    a.ret();

    runtime::emit_runtime(&mut a);
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirror_is_stable_under_repeat() {
        assert_eq!(mirror(Scale::Test), mirror(Scale::Test));
    }

    #[test]
    fn native_run_matches_mirror() {
        for t in [1, 3] {
            let program = build(t, Scale::Test).unwrap();
            let mut m = qr_cpu::Machine::new(
                program,
                qr_cpu::CpuConfig { num_cores: 2, ..qr_cpu::CpuConfig::default() },
            )
            .unwrap();
            let out = qr_os::run_native(&mut m, qr_os::OsConfig::default()).unwrap();
            assert_eq!(out.exit_code, expected_checksum(t, Scale::Test), "threads={t}");
        }
    }
}
