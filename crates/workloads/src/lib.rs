#![warn(missing_docs)]

//! SPLASH-2-style workloads for the QuickRec reproduction.
//!
//! The paper evaluates recording on SPLASH-2; this crate provides nine
//! kernels written in the PIA ISA that reproduce the synchronization and
//! sharing patterns that drive the recorded behaviour:
//!
//! | Workload | Pattern (SPLASH-2 analog) |
//! |---|---|
//! | [`fft`]       | staged butterfly network with barriers (fft) |
//! | [`lu`]        | blocked elimination, row-cyclic + barriers (lu) |
//! | [`radix`]     | histogram + prefix + permute passes (radix) |
//! | [`ocean`]     | banded Jacobi stencil iterations (ocean) |
//! | [`barnes`]    | all-pairs forces + locked cell accumulation (barnes) |
//! | [`water`]     | windowed pairwise interactions with ordered per-molecule locks (water) |
//! | [`fmm`]       | tree up/down sweeps with per-level barriers (fmm) |
//! | [`raytrace`]  | dynamic tile queue via fetch-add (raytrace) |
//! | [`radiosity`] | mutex-protected task queue with task spawning (radiosity) |
//! | [`cholesky`]  | dependency-driven column elimination, ready pool (cholesky) |
//! | [`volrend`]   | ray casting through a read-shared hierarchy (volrend) |
//!
//! Every builder returns a [`qr_isa::Program`] whose main thread spawns
//! `threads - 1` workers, joins them, folds the output into a 32-bit
//! checksum and exits with it; `expected_checksum` computes the same
//! value with a sequential Rust mirror, so a run is *self-validating*:
//! exit code == expected checksum.
//!
//! All arithmetic is wrapping `u32`, and cross-thread accumulations are
//! either partitioned (barrier phases) or commutative (wrapping adds
//! under locks), so checksums are schedule-independent.

pub mod barnes;
pub mod cholesky;
pub mod fft;
pub mod fmm;
pub mod lu;
pub mod ocean;
pub mod radiosity;
pub mod radix;
pub mod raytrace;
pub mod runtime;
pub mod suite;
pub mod volrend;

pub use suite::{find, suite, Scale, WorkloadSpec};

/// Water is implemented in its own module.
pub mod water;
