//! `fmm` — hierarchical tree sweeps.
//!
//! SPLASH-2 FMM's characteristic pattern is the tree traversal: partial
//! results flow up the hierarchy and distribute back down, with the
//! active (and shared) working set shrinking toward the root. This
//! kernel runs an exact analog: an up-sweep computing internal-node sums
//! over a binary heap and a down-sweep distributing exclusive prefix
//! values to the leaves, with threads splitting every level and a
//! barrier between levels.

use crate::runtime::{self, BARRIER, CHECKSUM};
use crate::suite::{init_value, Scale};
use qr_common::Result;
use qr_isa::{Asm, Program, Reg};

const SEED: u64 = 0xf33d_0007;

fn leaves(scale: Scale) -> usize {
    match scale {
        Scale::Test => 64,
        Scale::Small => 512,
        Scale::Reference => 8192,
    }
}

fn initial(n: usize) -> Vec<u32> {
    (0..n).map(|i| init_value(SEED, i)).collect()
}

/// Sequential mirror: heap-indexed up-sweep and down-sweep.
fn mirror(scale: Scale) -> Vec<u32> {
    let n = leaves(scale);
    let mut up = vec![0u32; 2 * n];
    up[n..2 * n].copy_from_slice(&initial(n));
    let mut half = n / 2;
    while half >= 1 {
        for k in half..2 * half {
            up[k] = up[2 * k].wrapping_add(up[2 * k + 1]);
        }
        half /= 2;
    }
    let mut down = vec![0u32; 2 * n];
    down[1] = up[1]; // the root carries the global total
    let mut start = 2;
    while start < 2 * n {
        for k in start..2 * start {
            down[k] = down[k / 2];
            if k % 2 == 1 {
                down[k] = down[k].wrapping_add(up[k - 1]);
            }
        }
        start *= 2;
    }
    down[n..2 * n].to_vec()
}

/// The checksum the program exits with (leaf-level down values).
pub fn expected_checksum(_threads: usize, scale: Scale) -> u32 {
    runtime::checksum(&mirror(scale))
}

/// Builds the workload.
///
/// # Errors
///
/// Propagates assembler errors.
pub fn build(threads: usize, scale: Scale) -> Result<Program> {
    let n = leaves(scale);
    let mut a = Asm::with_name(format!("fmm-{}x{}", threads, n));
    let mut up_init = vec![0u32; 2 * n];
    up_init[n..2 * n].copy_from_slice(&initial(n));
    a.align_data_line();
    a.data_word("up", &up_init);
    a.align_data_line();
    a.data_word("down", &vec![0u32; 2 * n]);
    runtime::emit_barrier_block(&mut a, "bar0", threads as u32);

    runtime::emit_main_skeleton(&mut a, threads, "fm_work", |a| {
        a.movi_sym(Reg::R1, "down");
        a.movi_u(Reg::R2, (n * 4) as u32);
        a.add(Reg::R1, Reg::R1, Reg::R2);
        a.movi(Reg::R2, n as i32);
        a.call(CHECKSUM);
        a.mov(Reg::R1, Reg::R0);
    });

    // fm_work(R1 = tid)
    a.label("fm_work");
    a.mov(Reg::R6, Reg::R1);
    // Up-sweep: half = n/2 down to 1.
    a.movi(Reg::R7, (n / 2) as i32);
    a.label("fm_up_level");
    a.movi_sym(Reg::R1, "bar0");
    a.call(BARRIER);
    // Contiguous split of [half, 2*half): k in half + [tid*half/T,
    // (tid+1)*half/T) — r8 = k, r10 = end.
    a.mul(Reg::R2, Reg::R6, Reg::R7);
    a.movi(Reg::R3, threads as i32);
    a.divu(Reg::R2, Reg::R2, Reg::R3);
    a.add(Reg::R8, Reg::R7, Reg::R2);
    a.addi(Reg::R4, Reg::R6, 1);
    a.mul(Reg::R2, Reg::R4, Reg::R7);
    a.divu(Reg::R2, Reg::R2, Reg::R3);
    a.add(Reg::R10, Reg::R7, Reg::R2);
    a.label("fm_up_node");
    a.bgeu(Reg::R8, Reg::R10, "fm_up_done");
    // up[k] = up[2k] + up[2k+1]
    a.shli(Reg::R3, Reg::R8, 1);
    a.shli(Reg::R3, Reg::R3, 2);
    a.movi_sym(Reg::R4, "up");
    a.add(Reg::R3, Reg::R3, Reg::R4);
    a.ld(Reg::R5, Reg::R3, 0);
    a.ld(Reg::R2, Reg::R3, 4);
    a.add(Reg::R5, Reg::R5, Reg::R2);
    a.shli(Reg::R3, Reg::R8, 2);
    a.add(Reg::R3, Reg::R3, Reg::R4);
    a.st(Reg::R3, 0, Reg::R5);
    a.addi(Reg::R8, Reg::R8, 1);
    a.jmp("fm_up_node");
    a.label("fm_up_done");
    a.shri(Reg::R7, Reg::R7, 1);
    a.bnez(Reg::R7, "fm_up_level");
    // Root hand-off: thread 0 sets down[1] = up[1].
    a.movi_sym(Reg::R1, "bar0");
    a.call(BARRIER);
    a.bnez(Reg::R6, "fm_down_start");
    a.movi_sym(Reg::R2, "up");
    a.ld(Reg::R3, Reg::R2, 4);
    a.movi_sym(Reg::R2, "down");
    a.st(Reg::R2, 4, Reg::R3);
    a.label("fm_down_start");
    // Down-sweep: start = 2, doubling to n.
    a.movi(Reg::R7, 2);
    a.label("fm_down_level");
    a.movi_sym(Reg::R1, "bar0");
    a.call(BARRIER);
    // Contiguous split of [start, 2*start).
    a.mul(Reg::R2, Reg::R6, Reg::R7);
    a.movi(Reg::R3, threads as i32);
    a.divu(Reg::R2, Reg::R2, Reg::R3);
    a.add(Reg::R8, Reg::R7, Reg::R2);
    a.addi(Reg::R4, Reg::R6, 1);
    a.mul(Reg::R2, Reg::R4, Reg::R7);
    a.divu(Reg::R2, Reg::R2, Reg::R3);
    a.add(Reg::R10, Reg::R7, Reg::R2);
    a.label("fm_down_node");
    a.bgeu(Reg::R8, Reg::R10, "fm_down_done");
    // v = down[k/2]
    a.shri(Reg::R3, Reg::R8, 1);
    a.shli(Reg::R3, Reg::R3, 2);
    a.movi_sym(Reg::R4, "down");
    a.add(Reg::R3, Reg::R3, Reg::R4);
    a.ld(Reg::R9, Reg::R3, 0);
    // if k odd: v += up[k-1]
    a.andi(Reg::R3, Reg::R8, 1);
    a.beqz(Reg::R3, "fm_down_store");
    a.addi(Reg::R3, Reg::R8, -1);
    a.shli(Reg::R3, Reg::R3, 2);
    a.movi_sym(Reg::R5, "up");
    a.add(Reg::R3, Reg::R3, Reg::R5);
    a.ld(Reg::R5, Reg::R3, 0);
    a.add(Reg::R9, Reg::R9, Reg::R5);
    a.label("fm_down_store");
    a.shli(Reg::R3, Reg::R8, 2);
    a.add(Reg::R3, Reg::R3, Reg::R4);
    a.st(Reg::R3, 0, Reg::R9);
    a.addi(Reg::R8, Reg::R8, 1);
    a.jmp("fm_down_node");
    a.label("fm_down_done");
    a.shli(Reg::R7, Reg::R7, 1);
    a.movi(Reg::R2, (2 * n) as i32);
    a.bltu(Reg::R7, Reg::R2, "fm_down_level");
    a.movi_sym(Reg::R1, "bar0");
    a.call(BARRIER);
    a.ret();

    runtime::emit_runtime(&mut a);
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn down_values_are_exclusive_prefix_sums() {
        let n = leaves(Scale::Test);
        let x = initial(n);
        let down = mirror(Scale::Test);
        // down[leaf i] = total + exclusive prefix of leaves (the root
        // seeds the sweep with the global total).
        let total: u32 = x.iter().fold(0u32, |s, &v| s.wrapping_add(v));
        let mut prefix = 0u32;
        for i in 0..n {
            assert_eq!(down[i], total.wrapping_add(prefix), "leaf {i}");
            prefix = prefix.wrapping_add(x[i]);
        }
    }

    #[test]
    fn native_run_matches_mirror() {
        for t in [1, 3] {
            let program = build(t, Scale::Test).unwrap();
            let mut m = qr_cpu::Machine::new(
                program,
                qr_cpu::CpuConfig { num_cores: 2, ..qr_cpu::CpuConfig::default() },
            )
            .unwrap();
            let out = qr_os::run_native(&mut m, qr_os::OsConfig::default()).unwrap();
            assert_eq!(out.exit_code, expected_checksum(t, Scale::Test), "threads={t}");
        }
    }
}
