//! `raytrace` — dynamically scheduled tile rendering.
//!
//! SPLASH-2 raytrace distributes pixels through a shared work queue;
//! the recorder sees mostly-independent computation punctuated by
//! atomic queue operations. This kernel renders a deterministic
//! integer "fractal" (a wrapping quadratic iteration per pixel) into a
//! shared framebuffer, with tiles handed out by `fetch-add` on a shared
//! counter — the lock-free dynamic scheduling idiom.

use crate::runtime::{self, CHECKSUM};
use crate::suite::Scale;
use qr_common::Result;
use qr_isa::{Asm, Program, Reg};

const TILE: usize = 8;
const ROUNDS: u32 = 8;

fn side(scale: Scale) -> usize {
    match scale {
        Scale::Test => 16,
        Scale::Small => 32,
        Scale::Reference => 96,
    }
}

fn pixel(x: u32, y: u32) -> u32 {
    let c = x.wrapping_mul(131).wrapping_add(y.wrapping_mul(65537)) ^ 0x9e37_79b9;
    let mut z = c;
    for _ in 0..ROUNDS {
        z = z.wrapping_mul(z).wrapping_add(c);
    }
    z
}

fn mirror(scale: Scale) -> Vec<u32> {
    let w = side(scale);
    let mut img = vec![0u32; w * w];
    for y in 0..w {
        for x in 0..w {
            img[y * w + x] = pixel(x as u32, y as u32);
        }
    }
    img
}

/// The checksum the program exits with.
pub fn expected_checksum(_threads: usize, scale: Scale) -> u32 {
    runtime::checksum(&mirror(scale))
}

/// Builds the workload.
///
/// # Errors
///
/// Propagates assembler errors.
pub fn build(threads: usize, scale: Scale) -> Result<Program> {
    let w = side(scale);
    assert_eq!(w % TILE, 0, "side must be a multiple of the tile size");
    let tiles_per_row = w / TILE;
    let num_tiles = tiles_per_row * tiles_per_row;
    let mut a = Asm::with_name(format!("raytrace-{}x{}", threads, w));
    a.align_data_line();
    a.data_word("image", &vec![0u32; w * w]);
    a.align_data_line();
    a.data_word("next_tile", &[0]);

    runtime::emit_main_skeleton(&mut a, threads, "rt_work", |a| {
        a.movi_sym(Reg::R1, "image");
        a.movi(Reg::R2, (w * w) as i32);
        a.call(CHECKSUM);
        a.mov(Reg::R1, Reg::R0);
    });

    // rt_work(R1 = tid): loop over tiles from the shared counter.
    a.label("rt_work");
    a.label("rt_next");
    a.movi_sym(Reg::R2, "next_tile");
    a.movi(Reg::R3, 1);
    a.fetch_add(Reg::R6, Reg::R2, Reg::R3); // r6 = my tile
    a.movi(Reg::R2, num_tiles as i32);
    a.bgeu(Reg::R6, Reg::R2, "rt_done");
    // tile origin: tx = (tile % tpr) * TILE, ty = (tile / tpr) * TILE
    a.movi(Reg::R2, tiles_per_row as i32);
    a.remu(Reg::R7, Reg::R6, Reg::R2);
    a.muli(Reg::R7, Reg::R7, TILE as i32); // tx
    a.divu(Reg::R8, Reg::R6, Reg::R2);
    a.muli(Reg::R8, Reg::R8, TILE as i32); // ty
    // for dy in 0..TILE, dx in 0..TILE
    a.movi(Reg::R9, 0); // dy
    a.label("rt_dy");
    a.movi(Reg::R10, 0); // dx
    a.label("rt_dx");
    // x = tx + dx, y = ty + dy
    a.add(Reg::R11, Reg::R7, Reg::R10);
    a.add(Reg::R12, Reg::R8, Reg::R9);
    // c = x*131 + y*65537 ^ 0x9e3779b9
    a.muli(Reg::R2, Reg::R11, 131);
    a.movi_u(Reg::R3, 65537);
    a.mul(Reg::R3, Reg::R12, Reg::R3);
    a.add(Reg::R2, Reg::R2, Reg::R3);
    a.movi_u(Reg::R3, 0x9e37_79b9);
    a.xor(Reg::R2, Reg::R2, Reg::R3); // c
    a.mov(Reg::R3, Reg::R2); // z = c
    a.movi(Reg::R4, ROUNDS as i32);
    a.label("rt_iter");
    a.mul(Reg::R3, Reg::R3, Reg::R3);
    a.add(Reg::R3, Reg::R3, Reg::R2);
    a.addi(Reg::R4, Reg::R4, -1);
    a.bnez(Reg::R4, "rt_iter");
    // image[y*w + x] = z
    a.movi(Reg::R4, w as i32);
    a.mul(Reg::R5, Reg::R12, Reg::R4);
    a.add(Reg::R5, Reg::R5, Reg::R11);
    a.shli(Reg::R5, Reg::R5, 2);
    a.movi_sym(Reg::R4, "image");
    a.add(Reg::R5, Reg::R4, Reg::R5);
    a.st(Reg::R5, 0, Reg::R3);
    a.addi(Reg::R10, Reg::R10, 1);
    a.movi(Reg::R2, TILE as i32);
    a.bltu(Reg::R10, Reg::R2, "rt_dx");
    a.addi(Reg::R9, Reg::R9, 1);
    a.movi(Reg::R2, TILE as i32);
    a.bltu(Reg::R9, Reg::R2, "rt_dy");
    a.jmp("rt_next");
    a.label("rt_done");
    // Make this thread's writes visible before main checksums.
    a.fence();
    a.ret();

    runtime::emit_runtime(&mut a);
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pixel_function_is_nontrivial() {
        assert_ne!(pixel(0, 0), pixel(1, 0));
        assert_ne!(pixel(0, 1), pixel(1, 0));
    }

    #[test]
    fn native_run_matches_mirror() {
        for t in [1, 4] {
            let program = build(t, Scale::Test).unwrap();
            let mut m = qr_cpu::Machine::new(
                program,
                qr_cpu::CpuConfig { num_cores: 2, ..qr_cpu::CpuConfig::default() },
            )
            .unwrap();
            let out = qr_os::run_native(&mut m, qr_os::OsConfig::default()).unwrap();
            assert_eq!(out.exit_code, expected_checksum(t, Scale::Test), "threads={t}");
        }
    }
}
