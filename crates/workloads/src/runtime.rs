//! The assembly runtime library: mutexes, barriers, checksums, and the
//! spawn/join skeleton shared by every workload.
//!
//! # Calling convention
//!
//! Runtime functions take arguments in `R1..=R3`, may clobber
//! `R0..=R5`, and preserve `R6..` (they save anything else they touch on
//! the stack). Workloads keep loop state in `R6..=R13`.
//!
//! # Primitives
//!
//! - `qr_mutex_lock` / `qr_mutex_unlock` (`R1` = &lock): a three-state
//!   futex mutex (0 free, 1 locked, 2 contended) — no syscalls on the
//!   uncontended path, `futex_wait`/`futex_wake` under contention.
//! - `qr_barrier` (`R1` = &{count, generation, total}): centralized
//!   generation-counting barrier; the last arriver resets the count,
//!   bumps the generation and wakes everyone.
//! - `qr_checksum` (`R1` = addr, `R2` = words) → `R0`: order-mixing
//!   wrapping fold of a word array.

use qr_isa::abi;
use qr_isa::{Asm, Reg};

/// Label of the mutex-lock function.
pub const MUTEX_LOCK: &str = "qr_mutex_lock";
/// Label of the mutex-unlock function.
pub const MUTEX_UNLOCK: &str = "qr_mutex_unlock";
/// Label of the barrier function.
pub const BARRIER: &str = "qr_barrier";
/// Label of the checksum function.
pub const CHECKSUM: &str = "qr_checksum";

/// Emits the runtime functions. Call once, after the program's own code
/// (the functions are reached by `call`, never by fallthrough).
pub fn emit_runtime(a: &mut Asm) {
    emit_mutex(a);
    emit_barrier(a);
    emit_checksum(a);
}

fn emit_mutex(a: &mut Asm) {
    // qr_mutex_lock(R1 = &lock)
    a.label(MUTEX_LOCK);
    a.movi(Reg::R2, 0);
    a.movi(Reg::R3, 1);
    a.cas(Reg::R2, Reg::R1, Reg::R3); // r2 = old
    a.beqz(Reg::R2, "qr_mutex_lock_done");
    a.label("qr_mutex_lock_slow");
    // if old != 2 { old = xchg(lock, 2); if old == 0 -> acquired }
    a.movi(Reg::R3, 2);
    a.alu(qr_isa::instr::AluOp::Seq, Reg::R4, Reg::R2, Reg::R3);
    a.bnez(Reg::R4, "qr_mutex_lock_wait");
    a.mov(Reg::R2, Reg::R3);
    a.xchg(Reg::R2, Reg::R1);
    a.beqz(Reg::R2, "qr_mutex_lock_done");
    a.label("qr_mutex_lock_wait");
    // futex_wait(lock, 2)
    a.push(Reg::R1);
    a.movi_u(Reg::R0, abi::SYS_FUTEX_WAIT);
    a.movi(Reg::R2, 2);
    a.syscall();
    a.pop(Reg::R1);
    // old = xchg(lock, 2)
    a.movi(Reg::R2, 2);
    a.xchg(Reg::R2, Reg::R1);
    a.bnez(Reg::R2, "qr_mutex_lock_wait");
    a.label("qr_mutex_lock_done");
    a.ret();

    // qr_mutex_unlock(R1 = &lock)
    a.label(MUTEX_UNLOCK);
    a.movi(Reg::R2, 0);
    a.xchg(Reg::R2, Reg::R1); // r2 = old, lock = 0
    a.movi(Reg::R3, 2);
    a.alu(qr_isa::instr::AluOp::Seq, Reg::R4, Reg::R2, Reg::R3);
    a.beqz(Reg::R4, "qr_mutex_unlock_done");
    a.movi_u(Reg::R0, abi::SYS_FUTEX_WAKE);
    a.movi(Reg::R2, 1);
    a.syscall();
    a.label("qr_mutex_unlock_done");
    a.ret();
}

fn emit_barrier(a: &mut Asm) {
    // qr_barrier(R1 = &{count@0, gen@4, total@8})
    //
    // The generation word is read and written with atomics (fetch_add 0
    // as an atomic load, xchg as an atomic store), so the barrier is
    // data-race-free under the replay-time race detector's C11-like
    // rules and publishes a happens-before edge from the last arriver to
    // every waiter.
    a.label(BARRIER);
    // g = gen, read atomically (fetch_add 0): the generation word is an
    // atomic location — waiters poll it with RMWs — so every access to
    // it must be atomic to stay data-race-free.
    a.addi(Reg::R4, Reg::R1, 4);
    a.movi(Reg::R2, 0);
    a.fetch_add(Reg::R2, Reg::R4, Reg::R2);
    a.movi(Reg::R3, 1);
    a.fetch_add(Reg::R4, Reg::R1, Reg::R3); // old count
    a.ld(Reg::R5, Reg::R1, 8); // total
    a.addi(Reg::R4, Reg::R4, 1);
    a.bne(Reg::R4, Reg::R5, "qr_barrier_wait");
    // Last arriver: reset count, publish the new generation atomically,
    // wake.
    a.movi(Reg::R3, 0);
    a.st(Reg::R1, 0, Reg::R3);
    a.addi(Reg::R2, Reg::R2, 1);
    a.addi(Reg::R5, Reg::R1, 4);
    a.xchg(Reg::R2, Reg::R5); // gen = g + 1 (atomic release)
    a.push(Reg::R1);
    a.addi(Reg::R1, Reg::R1, 4);
    a.movi_u(Reg::R0, abi::SYS_FUTEX_WAKE);
    a.movi(Reg::R2, 4096);
    a.syscall();
    a.pop(Reg::R1);
    a.ret();
    a.label("qr_barrier_wait");
    // Atomic load of gen: fetch_add(&gen, 0).
    a.addi(Reg::R4, Reg::R1, 4);
    a.movi(Reg::R5, 0);
    a.fetch_add(Reg::R3, Reg::R4, Reg::R5);
    a.bne(Reg::R3, Reg::R2, "qr_barrier_exit");
    a.push(Reg::R1);
    a.push(Reg::R2);
    a.addi(Reg::R1, Reg::R1, 4);
    a.movi_u(Reg::R0, abi::SYS_FUTEX_WAIT);
    a.syscall();
    a.pop(Reg::R2);
    a.pop(Reg::R1);
    a.jmp("qr_barrier_wait");
    a.label("qr_barrier_exit");
    a.ret();
}

fn emit_checksum(a: &mut Asm) {
    // qr_checksum(R1 = addr, R2 = words) -> R0
    a.label(CHECKSUM);
    a.movi(Reg::R0, 0);
    a.label("qr_checksum_loop");
    a.beqz(Reg::R2, "qr_checksum_done");
    a.ld(Reg::R3, Reg::R1, 0);
    // sum = rotl(sum, 1) ^ word — order-sensitive, catches permutations.
    a.shli(Reg::R4, Reg::R0, 1);
    a.shri(Reg::R5, Reg::R0, 31);
    a.alu(qr_isa::instr::AluOp::Or, Reg::R4, Reg::R4, Reg::R5);
    a.xor(Reg::R0, Reg::R4, Reg::R3);
    a.addi(Reg::R1, Reg::R1, 4);
    a.addi(Reg::R2, Reg::R2, -1);
    a.jmp("qr_checksum_loop");
    a.label("qr_checksum_done");
    a.ret();
}

/// The Rust mirror of `qr_checksum`.
pub fn checksum(words: &[u32]) -> u32 {
    words.iter().fold(0u32, |sum, &w| sum.rotate_left(1) ^ w)
}

/// Emits the standard main skeleton around a per-thread work function:
///
/// - main spawns `threads - 1` workers at label `worker_entry` with the
///   thread index in `R1`, calls `work_fn` itself with index 0, joins
///   everyone, then runs `epilogue` (which must leave the checksum in
///   `R1`) and exits with it.
/// - the worker entry calls `work_fn` with its index and exits 0.
///
/// The caller provides `work_fn` (a label taking the thread index in
/// `R1`) and emits it (plus the runtime, via [`emit_runtime`]) after this
/// skeleton.
pub fn emit_main_skeleton(
    a: &mut Asm,
    threads: usize,
    work_fn: &str,
    epilogue: impl FnOnce(&mut Asm),
) {
    assert!(threads >= 1, "need at least one thread");
    // Spawn workers 1..threads; remember tids on the stack.
    for i in 1..threads {
        a.movi_u(Reg::R0, abi::SYS_SPAWN);
        a.movi_sym(Reg::R1, "qr_worker_entry");
        a.movi(Reg::R2, i as i32);
        a.syscall();
        a.push(Reg::R0);
    }
    // Main participates as thread 0.
    a.movi(Reg::R1, 0);
    a.call(work_fn);
    // Join workers (reverse order is fine).
    for _ in 1..threads {
        a.pop(Reg::R1);
        a.movi_u(Reg::R0, abi::SYS_JOIN);
        a.syscall();
    }
    epilogue(a);
    a.movi_u(Reg::R0, abi::SYS_EXIT);
    a.syscall();
    // Worker entry: index arrives in R1.
    a.label("qr_worker_entry");
    a.call(work_fn);
    a.movi_u(Reg::R0, abi::SYS_EXIT);
    a.movi(Reg::R1, 0);
    a.syscall();
}

/// Emits a barrier control block (count=0, generation=0, total) and
/// returns its address.
pub fn emit_barrier_block(a: &mut Asm, name: &str, total: u32) -> u32 {
    a.align_data_line();
    a.data_word(name, &[0, 0, total])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_mirror_is_order_sensitive() {
        assert_ne!(checksum(&[1, 2, 3]), checksum(&[3, 2, 1]));
        assert_eq!(checksum(&[]), 0);
        assert_eq!(checksum(&[0, 0]), 0);
        assert_ne!(checksum(&[5]), checksum(&[6]));
    }

    #[test]
    fn runtime_emits_without_label_collisions() {
        let mut a = Asm::new();
        a.halt();
        emit_runtime(&mut a);
        let p = a.finish().unwrap();
        assert!(p.symbol(MUTEX_LOCK).is_some());
        assert!(p.symbol(BARRIER).is_some());
        assert!(p.symbol(CHECKSUM).is_some());
    }
}
