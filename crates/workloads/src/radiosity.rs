//! `radiosity` — a mutex-protected task queue with dynamic spawning.
//!
//! SPLASH-2 radiosity is the suite's most irregular member: tasks are
//! created dynamically and distributed through locked queues. This
//! kernel reproduces that: a shared FIFO seeded with initial tasks,
//! protected by one futex mutex; processing a task accumulates "energy"
//! into a locked slot and may enqueue one child task (the decision and
//! the child's value depend only on the task value, so the *set* of
//! tasks — and, with commutative accumulation, the result — is
//! independent of processing order).

use crate::runtime::{self, CHECKSUM, MUTEX_LOCK, MUTEX_UNLOCK};
use crate::suite::{init_value, Scale};
use qr_common::Result;
use qr_isa::{abi, Asm, Program, Reg};

const SEED: u64 = 0x4ad1_0008;
const SLOTS: usize = 8;
const LOCK_STRIDE_WORDS: usize = 16;
const MAX_GEN: u32 = 3;

/// Hash rounds each task spends "computing its interaction" — gives
/// tasks a realistic compute-to-queueing ratio.
const TASK_ROUNDS: u32 = 48;

fn seeds(scale: Scale) -> usize {
    match scale {
        Scale::Test => 12,
        Scale::Small => 64,
        Scale::Reference => 512,
    }
}

fn initial_tasks(q0: usize) -> Vec<u32> {
    (0..q0).map(|i| init_value(SEED, i) & 0x0fff_ffff).collect()
}

fn child_of(v: u32) -> u32 {
    let gen = v >> 28;
    let h = (v ^ (v >> 13)).wrapping_mul(0x9e37_79b1);
    ((gen + 1) << 28) | (h & 0x0fff_ffff)
}

fn spawns_child(v: u32) -> bool {
    (v >> 28) < MAX_GEN && v & 1 == 0
}

fn energy_of(v: u32) -> u32 {
    let mut z = v;
    for _ in 0..TASK_ROUNDS {
        z = (z ^ (z >> 11)).wrapping_mul(0x85eb_ca6b);
    }
    z ^ 0x27d4_eb2f
}

/// Total tasks the closure of the seed set generates (bounds the queue).
fn mirror(scale: Scale) -> (Vec<u32>, usize) {
    let mut queue: Vec<u32> = initial_tasks(seeds(scale));
    let mut energy = vec![0u32; SLOTS];
    let mut head = 0;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        let slot = (v as usize) % SLOTS;
        energy[slot] = energy[slot].wrapping_add(energy_of(v));
        if spawns_child(v) {
            queue.push(child_of(v));
        }
    }
    (energy, queue.len())
}

/// The checksum the program exits with.
pub fn expected_checksum(_threads: usize, scale: Scale) -> u32 {
    runtime::checksum(&mirror(scale).0)
}

/// Builds the workload.
///
/// # Errors
///
/// Propagates assembler errors.
pub fn build(threads: usize, scale: Scale) -> Result<Program> {
    let q0 = seeds(scale);
    let capacity = q0 * 4; // every task spawns at most one child, <= 4 generations
    let (_, total_tasks) = mirror(scale);
    assert!(total_tasks <= capacity, "queue capacity bound violated");
    let mut a = Asm::with_name(format!("radiosity-{}x{}", threads, q0));
    let mut queue_init = initial_tasks(q0);
    queue_init.resize(capacity, 0);
    a.align_data_line();
    a.data_word("queue", &queue_init);
    a.align_data_line();
    // head, tail, outstanding
    a.data_word("qmeta", &[0, q0 as u32, q0 as u32]);
    a.align_data_line();
    a.data_word("qlock", &[0]);
    a.align_data_line();
    a.data_word("energy", &[0u32; SLOTS]);
    a.align_data_line();
    a.data_word("slot_locks", &vec![0u32; SLOTS * LOCK_STRIDE_WORDS]);

    runtime::emit_main_skeleton(&mut a, threads, "rd_work", |a| {
        a.movi_sym(Reg::R1, "energy");
        a.movi(Reg::R2, SLOTS as i32);
        a.call(CHECKSUM);
        a.mov(Reg::R1, Reg::R0);
    });

    // rd_work(R1 = tid)
    a.label("rd_work");
    a.label("rd_take");
    a.movi_sym(Reg::R1, "qlock");
    a.call(MUTEX_LOCK);
    a.movi_sym(Reg::R2, "qmeta");
    a.ld(Reg::R3, Reg::R2, 0); // head
    a.ld(Reg::R4, Reg::R2, 4); // tail
    a.bgeu(Reg::R3, Reg::R4, "rd_empty");
    // t = queue[head]; head += 1
    a.movi_sym(Reg::R5, "queue");
    a.shli(Reg::R4, Reg::R3, 2);
    a.add(Reg::R4, Reg::R5, Reg::R4);
    a.ld(Reg::R6, Reg::R4, 0); // task value
    a.addi(Reg::R3, Reg::R3, 1);
    a.st(Reg::R2, 0, Reg::R3);
    a.movi_sym(Reg::R1, "qlock");
    a.call(MUTEX_UNLOCK);
    a.jmp("rd_process");
    a.label("rd_empty");
    a.ld(Reg::R5, Reg::R2, 8); // outstanding
    a.movi_sym(Reg::R1, "qlock");
    a.call(MUTEX_UNLOCK);
    a.bnez(Reg::R5, "rd_retry");
    a.ret(); // no queued work and nothing outstanding: done
    a.label("rd_retry");
    a.movi_u(Reg::R0, abi::SYS_YIELD);
    a.syscall();
    a.jmp("rd_take");
    // process task in r6
    a.label("rd_process");
    // Compute the task's energy *outside* the lock: TASK_ROUNDS hash
    // iterations (the task's "interaction computation").
    a.mov(Reg::R10, Reg::R6); // z
    a.movi(Reg::R11, TASK_ROUNDS as i32);
    a.label("rd_compute");
    a.shri(Reg::R2, Reg::R10, 11);
    a.xor(Reg::R10, Reg::R10, Reg::R2);
    a.movi_u(Reg::R2, 0x85eb_ca6b);
    a.mul(Reg::R10, Reg::R10, Reg::R2);
    a.addi(Reg::R11, Reg::R11, -1);
    a.bnez(Reg::R11, "rd_compute");
    a.movi_u(Reg::R2, 0x27d4_eb2f);
    a.xor(Reg::R10, Reg::R10, Reg::R2); // e
    // energy[v % SLOTS] += e, under the slot lock
    a.movi(Reg::R2, SLOTS as i32);
    a.remu(Reg::R7, Reg::R6, Reg::R2); // slot
    a.muli(Reg::R1, Reg::R7, (LOCK_STRIDE_WORDS * 4) as i32);
    a.movi_sym(Reg::R2, "slot_locks");
    a.add(Reg::R1, Reg::R1, Reg::R2);
    a.mov(Reg::R8, Reg::R1); // lock addr for unlock
    a.call(MUTEX_LOCK);
    a.mov(Reg::R3, Reg::R10);
    a.movi_sym(Reg::R2, "energy");
    a.shli(Reg::R4, Reg::R7, 2);
    a.add(Reg::R2, Reg::R2, Reg::R4);
    a.ld(Reg::R5, Reg::R2, 0);
    a.add(Reg::R5, Reg::R5, Reg::R3);
    a.st(Reg::R2, 0, Reg::R5);
    a.mov(Reg::R1, Reg::R8);
    a.call(MUTEX_UNLOCK);
    // spawn child? gen < MAX_GEN && even
    a.shri(Reg::R2, Reg::R6, 28);
    a.movi(Reg::R3, MAX_GEN as i32);
    a.bgeu(Reg::R2, Reg::R3, "rd_finish");
    a.andi(Reg::R3, Reg::R6, 1);
    a.bnez(Reg::R3, "rd_finish");
    // child = ((gen+1) << 28) | ((v ^ (v >> 13)) * 0x9E3779B1 & 0x0fffffff)
    a.addi(Reg::R2, Reg::R2, 1);
    a.shli(Reg::R9, Reg::R2, 28);
    a.shri(Reg::R3, Reg::R6, 13);
    a.xor(Reg::R3, Reg::R6, Reg::R3);
    a.movi_u(Reg::R2, 0x9e37_79b1);
    a.mul(Reg::R3, Reg::R3, Reg::R2);
    a.movi_u(Reg::R2, 0x0fff_ffff);
    a.and(Reg::R3, Reg::R3, Reg::R2);
    a.or(Reg::R9, Reg::R9, Reg::R3);
    // enqueue under the queue lock; outstanding += 1
    a.movi_sym(Reg::R1, "qlock");
    a.call(MUTEX_LOCK);
    a.movi_sym(Reg::R2, "qmeta");
    a.ld(Reg::R3, Reg::R2, 4); // tail
    a.movi_sym(Reg::R4, "queue");
    a.shli(Reg::R5, Reg::R3, 2);
    a.add(Reg::R4, Reg::R4, Reg::R5);
    a.st(Reg::R4, 0, Reg::R9);
    a.addi(Reg::R3, Reg::R3, 1);
    a.st(Reg::R2, 4, Reg::R3);
    a.ld(Reg::R3, Reg::R2, 8);
    a.addi(Reg::R3, Reg::R3, 1);
    a.st(Reg::R2, 8, Reg::R3);
    a.movi_sym(Reg::R1, "qlock");
    a.call(MUTEX_UNLOCK);
    // finish: outstanding -= 1
    a.label("rd_finish");
    a.movi_sym(Reg::R1, "qlock");
    a.call(MUTEX_LOCK);
    a.movi_sym(Reg::R2, "qmeta");
    a.ld(Reg::R3, Reg::R2, 8);
    a.addi(Reg::R3, Reg::R3, -1);
    a.st(Reg::R2, 8, Reg::R3);
    a.movi_sym(Reg::R1, "qlock");
    a.call(MUTEX_UNLOCK);
    a.jmp("rd_take");

    runtime::emit_runtime(&mut a);
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_closure_is_bounded_and_nontrivial() {
        let (energy, total) = mirror(Scale::Test);
        assert!(total > seeds(Scale::Test), "some tasks must spawn children");
        assert!(total <= seeds(Scale::Test) * 4);
        assert!(energy.iter().any(|&e| e != 0));
    }

    #[test]
    fn children_advance_generations() {
        let v = 0x0000_0b0c; // even, gen 0
        assert!(spawns_child(v));
        let c = child_of(v);
        assert_eq!(c >> 28, 1);
        assert!(!spawns_child(0x3000_0000), "gen 3 never spawns");
        assert!(!spawns_child(1), "odd tasks never spawn");
    }

    #[test]
    fn native_run_matches_mirror() {
        for t in [1, 4] {
            let program = build(t, Scale::Test).unwrap();
            let mut m = qr_cpu::Machine::new(
                program,
                qr_cpu::CpuConfig { num_cores: 2, ..qr_cpu::CpuConfig::default() },
            )
            .unwrap();
            let out = qr_os::run_native(&mut m, qr_os::OsConfig::default()).unwrap();
            assert_eq!(out.exit_code, expected_checksum(t, Scale::Test), "threads={t}");
        }
    }
}
