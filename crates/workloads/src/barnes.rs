//! `barnes` — all-pairs forces plus locked cell accumulation.
//!
//! SPLASH-2 barnes combines a read-mostly force phase (every thread
//! reads all particle positions) with lock-protected updates to shared
//! tree cells. This kernel keeps both behaviours: phase 1 computes
//! per-particle "forces" from all positions (read sharing, private
//! writes); phase 2 folds the forces into shared cell accumulators under
//! per-cell futex mutexes (commutative wrapping adds, so the lock
//! acquisition order cannot change the result).

use crate::runtime::{self, BARRIER, CHECKSUM, MUTEX_LOCK, MUTEX_UNLOCK};
use crate::suite::{init_value, Scale};
use qr_common::Result;
use qr_isa::{Asm, Program, Reg};

const SEED: u64 = 0xba54_0005;
const CELLS: usize = 8;
/// Locks are spaced one cache line apart to avoid lock false sharing.
const LOCK_STRIDE_WORDS: usize = 16;

fn size(scale: Scale) -> usize {
    match scale {
        Scale::Test => 40,
        Scale::Small => 96,
        Scale::Reference => 288,
    }
}

fn initial(n: usize) -> Vec<u32> {
    (0..n).map(|i| init_value(SEED, i)).collect()
}

fn mirror(scale: Scale) -> (Vec<u32>, Vec<u32>) {
    let n = size(scale);
    let pos = initial(n);
    let mut force = vec![0u32; n];
    for i in 0..n {
        let mut f = 0u32;
        for (j, &pj) in pos.iter().enumerate() {
            if j != i {
                f = f.wrapping_add(pj ^ pos[i].wrapping_add(j as u32));
            }
        }
        force[i] = f;
    }
    let mut cells = vec![0u32; CELLS];
    for (i, &f) in force.iter().enumerate() {
        cells[i % CELLS] = cells[i % CELLS].wrapping_add(f);
    }
    (force, cells)
}

/// The checksum the program exits with.
pub fn expected_checksum(_threads: usize, scale: Scale) -> u32 {
    let (force, cells) = mirror(scale);
    runtime::checksum(&force) ^ runtime::checksum(&cells)
}

/// Builds the workload.
///
/// # Errors
///
/// Propagates assembler errors.
pub fn build(threads: usize, scale: Scale) -> Result<Program> {
    let n = size(scale);
    let mut a = Asm::with_name(format!("barnes-{}x{}", threads, n));
    a.align_data_line();
    a.data_word("pos", &initial(n));
    a.align_data_line();
    a.data_word("force", &vec![0u32; n]);
    a.align_data_line();
    a.data_word("cells", &[0u32; CELLS]);
    a.align_data_line();
    a.data_word("cell_locks", &vec![0u32; CELLS * LOCK_STRIDE_WORDS]);
    runtime::emit_barrier_block(&mut a, "bar0", threads as u32);

    runtime::emit_main_skeleton(&mut a, threads, "bn_work", |a| {
        a.movi_sym(Reg::R1, "force");
        a.movi(Reg::R2, n as i32);
        a.call(CHECKSUM);
        a.mov(Reg::R6, Reg::R0);
        a.movi_sym(Reg::R1, "cells");
        a.movi(Reg::R2, CELLS as i32);
        a.call(CHECKSUM);
        a.xor(Reg::R1, Reg::R6, Reg::R0);
    });

    let seg_bounds = |a: &mut Asm| {
        a.movi(Reg::R2, n as i32);
        a.mul(Reg::R7, Reg::R6, Reg::R2);
        a.movi(Reg::R3, threads as i32);
        a.divu(Reg::R7, Reg::R7, Reg::R3);
        a.addi(Reg::R4, Reg::R6, 1);
        a.mul(Reg::R8, Reg::R4, Reg::R2);
        a.divu(Reg::R8, Reg::R8, Reg::R3);
    };

    // bn_work(R1 = tid)
    a.label("bn_work");
    a.mov(Reg::R6, Reg::R1);
    seg_bounds(&mut a);
    // Phase 1: force[i] = sum over j != i of pos[j] ^ (pos[i] + j)
    a.label("bn_i");
    a.bgeu(Reg::R7, Reg::R8, "bn_phase2");
    a.movi_sym(Reg::R10, "pos");
    a.shli(Reg::R2, Reg::R7, 2);
    a.add(Reg::R2, Reg::R10, Reg::R2);
    a.ld(Reg::R13, Reg::R2, 0); // pos[i]
    a.movi(Reg::R9, 0); // j
    a.movi(Reg::R12, 0); // f
    a.label("bn_j");
    a.movi(Reg::R2, n as i32);
    a.bgeu(Reg::R9, Reg::R2, "bn_j_done");
    a.beq(Reg::R9, Reg::R7, "bn_j_next");
    a.shli(Reg::R2, Reg::R9, 2);
    a.add(Reg::R2, Reg::R10, Reg::R2);
    a.ld(Reg::R3, Reg::R2, 0); // pos[j]
    a.add(Reg::R4, Reg::R13, Reg::R9); // pos[i] + j
    a.xor(Reg::R3, Reg::R3, Reg::R4);
    a.add(Reg::R12, Reg::R12, Reg::R3);
    a.label("bn_j_next");
    a.addi(Reg::R9, Reg::R9, 1);
    a.jmp("bn_j");
    a.label("bn_j_done");
    a.movi_sym(Reg::R2, "force");
    a.shli(Reg::R3, Reg::R7, 2);
    a.add(Reg::R2, Reg::R2, Reg::R3);
    a.st(Reg::R2, 0, Reg::R12);
    a.addi(Reg::R7, Reg::R7, 1);
    a.jmp("bn_i");
    // Phase 2: locked accumulation into cells.
    a.label("bn_phase2");
    a.movi_sym(Reg::R1, "bar0");
    a.call(BARRIER);
    seg_bounds(&mut a);
    a.label("bn_acc");
    a.bgeu(Reg::R7, Reg::R8, "bn_done");
    // c = i % CELLS
    a.movi(Reg::R2, CELLS as i32);
    a.remu(Reg::R9, Reg::R7, Reg::R2);
    // lock(cell_locks + c * stride)
    a.muli(Reg::R1, Reg::R9, (LOCK_STRIDE_WORDS * 4) as i32);
    a.movi_sym(Reg::R2, "cell_locks");
    a.add(Reg::R1, Reg::R1, Reg::R2);
    a.mov(Reg::R10, Reg::R1); // keep lock addr for unlock
    a.call(MUTEX_LOCK);
    // cells[c] += force[i]
    a.movi_sym(Reg::R2, "force");
    a.shli(Reg::R3, Reg::R7, 2);
    a.add(Reg::R2, Reg::R2, Reg::R3);
    a.ld(Reg::R4, Reg::R2, 0);
    a.movi_sym(Reg::R2, "cells");
    a.shli(Reg::R3, Reg::R9, 2);
    a.add(Reg::R2, Reg::R2, Reg::R3);
    a.ld(Reg::R5, Reg::R2, 0);
    a.add(Reg::R5, Reg::R5, Reg::R4);
    a.st(Reg::R2, 0, Reg::R5);
    a.mov(Reg::R1, Reg::R10);
    a.call(MUTEX_UNLOCK);
    a.addi(Reg::R7, Reg::R7, 1);
    a.jmp("bn_acc");
    a.label("bn_done");
    a.movi_sym(Reg::R1, "bar0");
    a.call(BARRIER);
    a.ret();

    runtime::emit_runtime(&mut a);
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirror_produces_nonzero_forces() {
        let (force, cells) = mirror(Scale::Test);
        assert!(force.iter().any(|&f| f != 0));
        assert!(cells.iter().any(|&c| c != 0));
    }

    #[test]
    fn native_run_matches_mirror() {
        for t in [1, 4] {
            let program = build(t, Scale::Test).unwrap();
            let mut m = qr_cpu::Machine::new(
                program,
                qr_cpu::CpuConfig { num_cores: 2, ..qr_cpu::CpuConfig::default() },
            )
            .unwrap();
            let out = qr_os::run_native(&mut m, qr_os::OsConfig::default()).unwrap();
            assert_eq!(out.exit_code, expected_checksum(t, Scale::Test), "threads={t}");
        }
    }
}
