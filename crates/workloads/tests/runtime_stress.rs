//! Stress tests for the assembly runtime primitives: the futex mutex
//! must provide mutual exclusion and the barrier must actually separate
//! phases, under contention, on various core counts.

use qr_cpu::{CpuConfig, Machine};
use qr_isa::{abi, Asm, Reg};
use qr_os::{run_native, OsConfig};
use qr_workloads::runtime::{self, BARRIER, MUTEX_LOCK, MUTEX_UNLOCK};

fn run(asm: Asm, cores: usize) -> qr_os::RunOutcome {
    let mut machine =
        Machine::new(asm.finish().unwrap(), CpuConfig { num_cores: cores, ..CpuConfig::default() })
            .unwrap();
    run_native(&mut machine, OsConfig::default()).unwrap()
}


/// T threads each increment a mutex-protected counter N times; the final
/// value must be exactly T*N (no lost updates), unlike the unprotected
/// version which loses updates under contention.
fn mutex_counter_program(threads: usize, iters: i32) -> Asm {
    let mut a = Asm::new();
    a.data_word("counter", &[0]);
    a.align_data_line();
    a.data_word("lock", &[0]);
    runtime::emit_main_skeleton(&mut a, threads, "work", |a| {
        a.movi_sym(Reg::R2, "counter");
        a.ld(Reg::R1, Reg::R2, 0);
    });
    a.label("work");
    a.movi(Reg::R7, iters);
    a.label("iter");
    a.movi_sym(Reg::R1, "lock");
    a.call(MUTEX_LOCK);
    a.movi_sym(Reg::R2, "counter");
    a.ld(Reg::R3, Reg::R2, 0);
    a.addi(Reg::R3, Reg::R3, 1);
    a.st(Reg::R2, 0, Reg::R3);
    a.movi_sym(Reg::R1, "lock");
    a.call(MUTEX_UNLOCK);
    a.addi(Reg::R7, Reg::R7, -1);
    a.bnez(Reg::R7, "iter");
    a.ret();
    runtime::emit_runtime(&mut a);
    a
}

#[test]
fn mutex_provides_mutual_exclusion() {
    for (threads, cores) in [(2usize, 2usize), (4, 2), (4, 4), (3, 1)] {
        let out = run(mutex_counter_program(threads, 80), cores);
        assert_eq!(
            out.exit_code,
            (threads * 80) as u32,
            "{threads} threads on {cores} cores lost updates"
        );
    }
}

/// Each thread walks R rounds; in round r it writes its slot with
/// `r * threads + index`, barriers, then checks EVERY slot carries the
/// same round's stamp. Any barrier leak shows up as a stale read.
fn barrier_phase_program(threads: usize, rounds: i32) -> Asm {
    let mut a = Asm::new();
    a.align_data_line();
    a.data_word("slots", &vec![0u32; threads.max(1)]);
    runtime::emit_barrier_block(&mut a, "bar0", threads as u32);
    a.data_word("errors", &[0]);
    runtime::emit_main_skeleton(&mut a, threads, "work", |a| {
        a.movi_sym(Reg::R2, "errors");
        a.ld(Reg::R1, Reg::R2, 0);
    });
    // work(R1 = tid)
    a.label("work");
    a.mov(Reg::R6, Reg::R1);
    a.movi(Reg::R7, 0); // round
    a.label("round");
    // slots[tid] = round * threads + tid
    a.muli(Reg::R2, Reg::R7, threads as i32);
    a.add(Reg::R2, Reg::R2, Reg::R6);
    a.movi_sym(Reg::R3, "slots");
    a.shli(Reg::R4, Reg::R6, 2);
    a.add(Reg::R3, Reg::R3, Reg::R4);
    a.st(Reg::R3, 0, Reg::R2);
    a.movi_sym(Reg::R1, "bar0");
    a.call(BARRIER);
    // Verify every slot: slots[i] == round * threads + i.
    a.movi(Reg::R8, 0); // i
    a.label("check");
    a.movi(Reg::R2, threads as i32);
    a.bgeu(Reg::R8, Reg::R2, "check_done");
    a.movi_sym(Reg::R3, "slots");
    a.shli(Reg::R4, Reg::R8, 2);
    a.add(Reg::R3, Reg::R3, Reg::R4);
    a.ld(Reg::R5, Reg::R3, 0);
    a.muli(Reg::R2, Reg::R7, threads as i32);
    a.add(Reg::R2, Reg::R2, Reg::R8);
    a.beq(Reg::R5, Reg::R2, "slot_ok");
    // errors += 1 (racy but only ever written on failure)
    a.movi_sym(Reg::R2, "errors");
    a.ld(Reg::R3, Reg::R2, 0);
    a.addi(Reg::R3, Reg::R3, 1);
    a.st(Reg::R2, 0, Reg::R3);
    a.fence();
    a.label("slot_ok");
    a.addi(Reg::R8, Reg::R8, 1);
    a.jmp("check");
    a.label("check_done");
    // Second barrier before anyone overwrites slots for the next round.
    a.movi_sym(Reg::R1, "bar0");
    a.call(BARRIER);
    a.addi(Reg::R7, Reg::R7, 1);
    a.movi(Reg::R2, rounds);
    a.bltu(Reg::R7, Reg::R2, "round");
    a.ret();
    runtime::emit_runtime(&mut a);
    a
}

#[test]
fn barrier_separates_phases_exactly() {
    for (threads, cores) in [(2usize, 2usize), (4, 4), (4, 2), (3, 1)] {
        let out = run(barrier_phase_program(threads, 12), cores);
        assert_eq!(out.exit_code, 0, "{threads} threads on {cores} cores saw stale phases");
    }
}

#[test]
fn barrier_with_one_thread_is_a_noop() {
    let out = run(barrier_phase_program(1, 5), 1);
    assert_eq!(out.exit_code, 0);
}

/// The mutex's uncontended fast path must not enter the kernel: a
/// single-threaded lock/unlock loop performs no futex syscalls beyond
/// the skeleton's spawn/join/exit traffic.
#[test]
fn uncontended_mutex_stays_in_user_mode() {
    let program = mutex_counter_program(1, 50).finish().unwrap();
    let recording =
        qr_capo::record(program, qr_capo::RecordingConfig::with_cores(1)).unwrap();
    let futex_calls = recording
        .inputs
        .events()
        .iter()
        .filter(|e| match e {
            qr_capo::InputEvent::Syscall { record, .. } => {
                record.number == abi::SYS_FUTEX_WAIT || record.number == abi::SYS_FUTEX_WAKE
            }
            _ => false,
        })
        .count();
    assert_eq!(futex_calls, 0, "uncontended locking must not syscall");
}

/// Recording a contended-mutex program and replaying it must agree — the
/// runtime primitives compose with the recorder.
#[test]
fn contended_mutex_records_and_replays() {
    let program = mutex_counter_program(4, 40).finish().unwrap();
    let recording =
        qr_capo::record(program.clone(), qr_capo::RecordingConfig::with_cores(2)).unwrap();
    assert_eq!(recording.exit_code, 160);
    qr_replay::replay_and_verify(&program, &recording).unwrap();
}

