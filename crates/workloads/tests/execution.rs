//! End-to-end workload validation: every suite member, run natively,
//! must exit with its mirror checksum — at several thread counts — and a
//! recorded run must replay exactly.

use qr_capo::{record, RecordingConfig};
use qr_cpu::{CpuConfig, Machine};
use qr_os::{run_native, OsConfig};
use qr_replay::replay_and_verify;
use qr_workloads::{suite, Scale};

fn machine(program: qr_isa::Program, cores: usize) -> Machine {
    Machine::new(program, CpuConfig { num_cores: cores, ..CpuConfig::default() }).unwrap()
}

#[test]
fn every_workload_validates_natively_across_thread_counts() {
    for spec in suite() {
        for threads in [1usize, 2, 4] {
            let program = (spec.build)(threads, Scale::Test).unwrap();
            let cores = threads.min(4);
            let mut m = machine(program, cores);
            let out = run_native(&mut m, OsConfig::default())
                .unwrap_or_else(|e| panic!("{} t={threads}: {e}", spec.name));
            let expected = (spec.expected)(threads, Scale::Test);
            assert_eq!(
                out.exit_code, expected,
                "{} with {threads} threads: got {:#x}, expected {:#x}",
                spec.name, out.exit_code, expected
            );
        }
    }
}

#[test]
fn thread_count_does_not_change_results() {
    for spec in suite() {
        let e1 = (spec.expected)(1, Scale::Test);
        let e4 = (spec.expected)(4, Scale::Test);
        assert_eq!(e1, e4, "{} checksum must be thread-count independent", spec.name);
    }
}

#[test]
fn every_workload_records_and_replays() {
    for spec in suite() {
        let program = (spec.build)(4, Scale::Test).unwrap();
        let recording = record(program.clone(), RecordingConfig::with_cores(4))
            .unwrap_or_else(|e| panic!("{}: record: {e}", spec.name));
        assert_eq!(
            recording.exit_code,
            (spec.expected)(4, Scale::Test),
            "{}: recorded run computed the wrong checksum",
            spec.name
        );
        replay_and_verify(&program, &recording)
            .unwrap_or_else(|e| panic!("{}: replay: {e}", spec.name));
    }
}

#[test]
fn workloads_record_and_replay_on_fewer_cores_than_threads() {
    for spec in suite().into_iter().take(3) {
        let program = (spec.build)(4, Scale::Test).unwrap();
        let mut cfg = RecordingConfig::with_cores(2);
        cfg.os.quantum_cycles = 5_000; // force migration churn
        let recording = record(program.clone(), cfg).unwrap();
        assert_eq!(recording.exit_code, (spec.expected)(4, Scale::Test), "{}", spec.name);
        replay_and_verify(&program, &recording)
            .unwrap_or_else(|e| panic!("{}: replay: {e}", spec.name));
    }
}
