//! Per-core L1 cache model (MESI metadata + LRU replacement).
//!
//! The cache tracks *coherence metadata only*; data values live in the
//! flat [`crate::memory::PagedMemory`]. This is sufficient because the
//! simulator makes stores globally visible at drain time, so the flat
//! memory is always architecturally current, while the cache decides
//! which accesses miss, which bus transactions occur, and which lines get
//! evicted — the inputs the recording hardware observes.

use crate::bus::BusKind;
use qr_common::LineAddr;

/// MESI coherence state of a cached line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MesiState {
    /// Modified: this cache owns the only, dirty copy.
    Modified,
    /// Exclusive: only copy, clean.
    Exclusive,
    /// Shared: possibly other copies, clean.
    Shared,
}

/// Result of looking up a local access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupResult {
    /// Hit with sufficient permission; no bus transaction needed.
    Hit,
    /// Hit in Shared but the access is a write: needs [`BusKind::BusUpgr`].
    NeedsUpgrade,
    /// Miss: needs [`BusKind::BusRd`] (read) or [`BusKind::BusRdX`]
    /// (write).
    Miss,
}

#[derive(Debug, Clone, Copy)]
struct Way {
    line: LineAddr,
    state: MesiState,
    /// Higher = more recently used.
    lru: u64,
}

/// What happened to an evicted line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// The line that was displaced.
    pub line: LineAddr,
    /// Whether it was dirty (Modified) and generated a writeback.
    pub dirty: bool,
}

/// A set-associative cache holding MESI metadata.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: Vec<Vec<Way>>,
    num_sets: u32,
    ways: u32,
    use_counter: u64,
}

impl Cache {
    /// Creates a cache with `num_sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `num_sets` is not a power of two or either value is zero;
    /// cache geometry is fixed at machine construction and validated by
    /// [`crate::config::MemConfig::validate`].
    pub fn new(num_sets: u32, ways: u32) -> Cache {
        assert!(num_sets.is_power_of_two() && num_sets > 0, "sets must be a power of two");
        assert!(ways > 0, "ways must be nonzero");
        Cache {
            sets: (0..num_sets).map(|_| Vec::with_capacity(ways as usize)).collect(),
            num_sets,
            ways,
            use_counter: 0,
        }
    }

    fn set_index(&self, line: LineAddr) -> usize {
        (line.0 & (self.num_sets - 1)) as usize
    }

    /// Current MESI state of a line, if present.
    pub fn state(&self, line: LineAddr) -> Option<MesiState> {
        let set = &self.sets[self.set_index(line)];
        set.iter().find(|w| w.line == line).map(|w| w.state)
    }

    /// Classifies a local access without changing any state.
    pub fn lookup(&self, line: LineAddr, is_write: bool) -> LookupResult {
        match self.state(line) {
            None => LookupResult::Miss,
            Some(MesiState::Shared) if is_write => LookupResult::NeedsUpgrade,
            Some(_) => LookupResult::Hit,
        }
    }

    /// Records a hit: refreshes LRU and, for writes, promotes
    /// Exclusive→Modified (the silent upgrade MESI allows).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the line is absent or the promotion is
    /// illegal — callers must have classified the access with
    /// [`Cache::lookup`] first.
    pub fn touch(&mut self, line: LineAddr, is_write: bool) {
        self.use_counter += 1;
        let counter = self.use_counter;
        let idx = self.set_index(line);
        let way = self.sets[idx]
            .iter_mut()
            .find(|w| w.line == line)
            .expect("touch() on a line that is not cached");
        way.lru = counter;
        if is_write {
            debug_assert_ne!(
                way.state,
                MesiState::Shared,
                "write hit on Shared must go through an upgrade"
            );
            way.state = MesiState::Modified;
        }
    }

    /// Installs a line after a miss was serviced, returning the eviction
    /// it caused, if any.
    ///
    /// `state` is the state granted by the bus ([`MesiState::Shared`] or
    /// [`MesiState::Exclusive`] for reads, [`MesiState::Modified`] for
    /// read-for-ownership).
    pub fn fill(&mut self, line: LineAddr, state: MesiState) -> Option<Eviction> {
        self.use_counter += 1;
        let counter = self.use_counter;
        let ways = self.ways as usize;
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        debug_assert!(set.iter().all(|w| w.line != line), "fill() of an already-present line");
        let evicted = if set.len() >= ways {
            let victim_pos = set
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.lru)
                .map(|(i, _)| i)
                .expect("nonempty set");
            let victim = set.swap_remove(victim_pos);
            Some(Eviction { line: victim.line, dirty: victim.state == MesiState::Modified })
        } else {
            None
        };
        set.push(Way { line, state, lru: counter });
        evicted
    }

    /// Upgrades a Shared line to Modified (after a [`BusKind::BusUpgr`]).
    pub fn upgrade(&mut self, line: LineAddr) {
        let idx = self.set_index(line);
        if let Some(way) = self.sets[idx].iter_mut().find(|w| w.line == line) {
            way.state = MesiState::Modified;
        }
    }

    /// Applies a remote bus transaction to this cache (the snoop side).
    ///
    /// Returns `true` if this cache had a dirty copy and must supply the
    /// data (an intervention, charged extra latency by the system).
    pub fn snoop(&mut self, line: LineAddr, kind: BusKind) -> bool {
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        let Some(pos) = set.iter().position(|w| w.line == line) else {
            return false;
        };
        let was_dirty = set[pos].state == MesiState::Modified;
        match kind {
            BusKind::BusRd => {
                // Remote read: downgrade to Shared.
                set[pos].state = MesiState::Shared;
            }
            BusKind::BusRdX | BusKind::BusUpgr => {
                // Remote write intent: invalidate.
                set.swap_remove(pos);
            }
            BusKind::Writeback => {}
        }
        was_dirty && kind != BusKind::Writeback
    }

    /// Serializes the full metadata state — every way's line, MESI state
    /// and LRU stamp, plus the use counter — so a restored cache misses
    /// and evicts identically (checkpoint snapshots).
    pub(crate) fn save_state(&self, out: &mut Vec<u8>) {
        qr_common::varint::write_u64(out, self.use_counter);
        for set in &self.sets {
            qr_common::varint::write_u64(out, set.len() as u64);
            for way in set {
                out.extend_from_slice(&way.line.0.to_le_bytes());
                out.push(match way.state {
                    MesiState::Modified => 0,
                    MesiState::Exclusive => 1,
                    MesiState::Shared => 2,
                });
                qr_common::varint::write_u64(out, way.lru);
            }
        }
    }

    /// Inverse of [`Cache::save_state`] for a cache of the given
    /// geometry (taken from the machine configuration, not the bytes).
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Corrupt`] on truncated or implausible bytes.
    pub(crate) fn load_state(
        r: &mut qr_common::cursor::ByteReader<'_>,
        num_sets: u32,
        ways: u32,
    ) -> qr_common::Result<Cache> {
        let mut cache = Cache::new(num_sets, ways);
        cache.use_counter = r.varint()?;
        for set in &mut cache.sets {
            let len = r.count(ways as u64)?;
            for _ in 0..len {
                let line = LineAddr(r.u32()?);
                let state = match r.u8()? {
                    0 => MesiState::Modified,
                    1 => MesiState::Exclusive,
                    2 => MesiState::Shared,
                    code => {
                        return Err(qr_common::QrError::Corrupt {
                            what: "checkpoint cache state".into(),
                            offset: 0,
                            detail: format!("unknown MESI code {code}"),
                        })
                    }
                };
                let lru = r.varint()?;
                set.push(Way { line, state, lru });
            }
        }
        Ok(cache)
    }

    /// Number of lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Drops every line (used on context-switch flush experiments).
    pub fn flush_all(&mut self) -> Vec<Eviction> {
        let mut out = Vec::new();
        for set in &mut self.sets {
            for way in set.drain(..) {
                out.push(Eviction { line: way.line, dirty: way.state == MesiState::Modified });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u32) -> LineAddr {
        LineAddr(n)
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = Cache::new(4, 2);
        assert_eq!(c.lookup(line(1), false), LookupResult::Miss);
        assert_eq!(c.fill(line(1), MesiState::Exclusive), None);
        assert_eq!(c.lookup(line(1), false), LookupResult::Hit);
        assert_eq!(c.state(line(1)), Some(MesiState::Exclusive));
    }

    #[test]
    fn write_hit_on_exclusive_promotes_silently() {
        let mut c = Cache::new(4, 2);
        c.fill(line(1), MesiState::Exclusive);
        assert_eq!(c.lookup(line(1), true), LookupResult::Hit);
        c.touch(line(1), true);
        assert_eq!(c.state(line(1)), Some(MesiState::Modified));
    }

    #[test]
    fn write_hit_on_shared_needs_upgrade() {
        let mut c = Cache::new(4, 2);
        c.fill(line(1), MesiState::Shared);
        assert_eq!(c.lookup(line(1), true), LookupResult::NeedsUpgrade);
        c.upgrade(line(1));
        assert_eq!(c.state(line(1)), Some(MesiState::Modified));
    }

    #[test]
    fn lru_evicts_least_recent_within_set() {
        let mut c = Cache::new(1, 2);
        c.fill(line(1), MesiState::Exclusive);
        c.fill(line(2), MesiState::Exclusive);
        c.touch(line(1), false); // 1 becomes most recent
        let ev = c.fill(line(3), MesiState::Exclusive).unwrap();
        assert_eq!(ev.line, line(2));
        assert!(!ev.dirty);
        assert_eq!(c.state(line(1)), Some(MesiState::Exclusive));
    }

    #[test]
    fn dirty_eviction_is_flagged() {
        let mut c = Cache::new(1, 1);
        c.fill(line(1), MesiState::Modified);
        let ev = c.fill(line(2), MesiState::Exclusive).unwrap();
        assert_eq!(ev, Eviction { line: line(1), dirty: true });
    }

    #[test]
    fn snoop_read_downgrades_and_reports_intervention() {
        let mut c = Cache::new(4, 2);
        c.fill(line(5), MesiState::Modified);
        assert!(c.snoop(line(5), BusKind::BusRd), "dirty copy supplies data");
        assert_eq!(c.state(line(5)), Some(MesiState::Shared));
        assert!(!c.snoop(line(5), BusKind::BusRd), "clean copy does not intervene");
    }

    #[test]
    fn snoop_write_invalidates() {
        let mut c = Cache::new(4, 2);
        c.fill(line(5), MesiState::Shared);
        assert!(!c.snoop(line(5), BusKind::BusRdX));
        assert_eq!(c.state(line(5)), None);
    }

    #[test]
    fn snoop_on_absent_line_is_noop() {
        let mut c = Cache::new(4, 2);
        assert!(!c.snoop(line(9), BusKind::BusRdX));
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn lines_map_to_distinct_sets() {
        let mut c = Cache::new(2, 1);
        // Lines 0 and 1 go to different sets, so no eviction.
        assert!(c.fill(line(0), MesiState::Exclusive).is_none());
        assert!(c.fill(line(1), MesiState::Exclusive).is_none());
        assert_eq!(c.resident_lines(), 2);
        // Line 2 collides with line 0 (same parity).
        let ev = c.fill(line(2), MesiState::Exclusive).unwrap();
        assert_eq!(ev.line, line(0));
    }

    #[test]
    fn flush_all_reports_dirty_lines() {
        let mut c = Cache::new(2, 2);
        c.fill(line(0), MesiState::Modified);
        c.fill(line(1), MesiState::Shared);
        let evs = c.flush_all();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs.iter().filter(|e| e.dirty).count(), 1);
        assert_eq!(c.resident_lines(), 0);
    }
}
