#![warn(missing_docs)]

//! Memory hierarchy of the simulated QuickIA-like platform.
//!
//! The QuickRec prototype records multithreaded executions by observing
//! cache-coherence traffic: every cross-core data dependency manifests as
//! a snoopy-bus transaction that hits another core's read or write set.
//! This crate models exactly the machinery that behaviour depends on:
//!
//! - a sparse, paged flat memory holding the architectural data
//!   ([`memory::PagedMemory`]),
//! - per-core L1 caches with MESI states and LRU replacement
//!   ([`cache::Cache`]),
//! - a snoopy bus with a global, monotonically increasing timestamp — the
//!   time base used to order recorded chunks ([`bus`]),
//! - per-core TSO store buffers with load forwarding
//!   ([`store_buffer::StoreBuffer`]),
//! - the composed [`system::MemorySystem`] that cores issue accesses to,
//!   and which emits the [`events::MemEvent`] stream consumed by the
//!   recording hardware model in `quickrec-core`.
//!
//! Data values live in the flat memory and become globally visible when a
//! store *drains* from its store buffer; caches carry coherence metadata
//! and timing. This split keeps the simulator fast while preserving every
//! event the recorder cares about (bus transactions, evictions, pending
//! store counts).

pub mod bus;
pub mod cache;
pub mod config;
pub mod events;
pub mod memory;
pub mod stats;
pub mod store_buffer;
pub mod system;

pub use bus::{BusKind, GlobalClock};
pub use config::{MemConfig, TsoMode};
pub use events::MemEvent;
pub use memory::PagedMemory;
pub use stats::MemStats;
pub use system::{Access, MemorySystem};
