//! Memory-system configuration.

use qr_common::{QrError, Result};

/// How the store buffer interacts with chunk termination (see DESIGN.md,
/// decision 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TsoMode {
    /// Drain the store buffer before a chunk terminates. Replay is a
    /// simple chunk-sequential execution. The default.
    #[default]
    DrainAtChunk,
    /// Allow stores to remain pending across chunk boundaries; the chunk
    /// packet records the reordered-store-window count (the paper's RSW
    /// field). Used for the TSO statistics experiment; logs recorded in
    /// this mode are not replayable by this reproduction.
    Rsw,
}

/// Geometry and timing of the memory hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemConfig {
    /// L1 sets per core (power of two).
    pub l1_sets: u32,
    /// L1 ways per core.
    pub l1_ways: u32,
    /// Store-buffer entries per core.
    pub store_buffer_entries: usize,
    /// Extra cycles charged for an L1 miss serviced from memory.
    pub miss_penalty: u64,
    /// Extra cycles when a remote cache supplies dirty data.
    pub intervention_penalty: u64,
    /// Cycles a hit costs beyond the base instruction cycle.
    pub hit_cycles: u64,
    /// TSO handling mode.
    pub tso_mode: TsoMode,
}

impl Default for MemConfig {
    fn default() -> Self {
        // Loosely modeled on the QuickIA platform's Pentium-class cores:
        // a small L1 (32 KiB: 128 sets x 4 ways x 64 B) and a short store
        // buffer.
        MemConfig {
            l1_sets: 128,
            l1_ways: 4,
            store_buffer_entries: 8,
            miss_penalty: 24,
            intervention_penalty: 8,
            hit_cycles: 0,
            tso_mode: TsoMode::DrainAtChunk,
        }
    }
}

impl MemConfig {
    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::InvalidConfig`] for zero sizes or a non-power-of-
    /// two set count.
    pub fn validate(&self) -> Result<()> {
        if self.l1_sets == 0 || !self.l1_sets.is_power_of_two() {
            return Err(QrError::InvalidConfig(format!(
                "l1_sets must be a nonzero power of two, got {}",
                self.l1_sets
            )));
        }
        if self.l1_ways == 0 {
            return Err(QrError::InvalidConfig("l1_ways must be nonzero".into()));
        }
        if self.store_buffer_entries == 0 {
            return Err(QrError::InvalidConfig("store_buffer_entries must be nonzero".into()));
        }
        Ok(())
    }

    /// Total L1 capacity in bytes.
    pub fn l1_bytes(&self) -> u32 {
        self.l1_sets * self.l1_ways * qr_common::CACHE_LINE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_32k() {
        let c = MemConfig::default();
        c.validate().unwrap();
        assert_eq!(c.l1_bytes(), 32 * 1024);
        assert_eq!(c.tso_mode, TsoMode::DrainAtChunk);
    }

    #[test]
    fn bad_geometry_is_rejected() {
        let mut c = MemConfig { l1_sets: 100, ..MemConfig::default() };
        assert!(c.validate().is_err(), "non power of two");
        c.l1_sets = 0;
        assert!(c.validate().is_err());
        c = MemConfig { l1_ways: 0, ..MemConfig::default() };
        assert!(c.validate().is_err());
        c = MemConfig { store_buffer_entries: 0, ..MemConfig::default() };
        assert!(c.validate().is_err());
    }
}
