//! Sparse paged flat memory.
//!
//! Holds the architectural memory contents of one address space. Pages are
//! allocated lazily but only inside regions the kernel has explicitly
//! mapped, so wild accesses fault like they would on hardware with paging.

use qr_common::{QrError, Result, VirtAddr};
use std::collections::BTreeMap;

/// Size of one backing page (simulator granularity, not the guest ABI).
pub const PAGE_BYTES: u32 = 64 * 1024;

/// Sparse flat memory with explicit region mapping.
#[derive(Debug, Clone, Default)]
pub struct PagedMemory {
    /// Backing pages, keyed by page number, allocated on first touch.
    pages: BTreeMap<u32, Box<[u8]>>,
    /// Mapped half-open ranges `[start, end)`, coalesced on insert.
    regions: Vec<(u32, u32)>,
}

impl PagedMemory {
    /// Creates an empty memory with no mapped regions.
    pub fn new() -> PagedMemory {
        PagedMemory::default()
    }

    /// Maps `[base, base + len)`, making it readable and writable.
    /// Overlapping or adjacent regions are merged.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::InvalidConfig`] if the range wraps the address
    /// space.
    pub fn map_region(&mut self, base: VirtAddr, len: u32) -> Result<()> {
        let end = base.0.checked_add(len).ok_or_else(|| {
            QrError::InvalidConfig(format!("region {base} + {len:#x} wraps the address space"))
        })?;
        if len == 0 {
            return Ok(());
        }
        self.regions.push((base.0, end));
        self.regions.sort_unstable();
        // Coalesce overlapping/adjacent ranges.
        let mut merged: Vec<(u32, u32)> = Vec::with_capacity(self.regions.len());
        for &(s, e) in &self.regions {
            match merged.last_mut() {
                Some((_, last_end)) if s <= *last_end => *last_end = (*last_end).max(e),
                _ => merged.push((s, e)),
            }
        }
        self.regions = merged;
        Ok(())
    }

    /// Whether the whole access `[addr, addr + len)` is mapped.
    pub fn is_mapped(&self, addr: VirtAddr, len: u32) -> bool {
        if len == 0 {
            return true;
        }
        let end = match addr.0.checked_add(len) {
            Some(e) => e,
            None => return false,
        };
        self.regions.iter().any(|&(s, e)| s <= addr.0 && end <= e)
    }

    fn check(&self, addr: VirtAddr, len: u32, what: &str) -> Result<()> {
        if self.is_mapped(addr, len) {
            Ok(())
        } else {
            Err(QrError::MemoryFault {
                addr: addr.0,
                detail: format!("{what} of {len} bytes touches unmapped memory"),
            })
        }
    }

    fn page(&mut self, page_num: u32) -> &mut [u8] {
        self.pages
            .entry(page_num)
            .or_insert_with(|| vec![0u8; PAGE_BYTES as usize].into_boxed_slice())
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// Faults if any byte is unmapped.
    pub fn read_bytes(&self, addr: VirtAddr, buf: &mut [u8]) -> Result<()> {
        self.check(addr, buf.len() as u32, "read")?;
        for (i, slot) in buf.iter_mut().enumerate() {
            let a = addr.0.wrapping_add(i as u32);
            let page_num = a / PAGE_BYTES;
            let off = (a % PAGE_BYTES) as usize;
            *slot = self.pages.get(&page_num).map_or(0, |p| p[off]);
        }
        Ok(())
    }

    /// Writes `data` starting at `addr`.
    ///
    /// # Errors
    ///
    /// Faults if any byte is unmapped.
    pub fn write_bytes(&mut self, addr: VirtAddr, data: &[u8]) -> Result<()> {
        self.check(addr, data.len() as u32, "write")?;
        for (i, &byte) in data.iter().enumerate() {
            let a = addr.0.wrapping_add(i as u32);
            let page_num = a / PAGE_BYTES;
            let off = (a % PAGE_BYTES) as usize;
            self.page(page_num)[off] = byte;
        }
        Ok(())
    }

    /// Reads a little-endian value of `width` bytes (1, 2 or 4).
    ///
    /// # Errors
    ///
    /// Faults if unmapped.
    pub fn read_uint(&self, addr: VirtAddr, width: u32) -> Result<u32> {
        debug_assert!(matches!(width, 1 | 2 | 4));
        let mut buf = [0u8; 4];
        self.read_bytes(addr, &mut buf[..width as usize])?;
        Ok(u32::from_le_bytes(buf))
    }

    /// Writes the low `width` bytes of `value` little-endian.
    ///
    /// # Errors
    ///
    /// Faults if unmapped.
    pub fn write_uint(&mut self, addr: VirtAddr, width: u32, value: u32) -> Result<()> {
        debug_assert!(matches!(width, 1 | 2 | 4));
        let bytes = value.to_le_bytes();
        self.write_bytes(addr, &bytes[..width as usize])
    }

    /// Iterates over mapped regions (for fingerprinting), in address order.
    pub fn regions(&self) -> impl Iterator<Item = (VirtAddr, u32)> + '_ {
        self.regions.iter().map(|&(s, e)| (VirtAddr(s), e - s))
    }

    /// Serializes regions and allocated pages (checkpoint snapshots).
    /// Page order is the `BTreeMap` key order, so the bytes are a
    /// deterministic function of the architectural state.
    pub(crate) fn save_state(&self, out: &mut Vec<u8>) {
        qr_common::varint::write_u64(out, self.regions.len() as u64);
        for &(s, e) in &self.regions {
            out.extend_from_slice(&s.to_le_bytes());
            out.extend_from_slice(&e.to_le_bytes());
        }
        qr_common::varint::write_u64(out, self.pages.len() as u64);
        for (&num, page) in &self.pages {
            out.extend_from_slice(&num.to_le_bytes());
            out.extend_from_slice(page);
        }
    }

    /// Inverse of [`PagedMemory::save_state`].
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Corrupt`] on truncated or implausible bytes.
    pub(crate) fn load_state(r: &mut qr_common::cursor::ByteReader<'_>) -> Result<PagedMemory> {
        let mut mem = PagedMemory::new();
        let regions = r.count(1 << 20)?;
        for _ in 0..regions {
            let s = r.u32()?;
            let e = r.u32()?;
            mem.regions.push((s, e));
        }
        let pages = r.count(1 << 20)?;
        for _ in 0..pages {
            let num = r.u32()?;
            let bytes = r.bytes(PAGE_BYTES as usize)?;
            mem.pages.insert(num, bytes.to_vec().into_boxed_slice());
        }
        Ok(mem)
    }

    /// Hashes the contents of all mapped regions into a fingerprint field.
    pub fn fingerprint_into(&self, fp: &mut qr_common::Fingerprint) {
        for (base, len) in self.regions.iter().map(|&(s, e)| (s, e - s)) {
            fp.u32(base);
            fp.u32(len);
            // Hash page-by-page, using the zero page for untouched pages.
            let mut remaining = len;
            let mut addr = base;
            let zero = [0u8; PAGE_BYTES as usize];
            while remaining > 0 {
                let page_num = addr / PAGE_BYTES;
                let off = (addr % PAGE_BYTES) as usize;
                let take = ((PAGE_BYTES - addr % PAGE_BYTES) as usize).min(remaining as usize);
                match self.pages.get(&page_num) {
                    Some(p) => fp.bytes(&p[off..off + take]),
                    None => fp.bytes(&zero[..take]),
                };
                addr = addr.wrapping_add(take as u32);
                remaining -= take as u32;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapped() -> PagedMemory {
        let mut m = PagedMemory::new();
        m.map_region(VirtAddr(0x1000), 0x1000).unwrap();
        m
    }

    #[test]
    fn unmapped_access_faults() {
        let m = mapped();
        let mut b = [0u8; 4];
        assert!(m.read_bytes(VirtAddr(0x0), &mut b).is_err());
        assert!(m.read_bytes(VirtAddr(0x2000), &mut b).is_err(), "one past the region");
        assert!(m.read_bytes(VirtAddr(0x1ffd), &mut b).is_err(), "straddles the end");
        assert!(m.read_bytes(VirtAddr(0x1ffc), &mut b).is_ok(), "last word is fine");
    }

    #[test]
    fn zero_length_access_never_faults() {
        let m = PagedMemory::new();
        assert!(m.read_bytes(VirtAddr(0xdead_0000), &mut []).is_ok());
        assert!(m.is_mapped(VirtAddr(0), 0));
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut m = mapped();
        m.write_uint(VirtAddr(0x1004), 4, 0xdead_beef).unwrap();
        assert_eq!(m.read_uint(VirtAddr(0x1004), 4).unwrap(), 0xdead_beef);
        assert_eq!(m.read_uint(VirtAddr(0x1004), 1).unwrap(), 0xef, "little endian");
        assert_eq!(m.read_uint(VirtAddr(0x1006), 2).unwrap(), 0xdead);
    }

    #[test]
    fn untouched_memory_reads_zero() {
        let m = mapped();
        assert_eq!(m.read_uint(VirtAddr(0x1800), 4).unwrap(), 0);
    }

    #[test]
    fn regions_coalesce() {
        let mut m = PagedMemory::new();
        m.map_region(VirtAddr(0x1000), 0x1000).unwrap();
        m.map_region(VirtAddr(0x2000), 0x1000).unwrap(); // adjacent
        m.map_region(VirtAddr(0x1800), 0x100).unwrap(); // contained
        let regions: Vec<_> = m.regions().collect();
        assert_eq!(regions, vec![(VirtAddr(0x1000), 0x2000)]);
        assert!(m.is_mapped(VirtAddr(0x1fff), 2), "access across former boundary");
    }

    #[test]
    fn cross_page_access_works() {
        let mut m = PagedMemory::new();
        m.map_region(VirtAddr(PAGE_BYTES - 8), 16).unwrap();
        let addr = VirtAddr(PAGE_BYTES - 2);
        m.write_uint(addr, 4, 0x1122_3344).unwrap();
        assert_eq!(m.read_uint(addr, 4).unwrap(), 0x1122_3344);
    }

    #[test]
    fn wrap_around_mapping_is_rejected() {
        let mut m = PagedMemory::new();
        assert!(m.map_region(VirtAddr(0xffff_fff0), 0x20).is_err());
        assert!(!m.is_mapped(VirtAddr(0xffff_fff0), 0x20));
    }

    #[test]
    fn fingerprint_detects_changes_and_ignores_page_allocation() {
        let mut a = mapped();
        let mut b = mapped();
        // Touching a page with a zero write must not change the digest.
        b.write_uint(VirtAddr(0x1100), 4, 0).unwrap();
        let digest = |m: &PagedMemory| {
            let mut fp = qr_common::Fingerprint::new();
            m.fingerprint_into(&mut fp);
            fp.digest()
        };
        assert_eq!(digest(&a), digest(&b));
        a.write_uint(VirtAddr(0x1100), 4, 7).unwrap();
        assert_ne!(digest(&a), digest(&b));
    }
}
