//! The composed memory system cores issue accesses to.
//!
//! [`MemorySystem`] glues together the flat memory, per-core L1 caches,
//! per-core TSO store buffers and the snoopy bus, and emits the
//! [`MemEvent`] stream the recording hardware consumes.
//!
//! # Visibility model
//!
//! A store becomes globally visible when it drains from its store buffer
//! into the cache; at that moment it is written through to the flat
//! memory and the required coherence transaction (if any) appears on the
//! bus. Loads read the flat memory unless a pending local store forwards.
//! Because the simulator interleaves cores at instruction granularity,
//! the flat memory is always architecturally current.
//!
//! # Kernel accesses
//!
//! The kernel (Capo3 analog) copies data in and out of user memory during
//! syscalls. Those copies are coherent — they invalidate or downgrade
//! remote cached copies and therefore *snoop remote recorder signatures*
//! — but they do not allocate into the local L1 and do not grow the local
//! core's chunk signatures, matching QuickRec's user-space-only recording.

use crate::bus::{BusKind, GlobalClock};
use crate::cache::{Cache, LookupResult, MesiState};
use crate::config::MemConfig;
use crate::events::MemEvent;
use crate::memory::PagedMemory;
use crate::stats::MemStats;
use crate::store_buffer::{ForwardResult, PendingStore, StoreBuffer};
use qr_common::{CoreId, Cycle, LineAddr, QrError, Result, VirtAddr};

/// Outcome of one memory operation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Access {
    /// Loaded or pre-modification value (0 for pure stores/fences).
    pub value: u32,
    /// Extra cycles beyond the base instruction cost.
    pub cycles: u64,
    /// Events for the recording hardware, in occurrence order.
    pub events: Vec<MemEvent>,
}

impl Access {
    fn merge(&mut self, other: Access) {
        self.cycles += other.cycles;
        self.events.extend(other.events);
    }
}

/// The full memory hierarchy for one machine.
///
/// Cloning snapshots the complete architectural and micro-architectural
/// state (memory contents, cache metadata, store buffers, clock) — the
/// basis of replay checkpointing.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    cfg: MemConfig,
    mem: PagedMemory,
    caches: Vec<Cache>,
    buffers: Vec<StoreBuffer>,
    clock: GlobalClock,
    stats: MemStats,
}

impl MemorySystem {
    /// Creates a memory system for `num_cores` cores.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::InvalidConfig`] if the configuration is invalid
    /// or `num_cores` is zero.
    pub fn new(cfg: MemConfig, num_cores: usize) -> Result<MemorySystem> {
        cfg.validate()?;
        if num_cores == 0 {
            return Err(QrError::InvalidConfig("num_cores must be nonzero".into()));
        }
        Ok(MemorySystem {
            caches: (0..num_cores).map(|_| Cache::new(cfg.l1_sets, cfg.l1_ways)).collect(),
            buffers: (0..num_cores).map(|_| StoreBuffer::new(cfg.store_buffer_entries)).collect(),
            mem: PagedMemory::new(),
            clock: GlobalClock::new(),
            stats: MemStats::new(num_cores),
            cfg,
        })
    }

    /// Number of cores this system serves.
    pub fn num_cores(&self) -> usize {
        self.caches.len()
    }

    /// The configuration in effect.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Direct access to the flat memory (loader, fingerprinting).
    pub fn memory(&self) -> &PagedMemory {
        &self.mem
    }

    /// Mutable direct access to the flat memory (loader only; bypasses
    /// coherence, so use before execution starts or from DMA-like agents).
    pub fn memory_mut(&mut self) -> &mut PagedMemory {
        &mut self.mem
    }

    /// Current global time.
    pub fn now(&self) -> Cycle {
        self.clock.now()
    }

    /// Draws a fresh, strictly increasing global timestamp (chunk
    /// termination stamps come from here so they interleave correctly
    /// with bus transactions).
    pub fn tick_clock(&mut self) -> Cycle {
        self.clock.tick()
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Pending stores in a core's buffer (the RSW value).
    pub fn pending_stores(&self, core: CoreId) -> usize {
        self.buffers[core.index()].len()
    }

    fn check_alignment(addr: VirtAddr, width: u32, what: &str) -> Result<()> {
        if !addr.0.is_multiple_of(width) {
            return Err(QrError::MemoryFault {
                addr: addr.0,
                detail: format!("misaligned {width}-byte {what}"),
            });
        }
        Ok(())
    }

    /// Performs a load.
    ///
    /// # Errors
    ///
    /// Faults on misaligned or unmapped accesses.
    pub fn read(&mut self, core: CoreId, addr: VirtAddr, width: u32) -> Result<Access> {
        Self::check_alignment(addr, width, "load")?;
        let mut access = Access::default();
        self.stats.cores[core.index()].loads += 1;
        match self.buffers[core.index()].forward(addr, width) {
            ForwardResult::Forward(value) => {
                self.stats.cores[core.index()].load_forwards += 1;
                access.value = value;
                access.cycles = self.cfg.hit_cycles;
                access.events.push(MemEvent::LocalRead {
                    core,
                    line: addr.line(),
                    addr,
                    width: width as u8,
                    atomic: false,
                });
                return Ok(access);
            }
            ForwardResult::PartialOverlap => {
                self.stats.cores[core.index()].forced_drains += 1;
                access.merge(self.drain_all(core)?);
            }
            ForwardResult::NoMatch => {}
        }
        access.merge(self.cached_access(core, addr.line(), false)?);
        access.value = self.mem.read_uint(addr, width)?;
        access.events.push(MemEvent::LocalRead {
            core,
            line: addr.line(),
            addr,
            width: width as u8,
            atomic: false,
        });
        Ok(access)
    }

    /// Issues a store into the core's store buffer. The store becomes
    /// visible when it drains.
    ///
    /// # Errors
    ///
    /// Faults on misaligned or unmapped targets (checked at issue so the
    /// fault is attributed to the storing instruction).
    pub fn write(&mut self, core: CoreId, addr: VirtAddr, width: u32, value: u32) -> Result<Access> {
        Self::check_alignment(addr, width, "store")?;
        if !self.mem.is_mapped(addr, width) {
            return Err(QrError::MemoryFault {
                addr: addr.0,
                detail: format!("store of {width} bytes touches unmapped memory"),
            });
        }
        let mut access = Access::default();
        if self.buffers[core.index()].is_full() {
            access.merge(self.drain_one(core)?);
        }
        self.buffers[core.index()].push(PendingStore { addr, width, value });
        self.stats.cores[core.index()].stores += 1;
        Ok(access)
    }

    /// Drains the oldest pending store, if any (called once per retired
    /// instruction to model drain bandwidth, and when the buffer fills).
    ///
    /// # Errors
    ///
    /// Propagates memory faults (cannot happen for stores validated at
    /// issue unless mappings change).
    pub fn drain_one(&mut self, core: CoreId) -> Result<Access> {
        let Some(store) = self.buffers[core.index()].pop_oldest() else {
            return Ok(Access::default());
        };
        self.commit_store(core, store)
    }

    /// Drains the core's entire store buffer (fences, atomics, syscalls,
    /// chunk boundaries in `DrainAtChunk` mode).
    ///
    /// # Errors
    ///
    /// Propagates memory faults.
    pub fn drain_all(&mut self, core: CoreId) -> Result<Access> {
        let mut access = Access::default();
        while let Some(store) = self.buffers[core.index()].pop_oldest() {
            access.merge(self.commit_store(core, store)?);
        }
        Ok(access)
    }

    fn commit_store(&mut self, core: CoreId, store: PendingStore) -> Result<Access> {
        self.stats.cores[core.index()].drains += 1;
        let mut access = self.cached_access(core, store.addr.line(), true)?;
        self.mem.write_uint(store.addr, store.width, store.value)?;
        access.events.push(MemEvent::LocalWrite {
            core,
            line: store.addr.line(),
            addr: store.addr,
            width: store.width as u8,
            atomic: false,
        });
        Ok(access)
    }

    /// Executes an atomic read-modify-write with full-barrier semantics:
    /// drains the store buffer, takes ownership of the line, applies `f`
    /// to the old value and writes the result. Returns the old value.
    ///
    /// # Errors
    ///
    /// Faults on misaligned or unmapped targets.
    pub fn atomic_rmw(
        &mut self,
        core: CoreId,
        addr: VirtAddr,
        f: impl FnOnce(u32) -> u32,
    ) -> Result<Access> {
        Self::check_alignment(addr, 4, "atomic")?;
        let mut access = self.drain_all(core)?;
        self.stats.cores[core.index()].forced_drains += 1;
        self.stats.cores[core.index()].atomics += 1;
        access.merge(self.cached_access(core, addr.line(), true)?);
        let old = self.mem.read_uint(addr, 4)?;
        let new = f(old);
        self.mem.write_uint(addr, 4, new)?;
        access.value = old;
        access.cycles += 2; // bus-lock overhead beyond the miss path
        access.events.push(MemEvent::LocalRead {
            core,
            line: addr.line(),
            addr,
            width: 4,
            atomic: true,
        });
        access.events.push(MemEvent::LocalWrite {
            core,
            line: addr.line(),
            addr,
            width: 4,
            atomic: true,
        });
        Ok(access)
    }

    /// Full fence: drains the store buffer.
    ///
    /// # Errors
    ///
    /// Propagates memory faults.
    pub fn fence(&mut self, core: CoreId) -> Result<Access> {
        self.stats.cores[core.index()].forced_drains += 1;
        self.drain_all(core)
    }

    /// The local cache side of an access: classifies hit/upgrade/miss,
    /// performs the bus transaction and snoops, updates stats and timing.
    fn cached_access(&mut self, core: CoreId, line: LineAddr, is_write: bool) -> Result<Access> {
        let mut access = Access::default();
        match self.caches[core.index()].lookup(line, is_write) {
            LookupResult::Hit => {
                self.caches[core.index()].touch(line, is_write);
                access.cycles = self.cfg.hit_cycles;
            }
            LookupResult::NeedsUpgrade => {
                self.stats.cores[core.index()].upgrades += 1;
                access.merge(self.bus_transaction(core, line, BusKind::BusUpgr));
                self.caches[core.index()].upgrade(line);
                self.caches[core.index()].touch(line, is_write);
            }
            LookupResult::Miss => {
                if is_write {
                    self.stats.cores[core.index()].store_misses += 1;
                } else {
                    self.stats.cores[core.index()].load_misses += 1;
                }
                let kind = if is_write { BusKind::BusRdX } else { BusKind::BusRd };
                let others_share = self.line_cached_elsewhere(core, line);
                access.merge(self.bus_transaction(core, line, kind));
                access.cycles += self.cfg.miss_penalty;
                let state = match (is_write, others_share) {
                    (true, _) => MesiState::Modified,
                    (false, true) => MesiState::Shared,
                    (false, false) => MesiState::Exclusive,
                };
                if let Some(ev) = self.caches[core.index()].fill(line, state) {
                    self.stats.cores[core.index()].evictions += 1;
                    access.events.push(MemEvent::Eviction { core, line: ev.line, dirty: ev.dirty });
                    if ev.dirty {
                        self.stats.cores[core.index()].writebacks += 1;
                        access.merge(self.bus_transaction(core, ev.line, BusKind::Writeback));
                    }
                }
            }
        }
        Ok(access)
    }

    fn line_cached_elsewhere(&self, core: CoreId, line: LineAddr) -> bool {
        self.caches
            .iter()
            .enumerate()
            .any(|(i, c)| i != core.index() && c.state(line).is_some())
    }

    /// Puts a transaction on the bus: advances global time, snoops every
    /// other cache, records intervention latency and stats.
    fn bus_transaction(&mut self, from: CoreId, line: LineAddr, kind: BusKind) -> Access {
        self.clock.tick();
        self.stats.bus_txns[MemStats::bus_slot(kind)] += 1;
        let mut access = Access::default();
        if kind != BusKind::Writeback {
            for i in 0..self.caches.len() {
                if i == from.index() {
                    continue;
                }
                if self.caches[i].snoop(line, kind) {
                    self.stats.cores[i].interventions += 1;
                    access.cycles += self.cfg.intervention_penalty;
                }
            }
        }
        access.events.push(MemEvent::BusTxn { from, line, kind });
        access
    }

    // ----- kernel (Capo3) access paths ---------------------------------

    /// Coherent kernel read of guest memory (copy_from_user analog).
    /// Snoops remote caches line by line without allocating locally.
    ///
    /// # Errors
    ///
    /// Faults if the range is unmapped.
    pub fn kernel_read_bytes(&mut self, core: CoreId, addr: VirtAddr, len: u32) -> Result<(Vec<u8>, Access)> {
        // The kernel runs below the store buffer: drain first so the
        // calling thread's own pending stores are visible to it.
        let mut access = self.drain_all(core)?;
        for line in lines_touched(addr, len) {
            access.merge(self.bus_transaction(core, line, BusKind::BusRd));
        }
        let mut buf = vec![0u8; len as usize];
        self.mem.read_bytes(addr, &mut buf)?;
        Ok((buf, access))
    }

    /// Coherent kernel write into guest memory (copy_to_user analog).
    /// Invalidates every cached copy — including the local core's — so
    /// user code everywhere observes the new data.
    ///
    /// # Errors
    ///
    /// Faults if the range is unmapped.
    pub fn kernel_write_bytes(&mut self, core: CoreId, addr: VirtAddr, data: &[u8]) -> Result<Access> {
        let mut access = self.drain_all(core)?;
        for line in lines_touched(addr, data.len() as u32) {
            // Invalidate the writer's own cached copy as well: kernel
            // writes are uncached in this model.
            self.caches[core.index()].snoop(line, BusKind::BusRdX);
            access.merge(self.bus_transaction(core, line, BusKind::BusRdX));
        }
        self.mem.write_bytes(addr, data)?;
        Ok(access)
    }

    /// Maps a region of guest memory (kernel mmap/sbrk path).
    ///
    /// # Errors
    ///
    /// Propagates [`PagedMemory::map_region`] errors.
    pub fn map_region(&mut self, base: VirtAddr, len: u32) -> Result<()> {
        self.mem.map_region(base, len)
    }

    // ----- checkpoint state serialization ------------------------------

    /// Serializes the complete architectural and micro-architectural
    /// state (memory contents, cache metadata, store buffers, clock,
    /// counters). The bytes are a deterministic function of the state,
    /// and restoring them with [`MemorySystem::restore_state`] into a
    /// system of the same configuration reproduces execution bit-for-bit
    /// — including miss/eviction behavior and bus timestamps.
    pub fn save_state(&self, out: &mut Vec<u8>) {
        self.mem.save_state(out);
        for cache in &self.caches {
            cache.save_state(out);
        }
        for buffer in &self.buffers {
            buffer.save_state(out);
        }
        qr_common::varint::write_u64(out, self.clock.now().0);
        qr_common::varint::write_u64(out, self.stats.cores.len() as u64);
        for core in &self.stats.cores {
            for field in [
                core.loads,
                core.load_forwards,
                core.stores,
                core.drains,
                core.load_misses,
                core.store_misses,
                core.upgrades,
                core.evictions,
                core.writebacks,
                core.atomics,
                core.interventions,
                core.forced_drains,
            ] {
                qr_common::varint::write_u64(out, field);
            }
        }
        for txns in self.stats.bus_txns {
            qr_common::varint::write_u64(out, txns);
        }
    }

    /// Overwrites this system's state from bytes produced by
    /// [`MemorySystem::save_state`]. The configuration (cache geometry,
    /// buffer capacity, core count) is taken from `self`, not the bytes —
    /// the caller must have built the system with the same configuration
    /// the snapshot was taken under.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Corrupt`] on truncated or implausible bytes;
    /// `self` may be partially overwritten on error and must be discarded.
    pub fn restore_state(&mut self, r: &mut qr_common::cursor::ByteReader<'_>) -> Result<()> {
        self.mem = PagedMemory::load_state(r)?;
        for cache in &mut self.caches {
            *cache = Cache::load_state(r, self.cfg.l1_sets, self.cfg.l1_ways)?;
        }
        for buffer in &mut self.buffers {
            *buffer = StoreBuffer::load_state(r, self.cfg.store_buffer_entries)?;
        }
        self.clock = GlobalClock::restore(r.varint()?);
        let cores = r.count(256)?;
        if cores != self.stats.cores.len() {
            return Err(QrError::Corrupt {
                what: "checkpoint memory state".into(),
                offset: r.pos() as u64,
                detail: format!(
                    "snapshot has {cores} cores, machine has {}",
                    self.stats.cores.len()
                ),
            });
        }
        for core in &mut self.stats.cores {
            core.loads = r.varint()?;
            core.load_forwards = r.varint()?;
            core.stores = r.varint()?;
            core.drains = r.varint()?;
            core.load_misses = r.varint()?;
            core.store_misses = r.varint()?;
            core.upgrades = r.varint()?;
            core.evictions = r.varint()?;
            core.writebacks = r.varint()?;
            core.atomics = r.varint()?;
            core.interventions = r.varint()?;
            core.forced_drains = r.varint()?;
        }
        for txns in &mut self.stats.bus_txns {
            *txns = r.varint()?;
        }
        Ok(())
    }
}

/// Iterates the cache lines covered by `[addr, addr + len)`.
fn lines_touched(addr: VirtAddr, len: u32) -> impl Iterator<Item = LineAddr> {
    let first = addr.line().0;
    let last = if len == 0 { first } else { addr.wrapping_add(len - 1).line().0 };
    (first..=last).map(LineAddr)
}

#[cfg(test)]
mod tests {
    use super::*;

    const C0: CoreId = CoreId(0);
    const C1: CoreId = CoreId(1);

    fn sys(cores: usize) -> MemorySystem {
        let mut s = MemorySystem::new(MemConfig::default(), cores).unwrap();
        s.map_region(VirtAddr(0x1000), 0x10000).unwrap();
        s
    }

    fn has_bus(access: &Access, kind: BusKind) -> bool {
        access.events.iter().any(|e| matches!(e, MemEvent::BusTxn { kind: k, .. } if *k == kind))
    }

    #[test]
    fn store_is_invisible_until_drained() {
        let mut s = sys(2);
        s.write(C0, VirtAddr(0x1000), 4, 42).unwrap();
        // Core 1 still sees the old value: the store is buffered.
        assert_eq!(s.read(C1, VirtAddr(0x1000), 4).unwrap().value, 0);
        // Core 0 forwards from its own buffer.
        let a = s.read(C0, VirtAddr(0x1000), 4).unwrap();
        assert_eq!(a.value, 42);
        // After draining, everyone sees it.
        s.drain_all(C0).unwrap();
        assert_eq!(s.read(C1, VirtAddr(0x1000), 4).unwrap().value, 42);
    }

    #[test]
    fn drain_emits_bus_rdx_and_local_write() {
        let mut s = sys(2);
        s.write(C0, VirtAddr(0x1000), 4, 1).unwrap();
        let a = s.drain_all(C0).unwrap();
        assert!(has_bus(&a, BusKind::BusRdX));
        assert!(a
            .events
            .iter()
            .any(|e| matches!(e, MemEvent::LocalWrite { core, .. } if *core == C0)));
    }

    #[test]
    fn read_read_sharing_then_upgrade() {
        let mut s = sys(2);
        // Both cores read the same line -> Shared everywhere.
        s.read(C0, VirtAddr(0x1000), 4).unwrap();
        s.read(C1, VirtAddr(0x1000), 4).unwrap();
        // Now core 0 writes: drain must produce an upgrade, not a miss.
        s.write(C0, VirtAddr(0x1000), 4, 5).unwrap();
        let a = s.drain_all(C0).unwrap();
        assert!(has_bus(&a, BusKind::BusUpgr), "events: {:?}", a.events);
        assert_eq!(s.stats().cores[0].upgrades, 1);
        // Core 1's copy was invalidated: its next read misses again.
        let before = s.stats().cores[1].load_misses;
        s.read(C1, VirtAddr(0x1000), 4).unwrap();
        assert_eq!(s.stats().cores[1].load_misses, before + 1);
    }

    #[test]
    fn exclusive_then_silent_write_hit() {
        let mut s = sys(2);
        s.read(C0, VirtAddr(0x1000), 4).unwrap(); // E (no other sharer)
        s.write(C0, VirtAddr(0x1000), 4, 9).unwrap();
        let a = s.drain_all(C0).unwrap();
        // E->M is silent: no bus transaction beyond the original miss.
        assert!(!has_bus(&a, BusKind::BusRdX));
        assert!(!has_bus(&a, BusKind::BusUpgr));
    }

    #[test]
    fn atomic_rmw_returns_old_value_and_is_fully_ordered() {
        let mut s = sys(2);
        s.write(C0, VirtAddr(0x1000), 4, 10).unwrap();
        // Atomic on the same core: pending store must drain first.
        let a = s.atomic_rmw(C0, VirtAddr(0x1000), |v| v + 5).unwrap();
        assert_eq!(a.value, 10);
        assert_eq!(s.read(C1, VirtAddr(0x1000), 4).unwrap().value, 15);
        assert_eq!(s.pending_stores(C0), 0);
        // Atomic emits both halves for the recorder.
        assert!(a.events.iter().any(|e| matches!(e, MemEvent::LocalRead { .. })));
        assert!(a.events.iter().any(|e| matches!(e, MemEvent::LocalWrite { .. })));
    }

    #[test]
    fn store_buffer_overflow_forces_drain() {
        let mut s = sys(1);
        let cap = s.config().store_buffer_entries;
        for i in 0..cap as u32 + 1 {
            s.write(C0, VirtAddr(0x1000 + i * 4), 4, i).unwrap();
        }
        assert_eq!(s.pending_stores(C0), cap);
        assert_eq!(s.stats().cores[0].drains, 1);
    }

    #[test]
    fn partial_overlap_load_drains_buffer() {
        let mut s = sys(1);
        s.write(C0, VirtAddr(0x1000), 1, 0xaa).unwrap();
        let a = s.read(C0, VirtAddr(0x1000), 4).unwrap();
        // The byte store drained, so the word load sees it in memory.
        assert_eq!(a.value, 0xaa);
        assert_eq!(s.pending_stores(C0), 0);
    }

    #[test]
    fn misaligned_accesses_fault() {
        let mut s = sys(1);
        assert!(s.read(C0, VirtAddr(0x1001), 4).is_err());
        assert!(s.write(C0, VirtAddr(0x1002), 4, 0).is_err());
        assert!(s.atomic_rmw(C0, VirtAddr(0x1002), |v| v).is_err());
        assert!(s.read(C0, VirtAddr(0x1001), 2).is_err());
        assert!(s.read(C0, VirtAddr(0x1001), 1).is_ok(), "bytes are always aligned");
    }

    #[test]
    fn unmapped_store_faults_at_issue() {
        let mut s = sys(1);
        assert!(s.write(C0, VirtAddr(0x9000_0000), 4, 1).is_err());
        assert_eq!(s.pending_stores(C0), 0, "nothing buffered");
    }

    #[test]
    fn eviction_of_dirty_line_writes_back() {
        let cfg = MemConfig { l1_sets: 1, l1_ways: 1, ..MemConfig::default() };
        let mut s = MemorySystem::new(cfg, 1).unwrap();
        s.map_region(VirtAddr(0x1000), 0x10000).unwrap();
        s.write(C0, VirtAddr(0x1000), 4, 1).unwrap();
        s.drain_all(C0).unwrap(); // line 0x40 dirty in the 1-entry cache
        let a = s.read(C0, VirtAddr(0x1040), 4).unwrap(); // displaces it
        assert!(has_bus(&a, BusKind::Writeback), "events: {:?}", a.events);
        assert!(a
            .events
            .iter()
            .any(|e| matches!(e, MemEvent::Eviction { dirty: true, .. })));
        assert_eq!(s.stats().cores[0].writebacks, 1);
    }

    #[test]
    fn remote_dirty_read_costs_intervention() {
        let mut s = sys(2);
        s.write(C0, VirtAddr(0x1000), 4, 7).unwrap();
        s.drain_all(C0).unwrap(); // C0 holds the line Modified
        let a = s.read(C1, VirtAddr(0x1000), 4).unwrap();
        assert_eq!(a.value, 7);
        assert!(a.cycles >= s.config().miss_penalty + s.config().intervention_penalty);
        assert_eq!(s.stats().cores[0].interventions, 1);
    }

    #[test]
    fn kernel_write_invalidates_all_copies_and_snoops() {
        let mut s = sys(2);
        s.read(C0, VirtAddr(0x1000), 4).unwrap();
        s.read(C1, VirtAddr(0x1000), 4).unwrap();
        let a = s.kernel_write_bytes(C0, VirtAddr(0x1000), &[1, 2, 3, 4, 5]).unwrap();
        assert!(has_bus(&a, BusKind::BusRdX));
        // Both caches lost the line: both next reads miss.
        let (m0, m1) = (s.stats().cores[0].load_misses, s.stats().cores[1].load_misses);
        s.read(C0, VirtAddr(0x1000), 4).unwrap();
        s.read(C1, VirtAddr(0x1000), 4).unwrap();
        assert_eq!(s.stats().cores[0].load_misses, m0 + 1);
        assert_eq!(s.stats().cores[1].load_misses, m1 + 1);
        // Data landed.
        assert_eq!(s.memory().read_uint(VirtAddr(0x1000), 4).unwrap(), 0x0403_0201);
    }

    #[test]
    fn kernel_read_sees_pending_local_stores() {
        let mut s = sys(1);
        s.write(C0, VirtAddr(0x1000), 4, 0x6162_6364).unwrap();
        let (buf, _) = s.kernel_read_bytes(C0, VirtAddr(0x1000), 4).unwrap();
        assert_eq!(buf, vec![0x64, 0x63, 0x62, 0x61]);
    }

    #[test]
    fn lines_touched_spans_boundaries() {
        let lines: Vec<_> = lines_touched(VirtAddr(0x103c), 8).collect();
        assert_eq!(lines, vec![LineAddr(0x40), LineAddr(0x41)]);
        let one: Vec<_> = lines_touched(VirtAddr(0x1000), 4).collect();
        assert_eq!(one, vec![LineAddr(0x40)]);
        let zero: Vec<_> = lines_touched(VirtAddr(0x1000), 0).collect();
        assert_eq!(zero, vec![LineAddr(0x40)], "zero-length still names its line");
    }

    #[test]
    fn global_clock_orders_bus_traffic() {
        let mut s = sys(2);
        let t0 = s.now();
        s.read(C0, VirtAddr(0x1000), 4).unwrap(); // miss -> 1 bus txn
        let t1 = s.now();
        assert!(t1 > t0);
        s.read(C0, VirtAddr(0x1000), 4).unwrap(); // hit -> no bus txn
        assert_eq!(s.now(), t1);
    }

    #[test]
    fn zero_cores_rejected() {
        assert!(MemorySystem::new(MemConfig::default(), 0).is_err());
    }

    #[test]
    fn state_snapshot_round_trips_and_resumes_identically() {
        let mut s = sys(2);
        s.write(C0, VirtAddr(0x1000), 4, 42).unwrap();
        s.read(C1, VirtAddr(0x1040), 4).unwrap();
        s.write(C1, VirtAddr(0x1080), 2, 7).unwrap();
        let mut snap = Vec::new();
        s.save_state(&mut snap);

        let mut restored = MemorySystem::new(MemConfig::default(), 2).unwrap();
        let mut r = qr_common::cursor::ByteReader::new(&snap, "snapshot");
        restored.restore_state(&mut r).unwrap();
        r.finish().unwrap();

        // Same pending stores, same clock, same counters.
        assert_eq!(restored.pending_stores(C0), s.pending_stores(C0));
        assert_eq!(restored.pending_stores(C1), s.pending_stores(C1));
        assert_eq!(restored.now(), s.now());
        assert_eq!(restored.stats(), s.stats());
        // Divergent futures stay identical: run the same accesses on both.
        for m in [&mut s, &mut restored] {
            m.drain_all(C0).unwrap();
            m.read(C1, VirtAddr(0x1000), 4).unwrap();
        }
        assert_eq!(restored.stats(), s.stats());
        assert_eq!(restored.now(), s.now());
        let mut snap2a = Vec::new();
        let mut snap2b = Vec::new();
        s.save_state(&mut snap2a);
        restored.save_state(&mut snap2b);
        assert_eq!(snap2a, snap2b, "snapshots of equal states are byte-identical");
    }

    #[test]
    fn truncated_snapshot_is_a_structured_error() {
        let mut s = sys(1);
        s.write(C0, VirtAddr(0x1000), 4, 1).unwrap();
        let mut snap = Vec::new();
        s.save_state(&mut snap);
        for cut in [0, 1, snap.len() / 2, snap.len() - 1] {
            let mut fresh = MemorySystem::new(MemConfig::default(), 1).unwrap();
            let mut r = qr_common::cursor::ByteReader::new(&snap[..cut], "snapshot");
            let outcome = fresh.restore_state(&mut r).and_then(|()| r.finish());
            assert!(outcome.is_err(), "cut at {cut} must fail");
        }
    }
}
