//! Per-core TSO store buffer.
//!
//! Stores retire into a FIFO buffer and become globally visible only when
//! they *drain*. Loads forward from the newest matching pending store.
//! This is the mechanism behind the paper's reordered-store-window (RSW)
//! discussion: a chunk may terminate while stores are still pending, and
//! the recorder must either log how many (`TsoMode::Rsw`) or force a
//! drain first (`TsoMode::DrainAtChunk`).

use qr_common::VirtAddr;
use std::collections::VecDeque;

/// One pending store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingStore {
    /// Target address (width-aligned).
    pub addr: VirtAddr,
    /// Access width in bytes (1, 2 or 4).
    pub width: u32,
    /// Value (low `width` bytes significant).
    pub value: u32,
}

impl PendingStore {
    fn covers(&self, addr: VirtAddr, width: u32) -> bool {
        self.addr == addr && self.width >= width && width != 0
    }

    fn overlaps(&self, addr: VirtAddr, width: u32) -> bool {
        let a0 = self.addr.0 as u64;
        let a1 = a0 + self.width as u64;
        let b0 = addr.0 as u64;
        let b1 = b0 + width as u64;
        a0 < b1 && b0 < a1
    }
}

/// What a load found in the store buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardResult {
    /// No pending store overlaps the load.
    NoMatch,
    /// The newest overlapping store fully covers the load; forward this
    /// value (already truncated to the load width).
    Forward(u32),
    /// An overlapping store only partially covers the load; the buffer
    /// must drain before the load can complete (as on IA hardware).
    PartialOverlap,
}

/// FIFO store buffer with load forwarding.
#[derive(Debug, Clone, Default)]
pub struct StoreBuffer {
    entries: VecDeque<PendingStore>,
    capacity: usize,
}

impl StoreBuffer {
    /// Creates a buffer with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (validated upstream by `MemConfig`).
    pub fn new(capacity: usize) -> StoreBuffer {
        assert!(capacity > 0, "store buffer capacity must be nonzero");
        StoreBuffer { entries: VecDeque::with_capacity(capacity), capacity }
    }

    /// Number of pending stores (the RSW value at a chunk boundary).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether a new store would exceed capacity.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Enqueues a store.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full; the memory system drains before
    /// pushing when at capacity.
    pub fn push(&mut self, store: PendingStore) {
        assert!(!self.is_full(), "store buffer overflow — drain first");
        self.entries.push_back(store);
    }

    /// Dequeues the oldest store, if any (TSO drains in program order).
    pub fn pop_oldest(&mut self) -> Option<PendingStore> {
        self.entries.pop_front()
    }

    /// Checks whether a load of `width` bytes at `addr` can forward.
    pub fn forward(&self, addr: VirtAddr, width: u32) -> ForwardResult {
        // Newest first: the youngest matching store wins.
        for store in self.entries.iter().rev() {
            if store.covers(addr, width) {
                let mask = match width {
                    1 => 0xff,
                    2 => 0xffff,
                    _ => u32::MAX,
                };
                return ForwardResult::Forward(store.value & mask);
            }
            if store.overlaps(addr, width) {
                return ForwardResult::PartialOverlap;
            }
        }
        ForwardResult::NoMatch
    }

    /// Iterates over pending stores oldest-first (used by drains).
    pub fn iter(&self) -> impl Iterator<Item = &PendingStore> {
        self.entries.iter()
    }

    /// Serializes the pending stores oldest-first (checkpoint snapshots).
    pub(crate) fn save_state(&self, out: &mut Vec<u8>) {
        qr_common::varint::write_u64(out, self.entries.len() as u64);
        for store in &self.entries {
            out.extend_from_slice(&store.addr.0.to_le_bytes());
            out.push(store.width as u8);
            out.extend_from_slice(&store.value.to_le_bytes());
        }
    }

    /// Inverse of [`StoreBuffer::save_state`] for a buffer of the given
    /// capacity.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Corrupt`] on truncated or implausible bytes.
    pub(crate) fn load_state(
        r: &mut qr_common::cursor::ByteReader<'_>,
        capacity: usize,
    ) -> qr_common::Result<StoreBuffer> {
        let mut sb = StoreBuffer::new(capacity);
        let len = r.count(capacity as u64)?;
        for _ in 0..len {
            let addr = VirtAddr(r.u32()?);
            let width = r.u8()? as u32;
            let value = r.u32()?;
            sb.entries.push_back(PendingStore { addr, width, value });
        }
        Ok(sb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st(addr: u32, width: u32, value: u32) -> PendingStore {
        PendingStore { addr: VirtAddr(addr), width, value }
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut sb = StoreBuffer::new(4);
        sb.push(st(0, 4, 1));
        sb.push(st(4, 4, 2));
        assert_eq!(sb.pop_oldest().unwrap().value, 1);
        assert_eq!(sb.pop_oldest().unwrap().value, 2);
        assert!(sb.pop_oldest().is_none());
    }

    #[test]
    fn newest_matching_store_forwards() {
        let mut sb = StoreBuffer::new(4);
        sb.push(st(0x100, 4, 1));
        sb.push(st(0x100, 4, 2));
        assert_eq!(sb.forward(VirtAddr(0x100), 4), ForwardResult::Forward(2));
    }

    #[test]
    fn narrower_load_forwards_truncated() {
        let mut sb = StoreBuffer::new(4);
        sb.push(st(0x100, 4, 0xaabb_ccdd));
        assert_eq!(sb.forward(VirtAddr(0x100), 1), ForwardResult::Forward(0xdd));
        assert_eq!(sb.forward(VirtAddr(0x100), 2), ForwardResult::Forward(0xccdd));
    }

    #[test]
    fn partial_overlap_forces_drain() {
        let mut sb = StoreBuffer::new(4);
        sb.push(st(0x100, 1, 0xee)); // byte store
        assert_eq!(sb.forward(VirtAddr(0x100), 4), ForwardResult::PartialOverlap);
        // Word load at a different offset overlapping the byte.
        sb.push(st(0x204, 4, 7));
        assert_eq!(sb.forward(VirtAddr(0x206), 2), ForwardResult::PartialOverlap);
    }

    #[test]
    fn disjoint_stores_do_not_forward() {
        let mut sb = StoreBuffer::new(4);
        sb.push(st(0x100, 4, 1));
        assert_eq!(sb.forward(VirtAddr(0x104), 4), ForwardResult::NoMatch);
        assert_eq!(sb.forward(VirtAddr(0x0fc), 4), ForwardResult::NoMatch);
    }

    #[test]
    fn younger_nonoverlapping_store_does_not_hide_older_match() {
        let mut sb = StoreBuffer::new(4);
        sb.push(st(0x100, 4, 1));
        sb.push(st(0x200, 4, 2));
        assert_eq!(sb.forward(VirtAddr(0x100), 4), ForwardResult::Forward(1));
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn push_past_capacity_panics() {
        let mut sb = StoreBuffer::new(1);
        sb.push(st(0, 4, 1));
        sb.push(st(4, 4, 2));
    }

    #[test]
    fn len_tracks_rsw() {
        let mut sb = StoreBuffer::new(8);
        assert!(sb.is_empty());
        sb.push(st(0, 4, 1));
        sb.push(st(8, 4, 1));
        assert_eq!(sb.len(), 2);
        sb.pop_oldest();
        assert_eq!(sb.len(), 1);
    }
}
