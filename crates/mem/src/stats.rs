//! Memory-system counters.
//!
//! All counters are per-core where that makes sense; experiment harnesses
//! aggregate them. Counters are plain data with public fields (a passive
//! record in the C-struct spirit).

/// Counters for one core's memory activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreMemStats {
    /// Loads executed (including forwarded ones).
    pub loads: u64,
    /// Loads satisfied by store-buffer forwarding.
    pub load_forwards: u64,
    /// Stores issued into the store buffer.
    pub stores: u64,
    /// Stores drained to the cache.
    pub drains: u64,
    /// Load misses.
    pub load_misses: u64,
    /// Store (drain) misses.
    pub store_misses: u64,
    /// Shared→Modified upgrades.
    pub upgrades: u64,
    /// Lines evicted.
    pub evictions: u64,
    /// Dirty evictions (writebacks).
    pub writebacks: u64,
    /// Atomic read-modify-writes executed.
    pub atomics: u64,
    /// Times this core supplied dirty data to a remote request.
    pub interventions: u64,
    /// Full store-buffer drains forced by fences/atomics/partial overlaps.
    pub forced_drains: u64,
}

/// Counters for the whole memory system.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Per-core counters, indexed by core id.
    pub cores: Vec<CoreMemStats>,
    /// Total bus transactions by kind: `[BusRd, BusRdX, BusUpgr, Writeback]`.
    pub bus_txns: [u64; 4],
}

impl MemStats {
    /// Creates zeroed counters for `num_cores` cores.
    pub fn new(num_cores: usize) -> MemStats {
        MemStats { cores: vec![CoreMemStats::default(); num_cores], bus_txns: [0; 4] }
    }

    /// Total bus transactions of all kinds.
    pub fn total_bus_txns(&self) -> u64 {
        self.bus_txns.iter().sum()
    }

    /// Sums a per-core field across cores.
    pub fn total(&self, f: impl Fn(&CoreMemStats) -> u64) -> u64 {
        self.cores.iter().map(f).sum()
    }

    pub(crate) fn bus_slot(kind: crate::bus::BusKind) -> usize {
        match kind {
            crate::bus::BusKind::BusRd => 0,
            crate::bus::BusKind::BusRdX => 1,
            crate::bus::BusKind::BusUpgr => 2,
            crate::bus::BusKind::Writeback => 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::BusKind;

    #[test]
    fn totals_aggregate_cores() {
        let mut s = MemStats::new(2);
        s.cores[0].loads = 3;
        s.cores[1].loads = 4;
        assert_eq!(s.total(|c| c.loads), 7);
    }

    #[test]
    fn bus_slots_are_distinct() {
        let slots = [
            MemStats::bus_slot(BusKind::BusRd),
            MemStats::bus_slot(BusKind::BusRdX),
            MemStats::bus_slot(BusKind::BusUpgr),
            MemStats::bus_slot(BusKind::Writeback),
        ];
        let mut sorted = slots.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }
}
