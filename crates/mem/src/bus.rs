//! The snoopy bus: transaction kinds and the global timestamp.
//!
//! QuickRec orders recorded chunks with a timestamp taken from a global
//! time base that all cores observe consistently. In the simulator that
//! time base is [`GlobalClock`]: a strictly monotonic counter advanced by
//! every bus transaction and by every chunk termination, so the resulting
//! chunk order is a total order consistent with cross-core dependencies.

use qr_common::Cycle;

/// Kind of a snoopy-bus transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BusKind {
    /// Read miss: requester wants the line Shared.
    BusRd,
    /// Write miss: requester wants the line Modified (read-for-ownership).
    BusRdX,
    /// Upgrade: requester holds the line Shared and wants Modified.
    BusUpgr,
    /// Writeback of a dirty line being evicted.
    Writeback,
}

impl BusKind {
    /// Whether remote copies must be invalidated.
    pub fn invalidates(self) -> bool {
        matches!(self, BusKind::BusRdX | BusKind::BusUpgr)
    }

    /// Whether this transaction reads data (checks remote write sets).
    pub fn is_read(self) -> bool {
        matches!(self, BusKind::BusRd)
    }

    /// Whether this transaction writes data (checks remote read *and*
    /// write sets).
    pub fn is_write(self) -> bool {
        matches!(self, BusKind::BusRdX | BusKind::BusUpgr)
    }
}

/// Strictly monotonic global time base.
///
/// Every call to [`GlobalClock::tick`] returns a fresh, strictly greater
/// value, so two events stamped by the clock are always totally ordered.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GlobalClock {
    now: u64,
}

impl GlobalClock {
    /// Creates a clock at time zero.
    pub fn new() -> GlobalClock {
        GlobalClock::default()
    }

    /// Advances the clock and returns the new, unique timestamp.
    pub fn tick(&mut self) -> Cycle {
        self.now += 1;
        Cycle(self.now)
    }

    /// Advances the clock by `n` without producing a timestamp (models
    /// bus occupancy).
    pub fn advance(&mut self, n: u64) {
        self.now += n;
    }

    /// Current time (the timestamp of the most recent event).
    pub fn now(&self) -> Cycle {
        Cycle(self.now)
    }

    /// Reconstructs a clock at an absolute time (checkpoint restore).
    pub(crate) fn restore(now: u64) -> GlobalClock {
        GlobalClock { now }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_strictly_increasing() {
        let mut c = GlobalClock::new();
        let a = c.tick();
        let b = c.tick();
        assert!(b > a);
        c.advance(10);
        let d = c.tick();
        assert!(d > b + 9);
    }

    #[test]
    fn kind_classification() {
        assert!(BusKind::BusRdX.invalidates());
        assert!(BusKind::BusUpgr.invalidates());
        assert!(!BusKind::BusRd.invalidates());
        assert!(!BusKind::Writeback.invalidates());
        assert!(BusKind::BusRd.is_read());
        assert!(!BusKind::BusRd.is_write());
        assert!(BusKind::BusRdX.is_write());
        assert!(BusKind::BusUpgr.is_write());
        assert!(!BusKind::Writeback.is_read());
        assert!(!BusKind::Writeback.is_write());
    }

    #[test]
    fn now_reflects_last_tick() {
        let mut c = GlobalClock::new();
        assert_eq!(c.now(), Cycle(0));
        let t = c.tick();
        assert_eq!(c.now(), t);
    }
}
