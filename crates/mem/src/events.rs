//! Memory events consumed by the recording hardware model.
//!
//! The `MemorySystem` returns a small batch of [`MemEvent`]s with every
//! access. The record-session orchestrator forwards them to the per-core
//! memory-race-recorder units in `quickrec-core`: local reads/writes grow
//! the current chunk's read/write signatures, remote bus transactions are
//! checked against them (conflict → chunk termination), and evictions are
//! counted for statistics.

use crate::bus::BusKind;
use qr_common::{CoreId, LineAddr, VirtAddr};

/// One observable memory-system event.
///
/// The recorder consumes line-granular information only; the exact
/// address/width/atomicity fields exist for replay-time analyses (the
/// race detector in `qr-replay`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemEvent {
    /// `core` architecturally read from `line` (load commit, including
    /// store-buffer forwards and the read half of atomics).
    LocalRead {
        /// The reading core.
        core: CoreId,
        /// The line read.
        line: LineAddr,
        /// Exact byte address.
        addr: VirtAddr,
        /// Access width in bytes.
        width: u8,
        /// Whether this is the read half of an atomic RMW.
        atomic: bool,
    },
    /// `core` made a store to `line` globally visible (store-buffer drain
    /// or the write half of an atomic).
    LocalWrite {
        /// The writing core.
        core: CoreId,
        /// The line written.
        line: LineAddr,
        /// Exact byte address.
        addr: VirtAddr,
        /// Access width in bytes.
        width: u8,
        /// Whether this is the write half of an atomic RMW.
        atomic: bool,
    },
    /// A bus transaction initiated by `from`, observed by every other
    /// core's snoop logic (and thus by every other recorder unit).
    BusTxn {
        /// The initiating core.
        from: CoreId,
        /// The line concerned.
        line: LineAddr,
        /// Transaction kind.
        kind: BusKind,
    },
    /// `core` evicted `line` from its L1.
    Eviction {
        /// The evicting core.
        core: CoreId,
        /// The displaced line.
        line: LineAddr,
        /// Whether a writeback was generated.
        dirty: bool,
    },
}

impl MemEvent {
    /// The core this event originates from.
    pub fn origin(&self) -> CoreId {
        match *self {
            MemEvent::LocalRead { core, .. }
            | MemEvent::LocalWrite { core, .. }
            | MemEvent::Eviction { core, .. } => core,
            MemEvent::BusTxn { from, .. } => from,
        }
    }

    /// The cache line concerned.
    pub fn line(&self) -> LineAddr {
        match *self {
            MemEvent::LocalRead { line, .. }
            | MemEvent::LocalWrite { line, .. }
            | MemEvent::Eviction { line, .. }
            | MemEvent::BusTxn { line, .. } => line,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_cover_all_variants() {
        let events = [
            MemEvent::LocalRead { core: CoreId(1), line: LineAddr(7), addr: VirtAddr(7 * 64), width: 4, atomic: false },
            MemEvent::LocalWrite { core: CoreId(2), line: LineAddr(8), addr: VirtAddr(8 * 64), width: 4, atomic: true },
            MemEvent::BusTxn { from: CoreId(3), line: LineAddr(9), kind: BusKind::BusRd },
            MemEvent::Eviction { core: CoreId(0), line: LineAddr(10), dirty: true },
        ];
        assert_eq!(events[0].origin(), CoreId(1));
        assert_eq!(events[1].origin(), CoreId(2));
        assert_eq!(events[2].origin(), CoreId(3));
        assert_eq!(events[3].origin(), CoreId(0));
        assert_eq!(events[2].line(), LineAddr(9));
    }
}
