//! Property test: the full memory hierarchy (caches, store buffers,
//! coherence) is architecturally equivalent to a flat byte array.
//!
//! For a single core, any sequence of loads/stores/atomics/fences/drains
//! must observe exactly the values a plain `Vec<u8>` model produces —
//! the caches and buffers are *performance* machinery and must never
//! change semantics. For multiple cores, each core's loads must agree
//! with the flat model as long as only that core writes the accessed
//! location (cross-core value propagation is covered by the record/replay
//! suites, which check full executions).

use proptest::prelude::*;
use qr_common::{CoreId, VirtAddr};
use qr_mem::{MemConfig, MemorySystem};

const BASE: u32 = 0x1000;
const REGION: u32 = 0x800;

#[derive(Debug, Clone)]
enum MemOp {
    Read { off: u32, width: u32 },
    Write { off: u32, width: u32, value: u32 },
    FetchAdd { off: u32, delta: u32 },
    Cas { off: u32, expected: u32, new: u32 },
    Fence,
    DrainOne,
}

fn aligned(off: u32, width: u32) -> u32 {
    (off % (REGION - 4)) / width * width
}

fn op_strategy() -> impl Strategy<Value = MemOp> {
    prop_oneof![
        4 => (any::<u32>(), prop_oneof![Just(1u32), Just(2), Just(4)])
            .prop_map(|(off, width)| MemOp::Read { off: aligned(off, width), width }),
        4 => (any::<u32>(), prop_oneof![Just(1u32), Just(2), Just(4)], any::<u32>())
            .prop_map(|(off, width, value)| MemOp::Write { off: aligned(off, width), width, value }),
        1 => (any::<u32>(), any::<u32>())
            .prop_map(|(off, delta)| MemOp::FetchAdd { off: aligned(off, 4), delta }),
        1 => (any::<u32>(), any::<u32>(), any::<u32>())
            .prop_map(|(off, expected, new)| MemOp::Cas { off: aligned(off, 4), expected, new }),
        1 => Just(MemOp::Fence),
        2 => Just(MemOp::DrainOne),
    ]
}

/// Flat little-endian reference.
struct Reference {
    bytes: Vec<u8>,
}

impl Reference {
    fn new() -> Reference {
        Reference { bytes: vec![0; REGION as usize] }
    }

    fn read(&self, off: u32, width: u32) -> u32 {
        let mut buf = [0u8; 4];
        buf[..width as usize]
            .copy_from_slice(&self.bytes[off as usize..(off + width) as usize]);
        u32::from_le_bytes(buf)
    }

    fn write(&mut self, off: u32, width: u32, value: u32) {
        let bytes = value.to_le_bytes();
        self.bytes[off as usize..(off + width) as usize]
            .copy_from_slice(&bytes[..width as usize]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn single_core_hierarchy_matches_flat_memory(
        ops in proptest::collection::vec(op_strategy(), 1..200),
        tiny_cache in any::<bool>(),
        sb_entries in 1usize..8,
    ) {
        let cfg = MemConfig {
            l1_sets: if tiny_cache { 2 } else { 128 },
            l1_ways: if tiny_cache { 1 } else { 4 },
            store_buffer_entries: sb_entries,
            ..MemConfig::default()
        };
        let mut sys = MemorySystem::new(cfg, 1).unwrap();
        sys.map_region(VirtAddr(BASE), REGION).unwrap();
        let mut reference = Reference::new();
        let core = CoreId(0);
        for op in &ops {
            match *op {
                MemOp::Read { off, width } => {
                    let got = sys.read(core, VirtAddr(BASE + off), width).unwrap().value;
                    prop_assert_eq!(got, reference.read(off, width), "read at {}+{}", off, width);
                }
                MemOp::Write { off, width, value } => {
                    sys.write(core, VirtAddr(BASE + off), width, value).unwrap();
                    reference.write(off, width, value);
                }
                MemOp::FetchAdd { off, delta } => {
                    let old = sys
                        .atomic_rmw(core, VirtAddr(BASE + off), |v| v.wrapping_add(delta))
                        .unwrap()
                        .value;
                    let ref_old = reference.read(off, 4);
                    prop_assert_eq!(old, ref_old);
                    reference.write(off, 4, ref_old.wrapping_add(delta));
                }
                MemOp::Cas { off, expected, new } => {
                    let old = sys
                        .atomic_rmw(core, VirtAddr(BASE + off), |v| {
                            if v == expected { new } else { v }
                        })
                        .unwrap()
                        .value;
                    let ref_old = reference.read(off, 4);
                    prop_assert_eq!(old, ref_old);
                    if ref_old == expected {
                        reference.write(off, 4, new);
                    }
                }
                MemOp::Fence => {
                    sys.fence(core).unwrap();
                }
                MemOp::DrainOne => {
                    sys.drain_one(core).unwrap();
                }
            }
        }
        // After a final fence the flat memory must match exactly.
        sys.fence(core).unwrap();
        for off in (0..REGION).step_by(4) {
            prop_assert_eq!(
                sys.memory().read_uint(VirtAddr(BASE + off), 4).unwrap(),
                reference.read(off, 4),
                "final memory at {}", off
            );
        }
    }

    #[test]
    fn partitioned_multicore_accesses_match_flat_memory(
        ops_per_core in proptest::collection::vec(
            proptest::collection::vec(op_strategy(), 1..60),
            2..4
        ),
    ) {
        // Each core works in its own sub-region: with no sharing, every
        // core must behave like an independent flat memory.
        let cores = ops_per_core.len();
        let mut sys = MemorySystem::new(MemConfig::default(), cores).unwrap();
        sys.map_region(VirtAddr(BASE), REGION * cores as u32).unwrap();
        let mut references: Vec<Reference> = (0..cores).map(|_| Reference::new()).collect();
        // Interleave round-robin.
        let max_len = ops_per_core.iter().map(Vec::len).max().unwrap_or(0);
        for i in 0..max_len {
            for (c, ops) in ops_per_core.iter().enumerate() {
                let Some(op) = ops.get(i) else { continue };
                let core = CoreId(c as u8);
                let base = BASE + c as u32 * REGION;
                let reference = &mut references[c];
                match *op {
                    MemOp::Read { off, width } => {
                        let got = sys.read(core, VirtAddr(base + off), width).unwrap().value;
                        prop_assert_eq!(got, reference.read(off, width));
                    }
                    MemOp::Write { off, width, value } => {
                        sys.write(core, VirtAddr(base + off), width, value).unwrap();
                        reference.write(off, width, value);
                    }
                    MemOp::FetchAdd { off, delta } => {
                        let old = sys
                            .atomic_rmw(core, VirtAddr(base + off), |v| v.wrapping_add(delta))
                            .unwrap()
                            .value;
                        let ref_old = reference.read(off, 4);
                        prop_assert_eq!(old, ref_old);
                        reference.write(off, 4, ref_old.wrapping_add(delta));
                    }
                    MemOp::Cas { off, expected, new } => {
                        let old = sys
                            .atomic_rmw(core, VirtAddr(base + off), |v| {
                                if v == expected { new } else { v }
                            })
                            .unwrap()
                            .value;
                        let ref_old = reference.read(off, 4);
                        prop_assert_eq!(old, ref_old);
                        if ref_old == expected {
                            reference.write(off, 4, new);
                        }
                    }
                    MemOp::Fence => {
                        sys.fence(core).unwrap();
                    }
                    MemOp::DrainOne => {
                        sys.drain_one(core).unwrap();
                    }
                }
            }
        }
    }
}
