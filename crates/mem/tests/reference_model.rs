//! Randomized test: the full memory hierarchy (caches, store buffers,
//! coherence) is architecturally equivalent to a flat byte array.
//!
//! For a single core, any sequence of loads/stores/atomics/fences/drains
//! must observe exactly the values a plain `Vec<u8>` model produces —
//! the caches and buffers are *performance* machinery and must never
//! change semantics. For multiple cores, each core's loads must agree
//! with the flat model as long as only that core writes the accessed
//! location (cross-core value propagation is covered by the record/replay
//! suites, which check full executions).

use qr_common::{CoreId, SplitMix64, VirtAddr};
use qr_mem::{MemConfig, MemorySystem};

const BASE: u32 = 0x1000;
const REGION: u32 = 0x800;

#[derive(Debug, Clone)]
enum MemOp {
    Read { off: u32, width: u32 },
    Write { off: u32, width: u32, value: u32 },
    FetchAdd { off: u32, delta: u32 },
    Cas { off: u32, expected: u32, new: u32 },
    Fence,
    DrainOne,
}

fn aligned(off: u32, width: u32) -> u32 {
    (off % (REGION - 4)) / width * width
}

fn random_op(rng: &mut SplitMix64) -> MemOp {
    let width = |rng: &mut SplitMix64| [1u32, 2, 4][rng.below(3) as usize];
    // Weighted like the retired proptest strategy: reads/writes dominate.
    match rng.below(13) {
        0..=3 => {
            let w = width(rng);
            MemOp::Read { off: aligned(rng.next_u32(), w), width: w }
        }
        4..=7 => {
            let w = width(rng);
            MemOp::Write { off: aligned(rng.next_u32(), w), width: w, value: rng.next_u32() }
        }
        8 => MemOp::FetchAdd { off: aligned(rng.next_u32(), 4), delta: rng.next_u32() },
        9 => MemOp::Cas {
            off: aligned(rng.next_u32(), 4),
            expected: rng.next_u32(),
            new: rng.next_u32(),
        },
        10 => MemOp::Fence,
        _ => MemOp::DrainOne,
    }
}

/// Flat little-endian reference.
struct Reference {
    bytes: Vec<u8>,
}

impl Reference {
    fn new() -> Reference {
        Reference { bytes: vec![0; REGION as usize] }
    }

    fn read(&self, off: u32, width: u32) -> u32 {
        let mut buf = [0u8; 4];
        buf[..width as usize]
            .copy_from_slice(&self.bytes[off as usize..(off + width) as usize]);
        u32::from_le_bytes(buf)
    }

    fn write(&mut self, off: u32, width: u32, value: u32) {
        let bytes = value.to_le_bytes();
        self.bytes[off as usize..(off + width) as usize]
            .copy_from_slice(&bytes[..width as usize]);
    }
}

/// Applies one op to both the real system and the flat model, checking
/// that every observed value agrees.
fn apply_checked(
    sys: &mut MemorySystem,
    reference: &mut Reference,
    core: CoreId,
    base: u32,
    op: &MemOp,
) {
    match *op {
        MemOp::Read { off, width } => {
            let got = sys.read(core, VirtAddr(base + off), width).unwrap().value;
            assert_eq!(got, reference.read(off, width), "read at {off}+{width}");
        }
        MemOp::Write { off, width, value } => {
            sys.write(core, VirtAddr(base + off), width, value).unwrap();
            reference.write(off, width, value);
        }
        MemOp::FetchAdd { off, delta } => {
            let old = sys
                .atomic_rmw(core, VirtAddr(base + off), |v| v.wrapping_add(delta))
                .unwrap()
                .value;
            let ref_old = reference.read(off, 4);
            assert_eq!(old, ref_old);
            reference.write(off, 4, ref_old.wrapping_add(delta));
        }
        MemOp::Cas { off, expected, new } => {
            let old = sys
                .atomic_rmw(core, VirtAddr(base + off), |v| if v == expected { new } else { v })
                .unwrap()
                .value;
            let ref_old = reference.read(off, 4);
            assert_eq!(old, ref_old);
            if ref_old == expected {
                reference.write(off, 4, new);
            }
        }
        MemOp::Fence => {
            sys.fence(core).unwrap();
        }
        MemOp::DrainOne => {
            sys.drain_one(core).unwrap();
        }
    }
}

#[test]
fn single_core_hierarchy_matches_flat_memory() {
    let mut rng = SplitMix64::new(0x3e3_0001);
    for _ in 0..64 {
        let tiny_cache = rng.chance(1, 2);
        let sb_entries = 1 + rng.below(7) as usize;
        let cfg = MemConfig {
            l1_sets: if tiny_cache { 2 } else { 128 },
            l1_ways: if tiny_cache { 1 } else { 4 },
            store_buffer_entries: sb_entries,
            ..MemConfig::default()
        };
        let mut sys = MemorySystem::new(cfg, 1).unwrap();
        sys.map_region(VirtAddr(BASE), REGION).unwrap();
        let mut reference = Reference::new();
        let core = CoreId(0);
        let n_ops = 1 + rng.below(199) as usize;
        for _ in 0..n_ops {
            let op = random_op(&mut rng);
            apply_checked(&mut sys, &mut reference, core, BASE, &op);
        }
        // After a final fence the flat memory must match exactly.
        sys.fence(core).unwrap();
        for off in (0..REGION).step_by(4) {
            assert_eq!(
                sys.memory().read_uint(VirtAddr(BASE + off), 4).unwrap(),
                reference.read(off, 4),
                "final memory at {off}"
            );
        }
    }
}

#[test]
fn partitioned_multicore_accesses_match_flat_memory() {
    let mut rng = SplitMix64::new(0x3e3_0002);
    for _ in 0..64 {
        // Each core works in its own sub-region: with no sharing, every
        // core must behave like an independent flat memory.
        let cores = 2 + rng.below(2) as usize;
        let ops_per_core: Vec<Vec<MemOp>> = (0..cores)
            .map(|_| {
                let n = 1 + rng.below(59) as usize;
                (0..n).map(|_| random_op(&mut rng)).collect()
            })
            .collect();
        let mut sys = MemorySystem::new(MemConfig::default(), cores).unwrap();
        sys.map_region(VirtAddr(BASE), REGION * cores as u32).unwrap();
        let mut references: Vec<Reference> = (0..cores).map(|_| Reference::new()).collect();
        // Interleave round-robin.
        let max_len = ops_per_core.iter().map(Vec::len).max().unwrap_or(0);
        for i in 0..max_len {
            for (c, ops) in ops_per_core.iter().enumerate() {
                let Some(op) = ops.get(i) else { continue };
                let core = CoreId(c as u8);
                let base = BASE + c as u32 * REGION;
                apply_checked(&mut sys, &mut references[c], core, base, op);
            }
        }
    }
}
