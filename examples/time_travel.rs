//! Time-travel debugging: step a recorded execution event by event and
//! watch shared state evolve — then probe the timeline for the
//! moment a lost update happened.
//!
//! ```text
//! cargo run --release --example time_travel
//! ```

use qr_isa::{abi, Asm, Reg};
use qr_replay::Replayer;
use quickrec::{record, RecordingConfig, ThreadId};

const ITERS: i32 = 200;

/// The lost-update program from `race_debug`, compressed.
fn buggy_program() -> quickrec::Result<quickrec::Program> {
    let mut a = Asm::with_name("lost-update");
    a.data_word("counter", &[0]);
    a.movi_u(Reg::R0, abi::SYS_SPAWN);
    a.movi_sym(Reg::R1, "worker");
    a.movi(Reg::R2, 0);
    a.syscall();
    a.mov(Reg::R6, Reg::R0);
    a.call("incr");
    a.movi_u(Reg::R0, abi::SYS_JOIN);
    a.mov(Reg::R1, Reg::R6);
    a.syscall();
    a.movi_u(Reg::R0, abi::SYS_EXIT);
    a.movi_sym(Reg::R2, "counter");
    a.ld(Reg::R1, Reg::R2, 0);
    a.syscall();
    a.label("worker");
    a.call("incr");
    a.movi_u(Reg::R0, abi::SYS_EXIT);
    a.movi(Reg::R1, 0);
    a.syscall();
    a.label("incr");
    a.movi(Reg::R7, ITERS);
    a.movi_sym(Reg::R8, "counter");
    a.label("again");
    a.ld(Reg::R9, Reg::R8, 0);
    a.addi(Reg::R9, Reg::R9, 1);
    a.st(Reg::R8, 0, Reg::R9);
    a.addi(Reg::R7, Reg::R7, -1);
    a.bnez(Reg::R7, "again");
    a.ret();
    a.finish()
}

fn counter_at(
    program: &quickrec::Program,
    recording: &quickrec::Recording,
    position: usize,
) -> quickrec::Result<u32> {
    let counter = program.symbol("counter").expect("counter symbol");
    let mut replayer = Replayer::new(program, recording)?;
    while replayer.position() < position && replayer.step_timeline()? {}
    let bytes = replayer.inspect_memory(counter, 4)?;
    Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
}

fn main() -> quickrec::Result<()> {
    let program = buggy_program()?;
    let recording = record(program.clone(), RecordingConfig::with_cores(2))?;
    let expected = 2 * ITERS as u32;
    let lost = expected - recording.exit_code;
    println!(
        "recorded run finished with counter = {} ({} of {} increments lost)",
        recording.exit_code, lost, expected
    );

    // Walk the timeline and print the counter after each chunk — the
    // recorded interleaving, replayed event by event.
    let counter = program.symbol("counter").expect("counter symbol");
    let mut replayer = Replayer::new(&program, &recording)?;
    println!("\ntimeline walk (position, next-ts, counter, main-R9, worker-R9):");
    let mut rows = 0;
    while replayer.step_timeline()? {
        if rows < 12 {
            let value = u32::from_le_bytes(
                replayer.inspect_memory(counter, 4)?.try_into().expect("4 bytes"),
            );
            let regs = |tid| {
                replayer
                    .thread_registers(ThreadId(tid))
                    .map(|r| r[9].to_string())
                    .unwrap_or_else(|| "-".to_string())
            };
            println!(
                "  pos {:>3}  next-ts {:>6}  counter {:>4}  r9: {:>4} / {:>4}",
                replayer.position(),
                replayer.next_timestamp().map(|t| t.0).unwrap_or(0),
                value,
                regs(0),
                regs(1),
            );
            rows += 1;
        }
    }

    // Find the first lost update: walk positions and locate the first
    // point where the counter *decreased* across a step — a stale value
    // overwrote a fresher one. Each probe deterministically re-replays
    // the prefix, so the answer is stable across runs.
    let total = Replayer::new(&program, &recording)?.timeline_len();
    let mut prev = 0u32;
    let mut first_loss = None;
    for pos in 1..=total {
        let value = counter_at(&program, &recording, pos)?;
        if value < prev {
            first_loss = Some((pos, prev, value));
            break;
        }
        prev = value;
    }
    println!("\ntimeline has {total} events; probing prefixes by deterministic re-replay:");
    match first_loss {
        Some((pos, before, after)) => println!(
            "first lost update pinpointed at timeline position {pos}: counter {before} -> {after}"
        ),
        None => println!("no lost update found (unlucky interleaving — rerun with more threads)"),
    }
    println!("counter after the first half: {}", counter_at(&program, &recording, total / 2)?);
    println!("counter at the end:           {}", counter_at(&program, &recording, total)?);
    println!("\nevery inspection above replays the same events to the same values ✓");
    Ok(())
}
