//! Writing a guest program in textual PIA assembly, then recording and
//! replaying it — the workflow for bringing your own code to the
//! platform.
//!
//! ```text
//! cargo run --release --example custom_program
//! ```

use qr_isa::disasm;
use quickrec::{record, replay_and_verify, RecordingConfig};

const SOURCE: &str = r#"
; A two-thread producer/consumer over a shared mailbox.
;
; main   : spawns the consumer, produces 5 values into `box`, exits with
;          the consumer's final sum (via join).
; consumer: polls `flag`, consumes each value, acknowledges, sums them.

.data
mailbox: .word 0
.align 64
flag:    .word 0

.text
main:
    movi r0, 3              ; SYS_SPAWN
    movi r1, consumer
    movi r2, 0
    syscall
    mov  r6, r0             ; consumer tid

    movi r7, 5              ; values to produce: 5,4,3,2,1
produce:
    movi r8, mailbox
    st   r8, 0, r7          ; mailbox = value
    fence
    movi r8, flag
    movi r9, 1
    st   r8, 0, r9          ; flag = 1 (value ready)
    fence
wait_ack:
    ld   r9, r8, 0
    bnez r9, wait_ack       ; consumer clears the flag when done
    addi r7, r7, -1
    bnez r7, produce
    ; signal end-of-stream with value 0
    movi r8, mailbox
    movi r9, 0
    st   r8, 0, r9
    movi r8, flag
    movi r9, 1
    st   r8, 0, r9
    fence
    movi r0, 4              ; SYS_JOIN
    mov  r1, r6
    syscall
    mov  r1, r0             ; exit with the consumer's sum
    movi r0, 1              ; SYS_EXIT
    syscall

consumer:
    movi r6, 0              ; sum
    movi r7, flag
    movi r8, mailbox
poll:
    ld   r9, r7, 0
    beqz r9, poll           ; wait for a value
    ld   r10, r8, 0         ; take it
    movi r11, 0
    st   r7, 0, r11         ; ack: flag = 0
    fence
    beqz r10, finish        ; 0 terminates the stream
    add  r6, r6, r10
    jmp  poll
finish:
    movi r0, 1              ; SYS_EXIT
    mov  r1, r6
    syscall
"#;

fn main() -> quickrec::Result<()> {
    let program = qr_isa::text::assemble("mailbox", SOURCE)?;
    println!("assembled {} instructions; first few:", program.code().len());
    for (i, instr) in program.code().iter().take(5).enumerate() {
        println!("  {}  {}", program.addr_of(i), disasm::instr_to_string(instr));
    }

    let recording = record(program.clone(), RecordingConfig::with_cores(2))?;
    println!("\nrecorded: exit={}, {} chunks, {} input events", recording.exit_code, recording.chunks.len(), recording.inputs.events().len());
    assert_eq!(recording.exit_code, 5 + 4 + 3 + 2 + 1, "the consumer summed the stream");

    let outcome = replay_and_verify(&program, &recording)?;
    println!("replayed: exit={} fingerprint={:016x} — exact ✓", outcome.exit_code, outcome.fingerprint);

    // The flag ping-pong is pure cross-thread dependency traffic: nearly
    // every chunk ends in a conflict.
    let conflicts = recording.recorder_stats.conflict_chunks();
    println!(
        "\n{} of {} chunks ended in cross-thread conflicts — the recorded\n\
         dependence chain of the mailbox protocol",
        conflicts,
        recording.chunks.len()
    );
    Ok(())
}
