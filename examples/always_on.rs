//! "Always-on" feasibility check across the whole workload suite — the
//! paper's bottom line: hardware recording is nearly free, the software
//! stack costs ~13%, and that gap is what must shrink for always-on use.
//!
//! For every workload this runs the native baseline, a hardware-only
//! recording, and a full-stack recording, and prints the overhead table.
//!
//! ```text
//! cargo run --release --example always_on
//! ```

use quickrec::{record, RecordingConfig, RecordingMode};

fn main() -> quickrec::Result<()> {
    let scale = quickrec::workloads::Scale::Reference;
    let threads = 4;
    println!("{:<10} {:>12} {:>9} {:>9} {:>11}", "workload", "native cyc", "hw-only", "full", "log B/KI");
    println!("{}", "-".repeat(56));
    let mut overheads = Vec::new();
    for spec in quickrec::workloads::suite() {
        let program = (spec.build)(threads, scale)?;
        let native = quickrec::run_baseline(program.clone(), threads)?;
        let hw = record(
            program.clone(),
            RecordingConfig { mode: RecordingMode::HardwareOnly, ..RecordingConfig::with_cores(threads) },
        )?;
        let full = record(program, RecordingConfig::with_cores(threads))?;
        assert_eq!(native.exit_code, full.exit_code, "{}: recording changed the result", spec.name);
        let hw_pct = 100.0 * (hw.cycles as f64 / native.cycles as f64 - 1.0);
        let full_pct = 100.0 * (full.cycles as f64 / native.cycles as f64 - 1.0);
        overheads.push(full_pct);
        println!(
            "{:<10} {:>12} {:>8.2}% {:>8.2}% {:>11.2}",
            spec.name,
            native.cycles,
            hw_pct,
            full_pct,
            full.log_bytes_per_kilo_instruction(quickrec::Encoding::Delta),
        );
    }
    let mean = overheads.iter().sum::<f64>() / overheads.len() as f64;
    println!("{}", "-".repeat(56));
    println!("mean full-stack recording overhead: {mean:.1}%");
    println!("(the paper reports ~13% — the software stack, not the hardware, is the cost)");
    Ok(())
}
