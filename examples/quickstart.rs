//! Quickstart: record a multithreaded workload, inspect the logs, and
//! replay it deterministically.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use quickrec::{record, replay_and_verify, Encoding, RecordingConfig};

fn main() -> quickrec::Result<()> {
    // 1. Pick a workload from the SPLASH-2-style suite and build it for
    //    four threads.
    let spec = quickrec::workloads::find("radix").expect("radix is in the suite");
    let scale = quickrec::workloads::Scale::Small;
    let program = (spec.build)(4, scale)?;
    println!("workload : {} ({})", spec.name, spec.description);
    println!("program  : {} instructions of code", program.code().len());

    // 2. Record it on a 4-core machine with the full Capo3-style stack.
    let recording = record(program.clone(), RecordingConfig::with_cores(4))?;
    println!("\n--- recording ---");
    println!("instructions : {}", recording.instructions);
    println!("cycles       : {}", recording.cycles);
    println!("exit code    : {:#010x}", recording.exit_code);
    assert_eq!(recording.exit_code, (spec.expected)(4, scale), "self-validation");
    println!("chunks       : {}", recording.chunks.len());
    println!(
        "mean chunk   : {:.0} instructions",
        recording.recorder_stats.mean_chunk_size()
    );
    println!(
        "memory log   : {} bytes ({:.2} B/kilo-instruction)",
        recording.chunks.to_bytes(Encoding::Delta).len(),
        recording.log_bytes_per_kilo_instruction(Encoding::Delta)
    );
    println!("input log    : {} bytes", recording.inputs.byte_size());
    println!(
        "overhead     : {} software cycles ({:.1}% of the run)",
        recording.overhead.software_total(),
        100.0 * recording.overhead.software_total() as f64 / recording.cycles as f64
    );

    // 3. Replay: same memory values, same console, same exit code —
    //    verified against the recording's fingerprint.
    let outcome = replay_and_verify(&program, &recording)?;
    println!("\n--- replay ---");
    println!("chunks replayed : {}", outcome.chunks_replayed);
    println!("inputs injected : {}", outcome.inputs_injected);
    println!("fingerprint     : {:016x} (matches)", outcome.fingerprint);
    println!("\ndeterministic replay verified ✓");
    Ok(())
}
