//! Analyzing recording logs: chunk-size distributions, termination
//! reasons, and the packet-encoding trade-off — the analyses behind the
//! paper's log-characterization figures.
//!
//! ```text
//! cargo run --release --example log_analysis [workload]
//! ```

use quickrec::{record, Encoding, RecordingConfig, TerminationReason};

fn main() -> quickrec::Result<()> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "ocean".to_string());
    let spec = quickrec::workloads::find(&name)
        .unwrap_or_else(|| panic!("unknown workload `{name}`; try one of: fft lu radix ocean barnes water fmm raytrace radiosity"));
    let scale = quickrec::workloads::Scale::Small;
    let program = (spec.build)(4, scale)?;
    let recording = record(program, RecordingConfig::with_cores(4))?;

    println!("workload {name}: {} instructions, {} chunks\n", recording.instructions, recording.chunks.len());

    // Chunk-size distribution.
    println!("chunk-size distribution (instructions):");
    for p in [10, 25, 50, 75, 90, 99, 100] {
        println!("  p{p:<3} {:>8}", recording.chunks.chunk_size_percentile(p));
    }
    println!("  mean {:>8.1}", recording.recorder_stats.mean_chunk_size());

    // Termination-reason breakdown.
    println!("\nwhy chunks ended:");
    let total = recording.chunks.len() as f64;
    for reason in TerminationReason::ALL {
        let count = recording.recorder_stats.chunks_by_reason[reason.code() as usize];
        if count > 0 {
            println!("  {:<8} {:>6}  ({:>5.1}%)", reason.label(), count, 100.0 * count as f64 / total);
        }
    }

    // Encoding comparison.
    println!("\nmemory-log size by encoding:");
    for encoding in Encoding::ALL {
        let bytes = recording.chunks.to_bytes(encoding).len();
        println!(
            "  {:<7} {:>8} bytes  ({:.3} B/kilo-instruction)",
            encoding.name(),
            bytes,
            recording.log_bytes_per_kilo_instruction(encoding)
        );
    }

    // Per-thread view.
    println!("\nper-thread chunks:");
    for (tid, chunks) in recording.chunks.per_thread() {
        let instrs: u64 = chunks.iter().map(|c| c.icount).sum();
        println!("  {tid}: {:>5} chunks, {:>8} instructions", chunks.len(), instrs);
    }

    // Round-trip the serialized log to prove it is self-contained.
    let bytes = recording.chunks.to_bytes(Encoding::Delta);
    let decoded = quickrec::ChunkLog::from_bytes(&bytes)?;
    assert_eq!(&decoded, &recording.chunks);
    println!("\nserialized log round-trips ({} bytes) ✓", bytes.len());
    Ok(())
}
