//! Debugging a data race with record and replay — the paper's motivating
//! use case.
//!
//! The guest program has a classic atomicity bug: two threads increment
//! a shared counter with plain load/add/store instead of an atomic, so
//! increments are lost nondeterministically. Natively the failure
//! depends on the interleaving; once *recorded*, the buggy execution
//! replays identically every time, and the chunk log shows exactly how
//! the threads interleaved around the racy line.
//!
//! ```text
//! cargo run --release --example race_debug
//! ```

use qr_isa::{abi, Asm, Reg};
use quickrec::{record, replay, RecordingConfig, TerminationReason};

const ITERS: i32 = 400;

/// Two threads, each incrementing `counter` ITERS times WITHOUT a lock.
fn buggy_program() -> quickrec::Result<quickrec::Program> {
    let mut a = Asm::with_name("lost-update");
    a.data_word("counter", &[0]);
    // main: spawn the second thread, run the same loop, join, exit with
    // the final counter value.
    a.movi_u(Reg::R0, abi::SYS_SPAWN);
    a.movi_sym(Reg::R1, "loop_entry");
    a.movi(Reg::R2, 0);
    a.syscall();
    a.mov(Reg::R6, Reg::R0);
    a.call("incr_loop");
    a.movi_u(Reg::R0, abi::SYS_JOIN);
    a.mov(Reg::R1, Reg::R6);
    a.syscall();
    a.movi_u(Reg::R0, abi::SYS_EXIT);
    a.movi_sym(Reg::R2, "counter");
    a.ld(Reg::R1, Reg::R2, 0);
    a.syscall();
    a.label("loop_entry");
    a.call("incr_loop");
    a.movi_u(Reg::R0, abi::SYS_EXIT);
    a.movi(Reg::R1, 0);
    a.syscall();
    // The racy increment: ld / add / st with no atomicity.
    a.label("incr_loop");
    a.movi(Reg::R7, ITERS);
    a.movi_sym(Reg::R8, "counter");
    a.label("again");
    a.ld(Reg::R9, Reg::R8, 0);
    a.addi(Reg::R9, Reg::R9, 1);
    a.st(Reg::R8, 0, Reg::R9);
    a.addi(Reg::R7, Reg::R7, -1);
    a.bnez(Reg::R7, "again");
    a.ret();
    a.finish()
}

fn main() -> quickrec::Result<()> {
    let program = buggy_program()?;
    let expected = 2 * ITERS as u32;

    // Record the buggy run.
    let recording = record(program.clone(), RecordingConfig::with_cores(2))?;
    let lost = expected - recording.exit_code;
    println!("expected counter : {expected}");
    println!("recorded counter : {} ({} increments lost!)", recording.exit_code, lost);
    assert!(lost > 0, "the race should manifest under contention");

    // The bug now reproduces exactly, every time.
    for attempt in 1..=3 {
        let outcome = replay(&program, &recording)?;
        assert_eq!(outcome.exit_code, recording.exit_code);
        println!("replay #{attempt}       : counter = {} (identical)", outcome.exit_code);
    }

    // Forensics: the chunk log shows where the threads collided — every
    // conflict termination is a cross-thread dependency on some line.
    println!("\nconflict chunks around the racy counter:");
    let mut shown = 0;
    for pair in recording.chunks.replay_schedule()?.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        if a.reason.is_conflict() && a.tid != b.tid && shown < 6 {
            println!(
                "  ts={:<8} {} chunk of {:>4} instrs cut by {:?} — next: {} at ts={}",
                a.timestamp.0, a.tid, a.icount, a.reason, b.tid, b.timestamp.0
            );
            shown += 1;
        }
    }
    let conflicts = recording.recorder_stats.conflict_chunks();
    let raw = recording.recorder_stats.chunks_by_reason
        [TerminationReason::ConflictRaw.code() as usize];
    println!(
        "\n{} of {} chunks ended in conflicts ({} true RAW dependencies)",
        conflicts,
        recording.chunks.len(),
        raw
    );

    // Point the finger: replay once more with the dynamic race detector
    // attached. The report is deterministic — the same recording always
    // names the same racy words.
    let (_, report) = qr_replay::replay_with_race_detection(&program, &recording)?;
    println!("\nrace detector verdict ({} racy word(s)):", report.len());
    for race in report.races() {
        let symbol = program
            .symbols()
            .iter()
            .find(|(_, &a)| a == race.addr.0)
            .map(|(name, _)| name.as_str())
            .unwrap_or("?");
        println!("  {race}  <- symbol `{symbol}`");
    }
    println!("\nthe interleaving that lost {lost} updates is now permanently reproducible ✓");
    Ok(())
}
